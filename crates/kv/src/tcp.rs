//! TCP deployment of the key-value store.
//!
//! Frames carry `(key, envelope)` pairs, MAC-authenticated under the same
//! pairwise link keys the register transport uses. Each request yields at
//! most one response frame on the same connection (the per-key register
//! protocol is strict request/response at the server), so the transport is
//! a simple synchronous exchange — the quorum logic above it supplies the
//! fault tolerance.
//!
//! The wire path is zero-copy end to end: requests and replies are encoded
//! once into `(head, tail)` parts where the tail is an O(1) [`Bytes`] slice
//! of the value being shipped, the MAC is streamed over the parts, and the
//! receiving side decodes borrowed views of the frame buffer
//! ([`Wire::from_bytes`]) so payload bytes are never memcpy'd after the
//! socket read. Replies leave each server connection through a *bounded*
//! writer outbox sized by
//! [`TransportConfig::chan_capacity`](safereg_common::config::TransportConfig);
//! when a slow client lets it fill, the configured
//! [`ShedPolicy`] decides whether the serving thread blocks or sheds, and
//! every shed increments `chan.shed` plus a per-policy counter in the
//! metrics dump.

use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use safereg_common::buf::Bytes;
use safereg_common::codec::{BytesReader, Wire, WireError, WireReader};
use safereg_common::config::{QuorumConfig, ServerRuntime, TransportConfig};
use safereg_common::epoch::{ConfigStamp, EpochConfig, Member};
use safereg_common::ids::{ClientId, NodeId, ReaderId, ServerId, WriterId};
use safereg_common::msg::{ClientToServer, Envelope, Message, ServerToClient};
use safereg_common::shard::{ShardId, ShardMap};
use safereg_common::sync::channel::{bounded, BoundedSender, SendTimeoutError, ShedPolicy};
use safereg_crypto::auth::AuthCodec;
use safereg_crypto::chain::ChainLink;
use safereg_crypto::keychain::KeyChain;
use safereg_crypto::sha256::DIGEST_LEN;

use safereg_common::msg::{OpId, Payload};
use safereg_common::tag::Tag;
use safereg_common::trace::{Phase, TraceCtx};
use safereg_common::value::Value;
use safereg_core::behavior::ByzRole;
use safereg_obs::names;
use safereg_obs::span::{self, SpanKind};
use safereg_obs::trace::{wall_micros, MsgClass};
use safereg_transport::chaos::{ChaosProxy, FaultPlan};
use safereg_transport::poll::PollBackend;
use safereg_transport::write_all_vectored;

use safereg_mds::rs::ReedSolomon;
use safereg_mds::stripe::encode_value;

use crate::audit::AuditLog;
use crate::client::{KvClient, KvTransport, Unreachable};
use crate::reactor::ReactorPool;
use crate::server::{KvMode, KvServer};

/// Reserved key addressing the replica's observability dump rather than a
/// register: a `QUERY-DATA` on this key is answered with the server
/// process's metrics snapshot rendered as line-oriented JSON. The prefix
/// `__safereg/` cannot collide with register state because the admin path
/// intercepts it before the KV table is consulted.
pub const METRICS_KEY: &[u8] = b"__safereg/metrics";

/// One shard- and key-addressed message on the wire, carrying its causal
/// trace context (always present — [`TraceCtx::NONE`] when unsampled — so
/// the frame layout never depends on sampling and the MAC covers it) and
/// the sender's [`ConfigStamp`] — the epoch fingerprint a server checks
/// before dispatching, likewise MAC-covered so a Byzantine network cannot
/// splice a frame from one epoch into another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct KvFrame {
    shard: ShardId,
    trace: TraceCtx,
    stamp: ConfigStamp,
    /// Accountability attestation: servers attach a response-chain link to
    /// every attestable reply (`TagResp`/`PutAck`/`DataResp`); requests and
    /// admin/epoch replies carry `None`. MAC-covered like the rest of the
    /// frame, and additionally self-authenticating under the server's audit
    /// key, so it stays convincing once lifted out of the frame as evidence.
    link: Option<ChainLink>,
    key: Bytes,
    env: Envelope,
}

impl Wire for KvFrame {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        self.shard.encode_to(buf);
        self.trace.encode_to(buf);
        self.stamp.encode_to(buf);
        self.link.encode_to(buf);
        self.key.encode_to(buf);
        self.env.encode_to(buf);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(KvFrame {
            shard: ShardId::decode_from(r)?,
            trace: TraceCtx::decode_from(r)?,
            stamp: ConfigStamp::decode_from(r)?,
            link: Option::<ChainLink>::decode_from(r)?,
            key: Bytes::decode_from(r)?,
            env: Envelope::decode_from(r)?,
        })
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        // Both the key and the envelope payload come out as O(1) slices of
        // the frame buffer.
        Ok(KvFrame {
            shard: ShardId::decode_borrowed(r)?,
            trace: TraceCtx::decode_borrowed(r)?,
            stamp: ConfigStamp::decode_borrowed(r)?,
            link: Option::<ChainLink>::decode_borrowed(r)?,
            key: Bytes::decode_borrowed(r)?,
            env: Envelope::decode_borrowed(r)?,
        })
    }
}

impl KvFrame {
    /// Splits the encoding into a metadata head and the envelope's trailing
    /// payload (an O(1) slice of the value being shipped, when the message
    /// carries one). `head ++ tail` equals [`Wire::to_bytes`] byte for byte.
    fn encode_parts(&self) -> (Vec<u8>, Option<Bytes>) {
        let (env_head, tail) = self.env.encode_parts();
        let link_len = 1 + self.link.as_ref().map_or(0, |_| ChainLink::WIRE_LEN);
        let mut head = Vec::with_capacity(
            10 + TraceCtx::WIRE_LEN
                + ConfigStamp::WIRE_LEN
                + link_len
                + self.key.len()
                + env_head.len(),
        );
        self.shard.encode_to(&mut head);
        self.trace.encode_to(&mut head);
        self.stamp.encode_to(&mut head);
        self.link.encode_to(&mut head);
        self.key.encode_to(&mut head);
        head.extend_from_slice(&env_head);
        (head, tail)
    }
}

/// A KV frame sealed for one link: metadata head, zero-copy payload tail,
/// and the streaming MAC over both. Written as one length-prefixed wire
/// frame without ever concatenating the parts.
pub(crate) struct SealedKv {
    pub(crate) head: Vec<u8>,
    pub(crate) tail: Bytes,
    pub(crate) mac: [u8; DIGEST_LEN],
}

impl SealedKv {
    fn seal(codec: &AuthCodec, frame: &KvFrame) -> SealedKv {
        let (head, tail) = frame.encode_parts();
        let tail = tail.unwrap_or_default();
        let mac = codec.mac_of_parts(&[&head, tail.as_ref()]);
        SealedKv { head, tail, mac }
    }

    /// Length of the framed payload (head + tail + MAC), i.e. the value of
    /// the `u32` length prefix.
    pub(crate) fn payload_len(&self) -> usize {
        self.head.len() + self.tail.len() + self.mac.len()
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        use std::io::Write;
        stream.write_all(&(self.payload_len() as u32).to_le_bytes())?;
        stream.write_all(&self.head)?;
        stream.write_all(self.tail.as_ref())?;
        stream.write_all(&self.mac)?;
        stream.flush()
    }
}

/// Flushes a batch of sealed replies with one vectored write: four iovecs
/// per frame (length prefix, head, zero-copy tail, MAC), no concatenation.
fn write_batch(stream: &mut TcpStream, batch: &[SealedKv]) -> std::io::Result<()> {
    use std::io::Write;
    let lens: Vec<[u8; 4]> = batch
        .iter()
        .map(|s| (s.payload_len() as u32).to_le_bytes())
        .collect();
    let mut parts: Vec<&[u8]> = Vec::with_capacity(batch.len() * 4);
    for (sealed, len) in batch.iter().zip(&lens) {
        parts.push(len);
        parts.push(&sealed.head);
        parts.push(sealed.tail.as_ref());
        parts.push(&sealed.mac);
    }
    write_all_vectored(stream, &mut parts)?;
    stream.flush()
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Bytes> {
    use std::io::Read;
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > (64 << 20) {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            "oversized frame",
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    // One allocation per frame; every decoded field below borrows from it.
    Ok(Bytes::from(payload))
}

/// Seals one client→server request exactly as [`TcpKvTransport::exchange`]
/// would and returns the complete length-prefixed wire bytes, ready to be
/// written to a replica's socket verbatim. Load generators use this to
/// pre-encode a request once and replay it from many connections without
/// paying the seal on the hot path.
pub fn encode_request(
    chain: &KeyChain,
    stamp: ConfigStamp,
    from: ClientId,
    to: ServerId,
    shard: ShardId,
    key: &[u8],
    msg: &ClientToServer,
) -> Vec<u8> {
    let frame = KvFrame {
        shard,
        trace: TraceCtx::NONE,
        stamp,
        link: None,
        key: Bytes::copy_from_slice(key),
        env: Envelope::to_server(from, to, msg.clone()),
    };
    let codec = AuthCodec::new(chain.pair_key(frame.env.src, frame.env.dst));
    let sealed = SealedKv::seal(&codec, &frame);
    let mut out = Vec::with_capacity(4 + sealed.payload_len());
    out.extend_from_slice(&(sealed.payload_len() as u32).to_le_bytes());
    out.extend_from_slice(&sealed.head);
    out.extend_from_slice(sealed.tail.as_ref());
    out.extend_from_slice(&sealed.mac);
    out
}

/// Counts one slow-client eviction: the aggregate `server.evictions` plus
/// the per-reason counter (`server.evictions.idle` / `server.evictions.stall`).
/// Every eviction also dumps the flight recorder — the evicted connection's
/// recent spans are exactly the forensics a stall post-mortem needs.
pub(crate) fn count_eviction(reason: &str) {
    let reg = safereg_obs::global();
    reg.counter(names::SERVER_EVICTIONS).inc();
    reg.counter(&names::eviction_counter(reason)).inc();
    span::dump_flight("eviction");
}

/// Queues `reply` on the connection's writer outbox under the configured
/// shed policy, counting sheds. Returns `false` when the connection should
/// be torn down: the writer is gone, or (under [`ShedPolicy::Block`]) the
/// client stalled the outbox past the stall budget and is evicted rather
/// than allowed to wedge the serving thread indefinitely.
fn enqueue_reply(tx: &BoundedSender<SealedKv>, reply: SealedKv, config: &TransportConfig) -> bool {
    let reg = safereg_obs::global();
    match config.shed_policy {
        ShedPolicy::Block => match tx.send_timeout(reply, config.stall_timeout) {
            Ok(_) => true,
            Err(SendTimeoutError::Timeout(_)) => {
                // The channel never sheds under Block; a send that cannot
                // complete within the stall budget means the client has
                // stopped draining — evict it.
                reg.counter(safereg_obs::names::CHAN_SHED).inc();
                reg.counter(&safereg_obs::names::shed_counter(
                    config.shed_policy.label(),
                ))
                .inc();
                count_eviction("stall");
                false
            }
            Err(SendTimeoutError::Disconnected(_)) => false,
        },
        policy => match tx.send(reply) {
            Ok(outcome) => {
                if outcome.shed() {
                    reg.counter(safereg_obs::names::CHAN_SHED).inc();
                    reg.counter(&safereg_obs::names::shed_counter(policy.label()))
                        .inc();
                }
                true
            }
            Err(_) => false,
        },
    }
}

/// What to do with the connection after one inbound frame was handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameDisposition {
    /// Keep serving the connection.
    Continue,
    /// Tear the connection down (the reply sink rejected a reply, i.e. the
    /// client was evicted or the writer is gone).
    Close,
}

/// The per-frame serving path shared by both runtimes: authenticate,
/// admin-intercept, epoch-admit, dispatch, and seal each reply through
/// `queue_reply`. The thread-per-connection loop passes a closure that
/// feeds the writer thread's bounded channel; the reactor passes one that
/// pushes onto the connection's outbox under the shed policy. `queue_reply`
/// returning `false` means the connection must close.
///
/// Malformed, forged, misaddressed or short frames are dropped without
/// closing the connection — Byzantine input is reachable silence, not a
/// transport fault.
pub(crate) fn process_sealed_frame(
    server: &KvServer,
    chain: &KeyChain,
    me: ServerId,
    sealed: &Bytes,
    queue_reply: &mut dyn FnMut(SealedKv) -> bool,
) -> FrameDisposition {
    // Authenticate: the MAC is keyed by the claimed endpoints of the
    // inner envelope.
    if sealed.len() < DIGEST_LEN {
        return FrameDisposition::Continue;
    }
    let payload = sealed.slice(..sealed.len() - DIGEST_LEN);
    // Borrowing decode: the frame's key and value fields are O(1)
    // slices of `sealed`; `wire.bytes_copied` stays at zero here.
    let frame = match KvFrame::from_bytes(&payload) {
        Ok(f) => f,
        Err(_) => return FrameDisposition::Continue,
    };
    // Tracing is one branch when the frame is unsampled; when it is,
    // time the MAC verification as the server's `server_decode` phase.
    let auth_start = if frame.trace.is_sampled() {
        wall_micros()
    } else {
        0
    };
    let codec = AuthCodec::new(chain.pair_key(frame.env.src, frame.env.dst));
    if codec.open(sealed.as_ref()).is_err() {
        return FrameDisposition::Continue; // forged or corrupted: drop, not fatal
    }
    // The MAC covered the trace bytes, so the context is authentic
    // from here on. The server's spans run one hop below the client's.
    let strace = frame.trace.hopped(Phase::ServerDecode);
    let me_node = span::node::server(me.0);
    if strace.is_sampled() {
        let now = wall_micros();
        span::record_global(
            strace,
            SpanKind::Segment,
            auth_start,
            now.saturating_sub(auth_start),
            me_node,
            sealed.len() as u32,
        );
    }
    let (from, msg) = match (&frame.env.src, &frame.env.msg) {
        (NodeId::Client(c), Message::ToServer(m)) => (*c, m),
        _ => return FrameDisposition::Continue,
    };
    if frame.env.dst != NodeId::Server(me) {
        return FrameDisposition::Continue; // misaddressed
    }
    safereg_obs::global()
        .counter(&names::kv_recv_counter(
            MsgClass::of(&frame.env.msg).as_str(),
        ))
        .inc();
    // Admin path: the metrics key is served from the observability
    // registry, never from register state.
    if frame.key.as_slice() == METRICS_KEY {
        if let ClientToServer::QueryData { op } = msg {
            let mut dump = safereg_obs::render_jsonl(&safereg_obs::global().snapshot());
            dump.push_str(&placement_summary(&server.map()));
            let resp = ServerToClient::DataResp {
                op: *op,
                tag: Tag::ZERO,
                payload: Payload::Full(Value::from(dump.into_bytes())),
            };
            let reply = KvFrame {
                shard: frame.shard,
                trace: frame.trace.hopped(Phase::Reply),
                stamp: frame.stamp,
                link: None,
                key: frame.key.clone(),
                env: Envelope::to_client(me, from, resp),
            };
            let codec = AuthCodec::new(chain.pair_key(reply.env.src, reply.env.dst));
            if !queue_reply(SealedKv::seal(&codec, &reply)) {
                return FrameDisposition::Close;
            }
        }
        return FrameDisposition::Continue;
    }
    // Epoch admission (the admin path above deliberately bypasses it:
    // operators must be able to read metrics from a replica whatever
    // epoch it serves). A mismatched stamp is answered with this
    // replica's full configuration; the client's `f + 1`-vote rule
    // decides whether to adopt it.
    if let Err(current) = server.check_stamp(frame.stamp) {
        safereg_obs::global()
            .counter(names::KV_EPOCH_STALE_FRAMES)
            .inc();
        let resp = ServerToClient::WrongEpoch {
            op: msg.op(),
            config: current,
        };
        let reply = KvFrame {
            shard: frame.shard,
            trace: frame.trace.hopped(Phase::Reply),
            stamp: frame.stamp,
            link: None,
            key: frame.key.clone(),
            env: Envelope::to_client(me, from, resp),
        };
        let codec = AuthCodec::new(chain.pair_key(reply.env.src, reply.env.dst));
        if !queue_reply(SealedKv::seal(&codec, &reply)) {
            return FrameDisposition::Close;
        }
        return FrameDisposition::Continue;
    }
    // Per-shard dispatch: only the addressed register group's lock is
    // taken, so connections serving different shards run in parallel.
    let responses = server.handle_traced(from, frame.shard, &frame.key, msg, strace);
    safereg_obs::global()
        .counter(&names::shard_served_counter(frame.shard.0))
        .inc();
    for resp in responses {
        // Attest after dispatch: Byzantine roles' answers flow through the
        // same reply path, so their lies are chain-signed too — the
        // attestation is what later convicts them.
        let link = server.attest(&frame.key, &resp);
        let reply = KvFrame {
            shard: frame.shard,
            trace: frame.trace.hopped(Phase::Reply),
            stamp: frame.stamp,
            link,
            key: frame.key.clone(),
            env: Envelope::to_client(me, from, resp),
        };
        let codec = AuthCodec::new(chain.pair_key(reply.env.src, reply.env.dst));
        let sealed_reply = SealedKv::seal(&codec, &reply);
        let outbox_start = if strace.is_sampled() {
            wall_micros()
        } else {
            0
        };
        let reply_len = sealed_reply.payload_len() as u32;
        let queued = queue_reply(sealed_reply);
        if strace.is_sampled() {
            let now = wall_micros();
            span::record_global(
                strace.with_phase(Phase::Outbox),
                SpanKind::Segment,
                outbox_start,
                now.saturating_sub(outbox_start),
                me_node,
                reply_len,
            );
        }
        if !queued {
            return FrameDisposition::Close;
        }
    }
    FrameDisposition::Continue
}

/// Everything optional about how a KV replica is hosted: the transport
/// policy, the (possibly Byzantine) role it plays, and an optional
/// server-side chaos plan that fronts the listener with a fault-injecting
/// proxy so *accepted* connections drop, delay, corrupt and die on the
/// server's side of the wire.
#[derive(Debug, Clone, Default)]
pub struct KvHostOptions {
    /// Transport policy: outbox capacity, shed policy, idle/stall budgets.
    pub tconfig: TransportConfig,
    /// The role this replica plays ([`ByzRole::Correct`] by default) —
    /// applied to every hosted register group; rotate individual shards
    /// afterwards with [`KvServerHost::set_shard_role`].
    pub role: ByzRole,
    /// Seed for the role's fault stream (fabricated tags, forged values).
    pub byz_seed: u64,
    /// When set, the advertised address is a seeded [`ChaosProxy`] in front
    /// of the real listener, injecting this plan on the accept side.
    pub chaos: Option<FaultPlan>,
    /// Shard placement: the replica hosts one register group per shard
    /// placed on it. `None` hosts the single pre-sharding group over the
    /// whole fleet.
    pub shards: Option<ShardMap>,
    /// Which serving runtime drains accepted connections:
    /// [`ServerRuntime::Reactor`] (the default) multiplexes them onto a
    /// small pool of readiness-driven event loops;
    /// [`ServerRuntime::Threaded`] spawns a reader and a writer thread per
    /// connection.
    pub runtime: ServerRuntime,
    /// Reactor pool size under [`ServerRuntime::Reactor`]; `0` (the
    /// default) sizes the pool to the number of shards this replica hosts.
    pub reactors: usize,
    /// Readiness backend for the reactor pool (`epoll` on Linux, portable
    /// `poll` elsewhere or when forced for tests).
    pub poll_backend: PollBackend,
}

/// A KV replica served over TCP.
pub struct KvServerHost {
    /// Advertised address: the chaos proxy when one fronts the listener,
    /// the listener itself otherwise.
    addr: SocketAddr,
    /// The real listener address (used to unblock the accept loop on stop).
    listen_addr: SocketAddr,
    role: ByzRole,
    /// The hosted replica, shared with every connection thread; kept here
    /// so per-shard roles can be rotated live.
    server: Arc<KvServer>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    /// The reactor pool draining accepted connections under
    /// [`ServerRuntime::Reactor`]; `None` under the threaded runtime.
    pool: Option<ReactorPool>,
    chaos: Option<ChaosProxy>,
}

/// Builder for a [`KvServerHost`] — the one spawn path. Collapses the old
/// `spawn` / `spawn_with` / `spawn_on` / `spawn_on_with` / `spawn_opts`
/// constructor zoo into chained setters over [`KvHostOptions`].
///
/// ```no_run
/// # use safereg_common::config::{QuorumConfig, ServerRuntime};
/// # use safereg_common::ids::ServerId;
/// # use safereg_crypto::keychain::KeyChain;
/// # use safereg_kv::server::KvMode;
/// # use safereg_kv::tcp::KvServerHost;
/// let cfg = QuorumConfig::minimal_bsr(1)?;
/// let chain = KeyChain::from_master_seed(b"demo");
/// let host = KvServerHost::builder(ServerId(0), cfg, KvMode::Replicated, chain)
///     .runtime(ServerRuntime::Reactor)
///     .spawn()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct KvHostBuilder {
    id: ServerId,
    cfg: QuorumConfig,
    mode: KvMode,
    chain: KeyChain,
    bind: std::io::Result<SocketAddr>,
    opts: KvHostOptions,
}

impl KvHostBuilder {
    /// Binds the listener (or the fronting chaos proxy) to `bind` instead
    /// of an ephemeral loopback port. A resolution failure is deferred to
    /// [`spawn`](Self::spawn).
    pub fn bind(mut self, bind: impl std::net::ToSocketAddrs) -> Self {
        self.bind = bind_first(&bind);
        self
    }

    /// Transport policy: outbox capacity, shed policy, idle/stall budgets,
    /// batch sizing and the adaptive-capacity knobs.
    pub fn config(mut self, tconfig: TransportConfig) -> Self {
        self.opts.tconfig = tconfig;
        self
    }

    /// The (possibly Byzantine) role every hosted register group plays,
    /// with the seed for its fault stream.
    pub fn role(mut self, role: ByzRole, byz_seed: u64) -> Self {
        self.opts.role = role;
        self.opts.byz_seed = byz_seed;
        self
    }

    /// Fronts the listener with a seeded [`ChaosProxy`] injecting `plan`
    /// on every accepted connection.
    pub fn chaos(mut self, plan: FaultPlan) -> Self {
        self.opts.chaos = Some(plan);
        self
    }

    /// Shard placement: the replica hosts one register group per shard of
    /// `map` placed on it.
    pub fn shards(mut self, map: ShardMap) -> Self {
        self.opts.shards = Some(map);
        self
    }

    /// Selects the serving runtime (reactor pool vs thread per connection).
    pub fn runtime(mut self, runtime: ServerRuntime) -> Self {
        self.opts.runtime = runtime;
        self
    }

    /// Reactor pool size (`0` = one reactor per hosted shard).
    pub fn reactors(mut self, reactors: usize) -> Self {
        self.opts.reactors = reactors;
        self
    }

    /// Forces a readiness backend for the reactor pool.
    pub fn poll_backend(mut self, backend: PollBackend) -> Self {
        self.opts.poll_backend = backend;
        self
    }

    /// Spawns the host.
    ///
    /// # Errors
    ///
    /// Propagates bind errors from the listener or the proxy, and backend
    /// creation errors from the reactor pool.
    pub fn spawn(self) -> std::io::Result<KvServerHost> {
        KvServerHost::spawn_inner(
            self.id, self.cfg, self.mode, self.chain, self.bind?, self.opts,
        )
    }
}

impl std::fmt::Debug for KvServerHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvServerHost")
            .field("addr", &self.addr)
            .field("role", &self.role)
            .field("chaos", &self.chaos.is_some())
            .finish()
    }
}

impl KvServerHost {
    /// Starts building a host; see [`KvHostBuilder`].
    pub fn builder(
        id: ServerId,
        cfg: QuorumConfig,
        mode: KvMode,
        chain: KeyChain,
    ) -> KvHostBuilder {
        KvHostBuilder {
            id,
            cfg,
            mode,
            chain,
            bind: bind_first(&("127.0.0.1", 0)),
            opts: KvHostOptions::default(),
        }
    }

    /// Spawns a replica on an ephemeral loopback port with the default
    /// [`TransportConfig`].
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    #[deprecated(note = "use KvServerHost::builder(..).spawn()")]
    pub fn spawn(
        id: ServerId,
        cfg: QuorumConfig,
        mode: KvMode,
        chain: KeyChain,
    ) -> std::io::Result<Self> {
        Self::builder(id, cfg, mode, chain).spawn()
    }

    /// Spawns a replica on an ephemeral loopback port with an explicit
    /// transport policy (reply-outbox capacity and shed policy).
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    #[deprecated(note = "use KvServerHost::builder(..).config(tconfig).spawn()")]
    pub fn spawn_with(
        id: ServerId,
        cfg: QuorumConfig,
        mode: KvMode,
        chain: KeyChain,
        tconfig: TransportConfig,
    ) -> std::io::Result<Self> {
        Self::builder(id, cfg, mode, chain).config(tconfig).spawn()
    }

    /// Spawns a replica on a caller-chosen address (the `safereg-kv-server`
    /// daemon path).
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    #[deprecated(note = "use KvServerHost::builder(..).bind(addr).spawn()")]
    pub fn spawn_on(
        id: ServerId,
        cfg: QuorumConfig,
        mode: KvMode,
        chain: KeyChain,
        bind: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<Self> {
        Self::builder(id, cfg, mode, chain).bind(bind).spawn()
    }

    /// Spawns a replica on a caller-chosen address with an explicit
    /// transport policy.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    #[deprecated(note = "use KvServerHost::builder(..).bind(addr).config(tconfig).spawn()")]
    pub fn spawn_on_with(
        id: ServerId,
        cfg: QuorumConfig,
        mode: KvMode,
        chain: KeyChain,
        bind: impl std::net::ToSocketAddrs,
        tconfig: TransportConfig,
    ) -> std::io::Result<Self> {
        Self::builder(id, cfg, mode, chain)
            .bind(bind)
            .config(tconfig)
            .spawn()
    }

    /// Spawns a replica with the full option set: transport policy, role,
    /// and optional server-side chaos.
    ///
    /// # Errors
    ///
    /// Propagates bind errors from the listener or the proxy.
    #[deprecated(note = "use KvServerHost::builder(..) with chained setters")]
    pub fn spawn_opts(
        id: ServerId,
        cfg: QuorumConfig,
        mode: KvMode,
        chain: KeyChain,
        bind: impl std::net::ToSocketAddrs,
        opts: KvHostOptions,
    ) -> std::io::Result<Self> {
        Self::spawn_inner(id, cfg, mode, chain, bind_first(&bind)?, opts)
    }

    /// The one real spawn path (the builder and every shim funnel here).
    /// With chaos, the real listener binds ephemerally and a seeded
    /// [`ChaosProxy`] binds `bind` in front of it — the advertised
    /// [`addr`](Self::addr) is the proxy, so every accepted connection runs
    /// through the fault plan. Under [`ServerRuntime::Reactor`] the accept
    /// loop hands connections off to a readiness-driven reactor pool;
    /// under [`ServerRuntime::Threaded`] it spawns a serving thread (plus a
    /// writer thread) per connection.
    fn spawn_inner(
        id: ServerId,
        cfg: QuorumConfig,
        mode: KvMode,
        chain: KeyChain,
        bind: SocketAddr,
        opts: KvHostOptions,
    ) -> std::io::Result<Self> {
        let tconfig = opts.tconfig;
        let listener = match opts.chaos {
            // The proxy owns the requested address; the listener hides on
            // an ephemeral port behind it.
            Some(_) => TcpListener::bind(("127.0.0.1", 0))?,
            None => TcpListener::bind(bind)?,
        };
        let listen_addr = listener.local_addr()?;
        let chaos = match opts.chaos {
            Some(plan) => Some(ChaosProxy::spawn_on(id, listen_addr, plan, bind)?),
            None => None,
        };
        let addr = chaos.as_ref().map_or(listen_addr, ChaosProxy::addr);
        let stop = Arc::new(AtomicBool::new(false));
        let map = opts.shards.unwrap_or_else(|| ShardMap::single(cfg));
        let server = Arc::new(KvServer::sharded_with_role(
            id,
            map.clone(),
            mode,
            opts.role,
            opts.byz_seed,
        ));
        // Arm response attestation: every spawn is a fresh incarnation, so
        // restarted replicas never look chain-forked to the auditor.
        server.enable_audit(&chain);

        // Register the degradation metrics up front so a dump shows them
        // (at zero) even before any backpressure, eviction or restart.
        let reg = safereg_obs::global();
        reg.counter(safereg_obs::names::CHAN_SHED);
        reg.counter(&safereg_obs::names::shed_counter(
            tconfig.shed_policy.label(),
        ));
        reg.counter(names::SERVER_EVICTIONS);
        reg.counter(&names::eviction_counter("idle"));
        reg.counter(&names::eviction_counter("stall"));
        reg.counter(names::SERVER_RESTARTS);
        reg.gauge(names::SERVER_BYZ_ACTIVE);
        reg.histogram(names::TRANSPORT_BATCH_FRAMES);
        // Likewise every per-shard series, so JSONL dumps are
        // schema-stable regardless of which shards saw traffic.
        for g in map.shards() {
            reg.counter(&names::shard_ops_counter(g.0));
            reg.counter(&names::shard_reads_counter(g.0, "fast"));
            reg.counter(&names::shard_reads_counter(g.0, "slow"));
            reg.gauge(&names::shard_fast_ratio_gauge(g.0));
        }
        // Server-side serving counters for the shards *this* replica hosts,
        // plus one receive counter per message class — the admin dump shows
        // the whole schema at zero before any traffic.
        for g in server.shards() {
            reg.counter(&names::shard_served_counter(g.0));
        }
        for class in MsgClass::ALL {
            reg.counter(&names::kv_recv_counter(class.as_str()));
        }
        reg.gauge(names::KV_SHARD_HOT);
        reg.gauge(names::KV_SHARD_HOT_OPS);
        // Epoch/reconfiguration series, likewise schema-stable from spawn.
        reg.gauge(names::KV_EPOCH_CURRENT).set(0);
        reg.counter(names::KV_EPOCH_STALE_FRAMES);
        reg.counter(names::KV_EPOCH_ADOPTIONS);
        reg.counter(names::KV_EPOCH_RECONFIGS);
        reg.counter(names::KV_TRANSFER_KEYS);
        // Accountability series: evidence/verdict counters plus one
        // suspicion gauge per fleet member, schema-stable from spawn.
        reg.counter(names::KV_AUDIT_EVIDENCE);
        reg.counter(names::KV_AUDIT_CONVICTIONS);
        reg.counter(names::KV_AUDIT_FALSE_ACCUSATIONS);
        reg.counter(names::KV_AUDIT_QUARANTINES);
        for s in map.fleet() {
            reg.gauge(&names::audit_suspicion_gauge(s.0));
        }
        // Reactor-runtime series, registered whatever the runtime so the
        // dump schema does not depend on how the replica is served.
        reg.gauge(names::REACTOR_THREADS);
        reg.gauge(names::REACTOR_CONNS);
        reg.counter(names::REACTOR_EVENTS);
        reg.counter(names::REACTOR_WAKEUPS);
        reg.counter(names::REACTOR_HANDOFFS);
        reg.counter(names::CHAN_ADAPTIVE_GROW);
        reg.counter(names::CHAN_ADAPTIVE_SHRINK);

        // The reactor pool needs raw-fd readiness APIs; on targets without
        // them the host silently degrades to thread-per-connection.
        let runtime = if cfg!(unix) {
            opts.runtime
        } else {
            ServerRuntime::Threaded
        };
        let pool = match runtime {
            ServerRuntime::Threaded => None,
            ServerRuntime::Reactor => {
                let reactors = if opts.reactors > 0 {
                    opts.reactors
                } else {
                    server.shards().len().max(1)
                };
                Some(ReactorPool::spawn(
                    reactors,
                    opts.poll_backend,
                    Arc::clone(&server),
                    chain.clone(),
                    id,
                    tconfig,
                    Arc::clone(&stop),
                )?)
            }
        };

        let host_server = Arc::clone(&server);
        let accept_stop = Arc::clone(&stop);
        let accept_pool = pool.as_ref().map(ReactorPool::handle);
        let accept_thread = std::thread::Builder::new()
            .name(format!("safereg-kv-{addr}"))
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match conn {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    // Replies are small frames on a request/response path:
                    // Nagle against the client's delayed ACK turns every
                    // exchange into a ~40 ms stall, so send eagerly.
                    let _ = stream.set_nodelay(true);
                    match &accept_pool {
                        // Accept-and-hand-off: the listener stays a plain
                        // blocking accept loop (so the chaos proxy and the
                        // stop dance keep working) and each connection is
                        // round-robined onto a reactor's inbox.
                        Some(pool) => pool.dispatch(stream),
                        None => {
                            let server = Arc::clone(&server);
                            let stop = Arc::clone(&accept_stop);
                            let chain = chain.clone();
                            let _ = std::thread::Builder::new()
                                .name("safereg-kv-conn".into())
                                .spawn(move || serve(stream, server, chain, stop, id, tconfig));
                        }
                    }
                }
            })
            .expect("spawn kv accept thread");
        Ok(KvServerHost {
            addr,
            listen_addr,
            role: opts.role,
            server: host_server,
            stop,
            accept_thread: Some(accept_thread),
            pool,
            chaos,
        })
    }

    /// The advertised address (the chaos proxy's, when one is configured).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The role this replica was spawned with.
    pub fn role(&self) -> ByzRole {
        self.role
    }

    /// The role one shard's register group currently plays, or `None`
    /// when this replica does not serve the shard.
    pub fn shard_role(&self, shard: ShardId) -> Option<ByzRole> {
        self.server.shard_role(shard)
    }

    /// Rotates one shard's role **live** — connections keep flowing and
    /// the other shards' groups are untouched. Returns `false` when this
    /// replica does not serve the shard.
    pub fn set_shard_role(&self, shard: ShardId, role: ByzRole, byz_seed: u64) -> bool {
        self.server.set_shard_role(shard, role, byz_seed)
    }

    /// The membership epoch this replica currently serves.
    pub fn epoch(&self) -> u32 {
        self.server.epoch()
    }

    /// The membership configuration this replica currently serves.
    pub fn epoch_config(&self) -> EpochConfig {
        self.server.config()
    }

    /// Switches this replica to `config` with placement `map`, returning
    /// the shards whose register group restarted empty and needs state
    /// transfer (see [`KvServer::apply_config`]). Live — connections keep
    /// flowing; frames stamped with the old epoch get `WrongEpoch` from
    /// the next dispatch on.
    pub fn apply_config(&self, config: EpochConfig, map: ShardMap) -> Vec<ShardId> {
        let needs = self.server.apply_config(config, map);
        safereg_obs::global()
            .gauge(names::KV_EPOCH_CURRENT)
            .set(u64::from(self.server.epoch()));
        needs
    }

    /// Installs one transferred `(tag, payload)` pair (see
    /// [`KvServer::install_state`]).
    pub fn install_state(&self, shard: ShardId, key: &[u8], tag: Tag, payload: Payload) -> bool {
        self.server.install_state(shard, key, tag, payload)
    }

    /// Donor-side key enumeration for state transfer.
    pub fn keys_of_shard(&self, shard: ShardId) -> Vec<Bytes> {
        self.server.keys_of_shard(shard)
    }

    /// Digest of the highest-tag entry stored for `key` in `shard` (see
    /// [`KvServer::payload_digest`]).
    pub fn payload_digest(&self, shard: ShardId, key: &[u8]) -> Option<u64> {
        self.server.payload_digest(shard, key)
    }

    /// Quarantines the hosted replica: writes are dropped unacknowledged
    /// from now on (see [`KvServer::quarantine`]); reads keep flowing
    /// until eviction.
    pub fn quarantine(&self) {
        self.server.quarantine();
    }

    /// Whether the hosted replica is quarantined.
    pub fn is_quarantined(&self) -> bool {
        self.server.is_quarantined()
    }

    /// Retires a leaving replica: waits out `grace` so in-flight replies
    /// drain through the bounded per-connection outboxes (the hand-off —
    /// clients stamped with the new epoch have already stopped counting
    /// this replica), then stops the host.
    pub fn retire(&mut self, grace: Duration) {
        std::thread::sleep(grace);
        self.stop();
    }

    /// Stops the host (proxy first, then the listener, then the reactors).
    pub fn stop(&mut self) {
        if let Some(mut proxy) = self.chaos.take() {
            proxy.stop();
        }
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.listen_addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(mut pool) = self.pool.take() {
            pool.shutdown();
        }
    }
}

/// Resolves `bind` to its first address (both the listener and the proxy
/// need a concrete `SocketAddr`, and `ToSocketAddrs` is consumed on use).
fn bind_first(bind: &impl std::net::ToSocketAddrs) -> std::io::Result<SocketAddr> {
    bind.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(ErrorKind::InvalidInput, "bind address resolves to nothing")
    })
}

impl Drop for KvServerHost {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve(
    mut stream: TcpStream,
    server: Arc<KvServer>,
    chain: KeyChain,
    stop: Arc<AtomicBool>,
    me: ServerId,
    tconfig: TransportConfig,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    // Replies leave through a bounded outbox drained by a writer thread, so
    // a client that stops reading exerts backpressure here (or gets shed,
    // per policy) instead of wedging the serving loop on a full socket.
    let (reply_tx, reply_rx) = bounded::<SealedKv>(tconfig.chan_capacity, tconfig.shed_policy);
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let stall_timeout = tconfig.stall_timeout;
    let max_batch = tconfig.max_batch_frames.max(1);
    let writer = std::thread::Builder::new()
        .name("safereg-kv-writer".into())
        .spawn(move || {
            let mut stream = writer_stream;
            // A client that stops draining its socket stalls the writer; a
            // bounded write budget turns that into an eviction instead of a
            // thread parked forever.
            let _ = stream.set_write_timeout(Some(stall_timeout));
            while let Ok(first) = reply_rx.recv() {
                // Opportunistically drain queued replies into one vectored
                // write: fan-in bursts (quorum reads hitting many keys)
                // amortise to a syscall per batch instead of per frame.
                let mut batch = vec![first];
                while batch.len() < max_batch {
                    match reply_rx.try_recv() {
                        Ok(next) => batch.push(next),
                        Err(_) => break,
                    }
                }
                safereg_obs::global()
                    .histogram(names::TRANSPORT_BATCH_FRAMES)
                    .record(batch.len() as u64);
                match write_batch(&mut stream, &batch) {
                    Ok(()) => {}
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                    {
                        count_eviction("stall");
                        return;
                    }
                    Err(_) => return,
                }
            }
        });
    if writer.is_err() {
        return;
    }
    let idle_timeout = tconfig.idle_timeout;
    let mut last_inbound = std::time::Instant::now();
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let sealed = match read_frame(&mut stream) {
            Ok(f) => {
                last_inbound = std::time::Instant::now();
                f
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if last_inbound.elapsed() >= idle_timeout {
                    // The client went quiet past the idle budget: reclaim
                    // the connection thread rather than poll forever.
                    count_eviction("idle");
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        // A crashed host must never answer a request sent after the crash:
        // the flag is set before the client's next frame, so recheck it
        // between reading and responding.
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let mut queue = |reply: SealedKv| enqueue_reply(&reply_tx, reply, &tconfig);
        match process_sealed_frame(&server, &chain, me, &sealed, &mut queue) {
            FrameDisposition::Continue => {}
            FrameDisposition::Close => return,
        }
    }
}

/// Renders the replica's shard placement as JSONL lines appended to the
/// `__safereg/metrics` admin dump: one `shard_map` header with the
/// placement parameters, then one `placement` line per shard listing its
/// replica subset — so an operator reading a single replica's dump can see
/// *which* physical servers each `kv.shard.g{i}.*` series routes to.
fn placement_summary(map: &ShardMap) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"{{"shard_map":{{"seed":{},"num_shards":{},"fleet":{},"shard_size":{}}}}}"#,
        map.seed(),
        map.num_shards(),
        map.fleet().len(),
        map.shard_config().n(),
    );
    for g in map.shards() {
        let replicas = map
            .replicas(g)
            .unwrap_or(&[])
            .iter()
            .map(|s| s.0.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let _ = writeln!(
            out,
            r#"{{"placement":{{"shard":{},"replicas":[{replicas}]}}}}"#,
            g.0,
        );
    }
    out
}

/// Circuit-breaker states for one KV link.
const STATE_CLOSED: u8 = 0;
const STATE_HALF_OPEN: u8 = 1;
const STATE_OPEN: u8 = 2;

/// One replica's connection state inside [`TcpKvTransport`]: the live
/// stream (if any), the breaker, and the earliest instant a reconnect may
/// be attempted.
struct KvLink {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    /// Consecutive failed exchanges/connects since the last success.
    failures: u32,
    state: u8,
    /// While set and in the future, the link fails fast without touching
    /// the network (breaker cooldown via backoff).
    next_retry_at: Option<std::time::Instant>,
}

impl KvLink {
    fn set_state(&mut self, server: ServerId, new: u8) {
        if self.state != new {
            self.state = new;
            let reg = safereg_obs::global();
            reg.counter(safereg_obs::names::KV_BREAKER_TRANSITIONS)
                .inc();
            reg.gauge(&safereg_obs::names::link_state_gauge("kv", server.0))
                .set(u64::from(new));
        }
    }
}

/// [`KvTransport`] over TCP connections to every replica.
///
/// The transport is synchronous (one request, at most one response per
/// exchange) but *self-healing*: a dead connection is torn down, backed
/// off, and lazily re-established on a later exchange, so a replica that
/// restarts rejoins the quorum instead of being silently dropped forever.
/// Each server carries a circuit breaker — after
/// [`TransportConfig::breaker_threshold`](safereg_common::config::TransportConfig)
/// consecutive failures the link fails fast (no blocking connect on the
/// hot path) until its backoff cooldown elapses.
pub struct TcpKvTransport {
    chain: KeyChain,
    links: BTreeMap<ServerId, KvLink>,
    config: TransportConfig,
    /// Accountability sink: when set, every attested reply's chain link is
    /// cross-checked (and bad frames noted as suspicion) in the shared
    /// [`AuditLog`].
    audit: Option<Arc<AuditLog>>,
    /// The epoch fingerprint stamped into every outgoing frame. Starts as
    /// the genesis stamp over the connected fleet; updated by
    /// [`reconfigure`](KvTransport::reconfigure) when the client adopts a
    /// newer membership.
    stamp: ConfigStamp,
    /// Jitter rolls for backoff waits.
    rng: safereg_common::rng::DetRng,
}

impl std::fmt::Debug for TcpKvTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpKvTransport")
            .field("servers", &self.links.len())
            .finish()
    }
}

impl TcpKvTransport {
    /// Connects to the given replicas with the default
    /// [`TransportConfig`](safereg_common::config::TransportConfig).
    /// Unreachable replicas are not abandoned — they are retried lazily on
    /// later exchanges.
    pub fn connect(servers: &BTreeMap<ServerId, SocketAddr>, chain: KeyChain) -> Self {
        Self::connect_with(servers, chain, TransportConfig::default())
    }

    /// Connects with an explicit transport policy.
    pub fn connect_with(
        servers: &BTreeMap<ServerId, SocketAddr>,
        chain: KeyChain,
        config: TransportConfig,
    ) -> Self {
        let mut links = BTreeMap::new();
        for (sid, addr) in servers {
            let stream = TcpStream::connect_timeout(addr, config.connect_timeout).ok();
            if let Some(s) = &stream {
                let _ = s.set_read_timeout(Some(config.io_timeout));
                let _ = s.set_nodelay(true);
            }
            safereg_obs::global()
                .gauge(&safereg_obs::names::link_state_gauge("kv", sid.0))
                .set(u64::from(STATE_CLOSED));
            links.insert(
                *sid,
                KvLink {
                    addr: *addr,
                    stream,
                    failures: 0,
                    state: STATE_CLOSED,
                    next_retry_at: None,
                },
            );
        }
        TcpKvTransport {
            chain,
            links,
            config,
            audit: None,
            stamp: EpochConfig::genesis(servers.keys().copied()).stamp(),
            rng: safereg_common::rng::DetRng::seed_from(0x5AFE_4B56),
        }
    }

    /// Attaches a shared audit log: every subsequent exchange feeds
    /// received chain links (and suspicion signals) into it. All
    /// transports of one deployment should share one log — cross-client
    /// pooling is what catches per-reader-consistent equivocation.
    pub fn set_audit(&mut self, audit: Arc<AuditLog>) {
        self.audit = Some(audit);
    }

    /// Notes a circumstantial signal against `to` in the attached audit
    /// log, if any.
    fn note_suspect(&self, to: ServerId) {
        if let Some(audit) = &self.audit {
            audit.suspect(to);
        }
    }

    /// The epoch fingerprint currently stamped into outgoing frames.
    pub fn stamp(&self) -> ConfigStamp {
        self.stamp
    }

    /// Overrides the per-exchange response timeout.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.config.io_timeout = timeout;
        for link in self.links.values() {
            if let Some(stream) = &link.stream {
                let _ = stream.set_read_timeout(Some(timeout));
            }
        }
    }

    /// Overrides the whole transport policy (applies to future connects
    /// and backoff decisions; live streams keep their read timeout until
    /// [`set_timeout`](Self::set_timeout) or a reconnect).
    pub fn set_config(&mut self, config: TransportConfig) {
        self.config = config;
    }

    /// The breaker state of one replica link (0 Closed, 1 HalfOpen,
    /// 2 Open), or `None` for an unknown server.
    pub fn link_state(&self, server: ServerId) -> Option<u8> {
        self.links.get(&server).map(|l| l.state)
    }

    /// Number of currently open sockets. The transport keys connections
    /// by **physical** server, so this is bounded by the fleet size `n`
    /// no matter how many shards route through it — the socket-sharing
    /// invariant the sharding bench asserts (`n` sockets, not `s × n`).
    pub fn live_sockets(&self) -> usize {
        self.links.values().filter(|l| l.stream.is_some()).count()
    }

    /// Marks a link failed: drops the stream, escalates the breaker, and
    /// schedules the earliest reconnect.
    fn fail_link(&mut self, to: ServerId) -> Unreachable {
        let roll = self.rng.next_u64();
        let (backoff, threshold) = (self.config.backoff, self.config.breaker_threshold);
        if let Some(link) = self.links.get_mut(&to) {
            link.stream = None;
            link.failures = link.failures.saturating_add(1);
            if link.failures >= threshold {
                link.set_state(to, STATE_OPEN);
            }
            let wait = backoff.delay(link.failures.saturating_sub(1), roll);
            safereg_obs::global()
                .histogram(safereg_obs::names::KV_BACKOFF_WAIT_MS)
                .record(wait.as_millis() as u64);
            link.next_retry_at = Some(std::time::Instant::now() + wait);
        }
        Unreachable { server: to }
    }

    /// Ensures `to` has a live stream, honouring the breaker cooldown.
    fn ensure_connected(&mut self, to: ServerId) -> Result<(), Unreachable> {
        let (connect_timeout, io_timeout) = (self.config.connect_timeout, self.config.io_timeout);
        let Some(link) = self.links.get_mut(&to) else {
            return Err(Unreachable { server: to });
        };
        if link.stream.is_some() {
            return Ok(());
        }
        if let Some(at) = link.next_retry_at {
            if std::time::Instant::now() < at {
                // Cooling down: fail fast instead of blocking the caller
                // on a connect that just failed.
                return Err(Unreachable { server: to });
            }
        }
        match TcpStream::connect_timeout(&link.addr, connect_timeout) {
            Ok(stream) => {
                let _ = stream.set_read_timeout(Some(io_timeout));
                let _ = stream.set_nodelay(true);
                link.stream = Some(stream);
                link.next_retry_at = None;
                // A handshake is weak evidence (listener backlogs accept
                // for dead servers): half-open until a reply arrives.
                if link.state == STATE_OPEN {
                    link.set_state(to, STATE_HALF_OPEN);
                }
                safereg_obs::global()
                    .counter(safereg_obs::names::KV_RECONNECTS)
                    .inc();
                Ok(())
            }
            Err(_) => Err(self.fail_link(to)),
        }
    }
}

impl KvTransport for TcpKvTransport {
    fn exchange(
        &mut self,
        from: ClientId,
        to: ServerId,
        shard: ShardId,
        key: &[u8],
        msg: &ClientToServer,
        trace: TraceCtx,
    ) -> Result<Vec<ServerToClient>, Unreachable> {
        self.ensure_connected(to)?;
        let frame = KvFrame {
            shard,
            trace,
            stamp: self.stamp,
            link: None,
            key: Bytes::copy_from_slice(key),
            env: Envelope::to_server(from, to, msg.clone()),
        };
        // Encode once into (head, tail) parts — the tail is a slice of the
        // value being put, never a re-buffered copy — and MAC them in
        // streaming fashion.
        let codec = AuthCodec::new(self.chain.pair_key(frame.env.src, frame.env.dst));
        let sealed = SealedKv::seal(&codec, &frame);
        let stream = self
            .links
            .get_mut(&to)
            .and_then(|l| l.stream.as_mut())
            .expect("ensure_connected left a live stream");
        if sealed.write_to(stream).is_err() {
            return Err(self.fail_link(to));
        }
        // One response per request in the KV protocol.
        let sealed = match read_frame(stream) {
            Ok(f) => f,
            Err(_) => return Err(self.fail_link(to)),
        };
        // A frame arrived: the server is alive. Everything below that
        // fails is Byzantine (forged MAC, wrong key, junk) — reachable
        // silence, not a network fault.
        if let Some(link) = self.links.get_mut(&to) {
            link.failures = 0;
            link.set_state(to, STATE_CLOSED);
        }
        if sealed.len() < DIGEST_LEN {
            return Ok(Vec::new());
        }
        let payload = sealed.slice(..sealed.len() - DIGEST_LEN);
        // Borrowing decode: the returned value aliases the frame buffer.
        let reply = match KvFrame::from_bytes(&payload) {
            Ok(f) => f,
            Err(_) => {
                self.note_suspect(to);
                return Ok(Vec::new());
            }
        };
        if AuthCodec::new(self.chain.pair_key(reply.env.src, reply.env.dst))
            .open(sealed.as_ref())
            .is_err()
        {
            // Forged or wire-corrupted: deliberately *not* evidence — the
            // network can do this to a correct replica's frames.
            self.note_suspect(to);
            return Ok(Vec::new());
        }
        if reply.shard != shard || reply.key.as_ref() != key || reply.env.src != NodeId::Server(to)
        {
            self.note_suspect(to);
            return Ok(Vec::new());
        }
        // Authentic reply: cross-check its attestation against everything
        // the deployment has seen. A convicting contradiction files
        // offline-verifiable evidence; the reply is still delivered (the
        // quorum layer above tolerates the lie, the audit layer blames it).
        if let (Some(audit), Some(link)) = (&self.audit, &reply.link) {
            audit.observe(link, &sealed);
        }
        match reply.env.msg {
            Message::ToClient(m) => Ok(vec![m]),
            _ => Ok(Vec::new()),
        }
    }

    fn suspect(&mut self, server: ServerId) {
        self.note_suspect(server);
    }

    /// Switches the transport to a newly adopted membership: stamps future
    /// frames with the new epoch's fingerprint, drops links to ex-members,
    /// opens (lazy) links to joiners whose address the config carries, and
    /// re-addresses members whose address changed. Members the config has
    /// no address for keep their existing link — the digest never covered
    /// addresses, so an id-only view is still a full adoption.
    fn reconfigure(&mut self, config: &EpochConfig) {
        self.stamp = config.stamp();
        self.links.retain(|sid, _| config.contains(*sid));
        for m in &config.members {
            let Some(addr) = m.addr() else { continue };
            match self.links.get_mut(&m.id) {
                Some(link) if link.addr == addr => {}
                Some(link) => {
                    link.addr = addr;
                    link.stream = None;
                    link.failures = 0;
                    link.next_retry_at = None;
                }
                None => {
                    safereg_obs::global()
                        .gauge(&safereg_obs::names::link_state_gauge("kv", m.id.0))
                        .set(u64::from(STATE_CLOSED));
                    self.links.insert(
                        m.id,
                        KvLink {
                            addr,
                            stream: None, // connected lazily on first exchange
                            failures: 0,
                            state: STATE_CLOSED,
                            next_retry_at: None,
                        },
                    );
                }
            }
        }
    }
}

/// Fetches one replica's metrics dump (line-oriented JSON) over any
/// [`KvTransport`] by querying the reserved [`METRICS_KEY`].
///
/// Returns `None` when the replica is unreachable, does not answer,
/// answers with the wrong operation id, or the payload is not UTF-8.
pub fn fetch_metrics(
    transport: &mut impl KvTransport,
    from: ClientId,
    to: ServerId,
    seq: u64,
) -> Option<String> {
    let op = OpId::new(from, seq);
    // The admin path is intercepted before shard dispatch, so any shard id
    // works; 0 by convention.
    let responses = transport
        .exchange(
            from,
            to,
            ShardId(0),
            METRICS_KEY,
            &ClientToServer::QueryData { op },
            TraceCtx::NONE,
        )
        .ok()?;
    responses.into_iter().find_map(|resp| match resp {
        ServerToClient::DataResp {
            op: rop,
            payload: Payload::Full(v),
            ..
        } if rop == op => String::from_utf8(v.as_bytes().to_vec()).ok(),
        _ => None,
    })
}

/// Writer/reader identity used by cluster-internal state-transfer reads;
/// far above any id the harnesses allocate.
const TRANSFER_CLIENT: u16 = 0xFFFD;

/// One staged state-transfer install: `(target, shard, key, tag, payload)`.
type TransferEntry = (ServerId, ShardId, Bytes, Tag, Payload);

/// A whole KV deployment on loopback TCP: one host per fleet server,
/// each serving a register group per shard placed on it.
///
/// The cluster is the reconfiguration orchestrator: [`add_replica`],
/// [`remove_replica`] and [`replace_replica`] perform rolling membership
/// changes (one replica per step, epoch bumped per step) with cross-epoch
/// state transfer — every re-placed or joining register group is rebuilt
/// from a quorum of the *old* epoch before the fleet flips, so quorum
/// intersection holds across the boundary while reads and writes keep
/// running.
///
/// [`add_replica`]: TcpKvCluster::add_replica
/// [`remove_replica`]: TcpKvCluster::remove_replica
/// [`replace_replica`]: TcpKvCluster::replace_replica
#[derive(Debug)]
pub struct TcpKvCluster {
    map: ShardMap,
    chain: KeyChain,
    tconfig: TransportConfig,
    mode: KvMode,
    /// The current membership view, addresses included — the config new
    /// servers are flipped to and `WrongEpoch` redirects advertise.
    config: EpochConfig,
    /// The server-side fault plan every replica is fronted with, if any;
    /// restarts respawn the proxy with the same plan on the old address.
    plan: Option<FaultPlan>,
    /// The serving runtime every host (including respawns and joiners)
    /// runs under, with its pool sizing and readiness backend.
    runtime: ServerRuntime,
    reactors: usize,
    poll_backend: PollBackend,
    hosts: BTreeMap<ServerId, KvServerHost>,
}

/// Builder for a [`TcpKvCluster`] — the one start path. Collapses the old
/// `start` / `start_with` / `start_chaos` / `start_sharded` constructor
/// family into chained setters.
///
/// Exactly one of [`quorum`](Self::quorum) (single pre-sharding group) or
/// [`shards`](Self::shards) (explicit placement, including `m < n`
/// subsets via [`ShardMap::with_replicas`]) must be set.
///
/// ```no_run
/// # use safereg_common::config::QuorumConfig;
/// # use safereg_kv::server::KvMode;
/// # use safereg_kv::tcp::TcpKvCluster;
/// let cfg = QuorumConfig::minimal_bsr(1)?;
/// let cluster = TcpKvCluster::builder(KvMode::Replicated, b"demo")
///     .quorum(cfg)
///     .start()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ClusterBuilder {
    mode: KvMode,
    master_seed: Vec<u8>,
    map: Option<ShardMap>,
    quorum: Option<QuorumConfig>,
    tconfig: TransportConfig,
    plan: Option<FaultPlan>,
    roles: BTreeMap<ServerId, (ByzRole, u64)>,
    runtime: ServerRuntime,
    reactors: usize,
    poll_backend: PollBackend,
}

impl ClusterBuilder {
    /// Deploys the single pre-sharding register group over `cfg.n()`
    /// replicas. Mutually exclusive with [`shards`](Self::shards).
    pub fn quorum(mut self, cfg: QuorumConfig) -> Self {
        self.quorum = Some(cfg);
        self
    }

    /// Deploys one register group per shard of `map`, placed on `map`'s
    /// fleet. Overrides [`quorum`](Self::quorum).
    pub fn shards(mut self, map: ShardMap) -> Self {
        self.map = Some(map);
        self
    }

    /// Transport policy applied to every host and to cluster-internal
    /// state-transfer transports.
    pub fn config(mut self, tconfig: TransportConfig) -> Self {
        self.tconfig = tconfig;
        self
    }

    /// Fronts every replica's listener with a seeded [`ChaosProxy`]
    /// injecting `plan` on accepted connections.
    pub fn chaos(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Spawns `sid` playing `role` (seeded) from the start, instead of
    /// rotating it after [`start`](Self::start). May be called repeatedly
    /// for different replicas.
    pub fn role(mut self, sid: ServerId, role: ByzRole, byz_seed: u64) -> Self {
        self.roles.insert(sid, (role, byz_seed));
        self
    }

    /// Selects the serving runtime for every host (respawns inherit it).
    pub fn runtime(mut self, runtime: ServerRuntime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Reactor pool size per host (`0` = one reactor per hosted shard).
    pub fn reactors(mut self, reactors: usize) -> Self {
        self.reactors = reactors;
        self
    }

    /// Forces a readiness backend for every host's reactor pool.
    pub fn poll_backend(mut self, backend: PollBackend) -> Self {
        self.poll_backend = backend;
        self
    }

    /// Starts the cluster.
    ///
    /// # Errors
    ///
    /// Bind errors, reactor-backend errors, or a builder with neither
    /// [`quorum`](Self::quorum) nor [`shards`](Self::shards) set.
    pub fn start(self) -> std::io::Result<TcpKvCluster> {
        let map = match (self.map, self.quorum) {
            (Some(map), _) => map,
            (None, Some(cfg)) => ShardMap::single(cfg),
            (None, None) => {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidInput,
                    "ClusterBuilder needs .quorum(cfg) or .shards(map)",
                ))
            }
        };
        let chain = KeyChain::from_master_seed(&self.master_seed);
        let mut hosts = BTreeMap::new();
        for sid in map.fleet().iter().copied() {
            let (role, byz_seed) = self
                .roles
                .get(&sid)
                .copied()
                .unwrap_or((ByzRole::Correct, 0));
            hosts.insert(
                sid,
                KvServerHost::spawn_inner(
                    sid,
                    map.shard_config(),
                    self.mode,
                    chain.clone(),
                    bind_first(&("127.0.0.1", 0))?,
                    KvHostOptions {
                        tconfig: self.tconfig,
                        role,
                        byz_seed,
                        chaos: self.plan.clone(),
                        shards: Some(map.clone()),
                        runtime: self.runtime,
                        reactors: self.reactors,
                        poll_backend: self.poll_backend,
                    },
                )?,
            );
        }
        let config = EpochConfig::at_epoch(
            0,
            hosts
                .iter()
                .map(|(s, h)| Member::at(*s, h.addr()))
                .collect(),
        );
        Ok(TcpKvCluster {
            map,
            chain,
            tconfig: self.tconfig,
            mode: self.mode,
            config,
            plan: self.plan,
            runtime: self.runtime,
            reactors: self.reactors,
            poll_backend: self.poll_backend,
            hosts,
        })
    }
}

impl TcpKvCluster {
    /// Starts building a cluster; see [`ClusterBuilder`].
    pub fn builder(mode: KvMode, master_seed: &[u8]) -> ClusterBuilder {
        ClusterBuilder {
            mode,
            master_seed: master_seed.to_vec(),
            map: None,
            quorum: None,
            tconfig: TransportConfig::default(),
            plan: None,
            roles: BTreeMap::new(),
            runtime: ServerRuntime::default(),
            reactors: 0,
            poll_backend: PollBackend::default(),
        }
    }

    /// Starts `n` replicas in the given mode with the default
    /// [`TransportConfig`].
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    #[deprecated(note = "use TcpKvCluster::builder(mode, seed).quorum(cfg).start()")]
    pub fn start(cfg: QuorumConfig, mode: KvMode, master_seed: &[u8]) -> std::io::Result<Self> {
        Self::builder(mode, master_seed).quorum(cfg).start()
    }

    /// Starts `n` replicas with an explicit transport policy governing each
    /// replica's per-connection reply outbox (capacity and shed policy).
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    #[deprecated(note = "use TcpKvCluster::builder(..).quorum(cfg).config(tconfig).start()")]
    pub fn start_with(
        cfg: QuorumConfig,
        mode: KvMode,
        master_seed: &[u8],
        tconfig: TransportConfig,
    ) -> std::io::Result<Self> {
        Self::builder(mode, master_seed)
            .quorum(cfg)
            .config(tconfig)
            .start()
    }

    /// Starts `n` replicas with every listener fronted by a seeded
    /// server-side [`ChaosProxy`] injecting `plan` on accepted connections.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    #[deprecated(note = "use TcpKvCluster::builder(..).quorum(cfg).chaos(plan).start()")]
    pub fn start_chaos(
        cfg: QuorumConfig,
        mode: KvMode,
        master_seed: &[u8],
        tconfig: TransportConfig,
        plan: FaultPlan,
    ) -> std::io::Result<Self> {
        Self::builder(mode, master_seed)
            .quorum(cfg)
            .config(tconfig)
            .chaos(plan)
            .start()
    }

    /// Starts one host per fleet server of `map`, each serving a register
    /// group per shard placed on it, optionally chaos-fronted.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    #[deprecated(note = "use TcpKvCluster::builder(..).shards(map).start()")]
    pub fn start_sharded(
        map: ShardMap,
        mode: KvMode,
        master_seed: &[u8],
        tconfig: TransportConfig,
        plan: Option<FaultPlan>,
    ) -> std::io::Result<Self> {
        let mut b = Self::builder(mode, master_seed).shards(map).config(tconfig);
        if let Some(plan) = plan {
            b = b.chaos(plan);
        }
        b.start()
    }

    /// The per-shard deployment configuration.
    pub fn config(&self) -> QuorumConfig {
        self.map.shard_config()
    }

    /// The shard placement the cluster serves.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Replica addresses, for external transports (e.g. one built against
    /// chaos-proxied addresses).
    pub fn addrs(&self) -> BTreeMap<ServerId, SocketAddr> {
        self.hosts.iter().map(|(s, h)| (*s, h.addr())).collect()
    }

    /// The deployment's key chain, for building transports against
    /// substituted (proxied) addresses.
    pub fn chain(&self) -> &KeyChain {
        &self.chain
    }

    /// A transport connected to every live replica, stamped with the
    /// cluster's current epoch.
    pub fn transport(&self) -> TcpKvTransport {
        self.transport_with(TransportConfig::default())
    }

    /// A transport with an explicit policy (e.g.
    /// [`TransportConfig::aggressive`](safereg_common::config::TransportConfig::aggressive)
    /// for fault-injection tests).
    pub fn transport_with(&self, config: TransportConfig) -> TcpKvTransport {
        let mut t = TcpKvTransport::connect_with(&self.addrs(), self.chain.clone(), config);
        t.reconfigure(&self.config);
        t
    }

    /// An empty audit log keyed for this deployment — links mint under the
    /// same master chain the hosts attest with, so it verifies them.
    /// Callers must still [register](AuditLog::register_writers) the
    /// legitimate writers, and every client transport of the deployment
    /// should [attach](TcpKvTransport::set_audit) the *same* log.
    pub fn audit_log(&self) -> Arc<AuditLog> {
        Arc::new(AuditLog::new(self.chain.clone()))
    }

    /// The current membership epoch.
    pub fn epoch(&self) -> u32 {
        self.config.epoch
    }

    /// The current membership configuration (addresses included).
    pub fn epoch_config(&self) -> &EpochConfig {
        &self.config
    }

    /// Digest of the highest-tag entry replica `sid` stores for `key` in
    /// `shard` — the churn harness's fragment-rebuild assertion reads
    /// this. `None` when the replica is unknown, unplaced, or empty.
    pub fn payload_digest(&self, sid: ServerId, shard: ShardId, key: &[u8]) -> Option<u64> {
        self.hosts.get(&sid)?.payload_digest(shard, key)
    }

    /// Crashes a replica.
    pub fn crash(&mut self, sid: ServerId) {
        if let Some(host) = self.hosts.get_mut(&sid) {
            host.stop();
        }
    }

    /// Restarts a crashed replica on its **old advertised address**,
    /// pulling its register state back from a quorum of its peers before
    /// returning — a crash-recover server is *not* allowed to rejoin
    /// amnesiac. Without the pull, a restarted replica mid-epoch answers
    /// `ZERO` tags; paired with `f` Byzantine replicas that is enough to
    /// starve a later read of its `f + 1` witnesses or (worse) vouch for a
    /// stale tag. A chaos-fronted replica gets a fresh proxy with the same
    /// plan on the same address. Restarting always restores the replica to
    /// [`ByzRole::Correct`].
    ///
    /// # Errors
    ///
    /// Propagates bind errors (e.g. the old port was reclaimed) and
    /// quorum failures during the state pull.
    pub fn restart(&mut self, sid: ServerId, mode: KvMode) -> std::io::Result<()> {
        self.respawn(sid, mode, ByzRole::Correct, 0)?;
        let needs = BTreeMap::from([(sid, self.map.shards_of_server(sid))]);
        // Same-epoch pull: donors and receiver share the current config,
        // so the transferred entries are installed directly (no flip).
        let staged = self.pull_entries(&needs, &self.map, &self.config, &self.map)?;
        safereg_obs::global()
            .counter(names::KV_TRANSFER_KEYS)
            .add(staged.len() as u64);
        for (target, shard, key, tag, payload) in staged {
            if let Some(host) = self.hosts.get(&target) {
                host.install_state(shard, &key, tag, payload);
            }
        }
        Ok(())
    }

    /// Restarts a replica **without** the state pull: it rejoins with
    /// empty registers, exactly the amnesiac crash-recovery hazard
    /// [`restart`] exists to close. Fault-injection harnesses use this to
    /// manufacture slow reads deliberately — after enough amnesiac
    /// restarts no `f + 1` replicas still witness a reader's cached pair,
    /// so every following read is forced onto the slow path. Production
    /// paths must use [`restart`].
    ///
    /// [`restart`]: TcpKvCluster::restart
    ///
    /// # Errors
    ///
    /// Propagates bind errors (e.g. the old port was reclaimed).
    pub fn restart_amnesiac(&mut self, sid: ServerId, mode: KvMode) -> std::io::Result<()> {
        self.respawn(sid, mode, ByzRole::Correct, 0)
    }

    /// Converts a replica to `role` by restarting it in place (old
    /// advertised address, fresh state). State loss is acceptable both
    /// ways: a Byzantine replica's state is untrusted, and restoring to
    /// `Correct` is the crash-recovery case the protocol already absorbs
    /// for `≤ f` replicas. Updates the `server.byz.active` gauge.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn set_role(
        &mut self,
        sid: ServerId,
        mode: KvMode,
        role: ByzRole,
        seed: u64,
    ) -> std::io::Result<()> {
        self.respawn(sid, mode, role, seed)
    }

    /// The role each replica currently plays.
    pub fn roles(&self) -> BTreeMap<ServerId, ByzRole> {
        self.hosts.iter().map(|(s, h)| (*s, h.role())).collect()
    }

    /// Rotates the role of one `(shard, replica)` register group **live**
    /// — no respawn, no state loss in other shards, connections keep
    /// flowing. Returns `false` when the replica is unknown or does not
    /// serve the shard. Updates the `server.byz.active` gauge with the
    /// count of replicas hosting at least one Byzantine group.
    pub fn set_shard_role(&self, sid: ServerId, shard: ShardId, role: ByzRole, seed: u64) -> bool {
        let Some(host) = self.hosts.get(&sid) else {
            return false;
        };
        let changed = host.set_shard_role(shard, role, seed);
        if changed {
            let byz = self
                .hosts
                .values()
                .filter(|h| {
                    self.map
                        .shards()
                        .any(|g| h.shard_role(g).is_some_and(|r| r != ByzRole::Correct))
                })
                .count();
            safereg_obs::global()
                .gauge(names::SERVER_BYZ_ACTIVE)
                .set(byz as u64);
        }
        changed
    }

    /// The per-shard roles one replica's register groups currently play.
    pub fn shard_roles(&self, sid: ServerId) -> BTreeMap<ShardId, ByzRole> {
        let Some(host) = self.hosts.get(&sid) else {
            return BTreeMap::new();
        };
        self.map
            .shards()
            .filter_map(|g| host.shard_role(g).map(|r| (g, r)))
            .collect()
    }

    /// Swaps the fault plan used by *future* respawns: a soak harness
    /// rotates chaos seeds per epoch, and every replica restarted from then
    /// on comes back behind a proxy driven by the new plan. Running proxies
    /// keep their old plan until their host is restarted.
    pub fn set_plan(&mut self, plan: Option<FaultPlan>) {
        self.plan = plan;
    }

    fn respawn(
        &mut self,
        sid: ServerId,
        mode: KvMode,
        role: ByzRole,
        seed: u64,
    ) -> std::io::Result<()> {
        let Some(old) = self.hosts.get(&sid) else {
            return Ok(());
        };
        let addr = old.addr();
        self.hosts.remove(&sid); // drop stops the old host first
        let host = KvServerHost::spawn_inner(
            sid,
            self.map.shard_config(),
            mode,
            self.chain.clone(),
            addr,
            KvHostOptions {
                tconfig: self.tconfig,
                role,
                byz_seed: seed,
                chaos: self.plan.clone(),
                shards: Some(self.map.clone()),
                runtime: self.runtime,
                reactors: self.reactors,
                poll_backend: self.poll_backend,
            },
        )?;
        // A fresh host boots at the genesis epoch; mid-epoch respawns must
        // serve the cluster's current config or every frame bounces.
        host.apply_config(self.config.clone(), self.map.clone());
        self.hosts.insert(sid, host);
        let reg = safereg_obs::global();
        reg.counter(names::SERVER_RESTARTS).inc();
        let byz = self
            .hosts
            .values()
            .filter(|h| h.role() != ByzRole::Correct)
            .count();
        reg.gauge(names::SERVER_BYZ_ACTIVE).set(byz as u64);
        Ok(())
    }

    /// Grows the fleet by one replica (epoch + 1). The joiner spawns on an
    /// ephemeral address, rebuilds every register group placed on it from
    /// a quorum of the old epoch *before* the fleet flips — the coded-mode
    /// joiner rebuilds its **own** fragment by decoding full values from
    /// `m − f` donors' slices and re-encoding its logical slot — and only
    /// then starts serving.
    ///
    /// # Errors
    ///
    /// Bind errors, an already-present joiner id, or a failed transfer
    /// quorum.
    pub fn add_replica(&mut self, joiner: ServerId) -> std::io::Result<()> {
        self.reconfigure_to(&[joiner], &[])
    }

    /// Shrinks the fleet by one replica (epoch + 1). The leaver keeps
    /// serving the old epoch through the transfer, then drains its
    /// outboxes and stops — its `WrongEpoch` answers carry a *lower*
    /// epoch, which no client adopts.
    ///
    /// # Errors
    ///
    /// A fleet that would drop below the per-shard replica count, or a
    /// failed transfer quorum.
    pub fn remove_replica(&mut self, leaver: ServerId) -> std::io::Result<()> {
        self.reconfigure_to(&[], &[leaver])
    }

    /// Swaps one replica for another in a single epoch bump — the rolling
    /// upgrade step. State flows donors → joiner around the flip (coded
    /// snapshots pre-flip, replicated pulls post-flip); the leaver then
    /// retires as in [`remove_replica`].
    ///
    /// # Errors
    ///
    /// As [`add_replica`] and [`remove_replica`].
    ///
    /// [`remove_replica`]: TcpKvCluster::remove_replica
    /// [`add_replica`]: TcpKvCluster::add_replica
    pub fn replace_replica(&mut self, out: ServerId, joiner: ServerId) -> std::io::Result<()> {
        self.reconfigure_to(&[joiner], &[out])
    }

    /// Quarantines one replica in place (read-only demotion, counted under
    /// `kv.audit.quarantines`). Returns `false` for an unknown replica.
    pub fn quarantine(&self, sid: ServerId) -> bool {
        let Some(host) = self.hosts.get(&sid) else {
            return false;
        };
        if !host.is_quarantined() {
            safereg_obs::global()
                .counter(names::KV_AUDIT_QUARANTINES)
                .inc();
        }
        host.quarantine();
        true
    }

    /// Whether a replica is currently quarantined.
    pub fn is_quarantined(&self, sid: ServerId) -> bool {
        self.hosts
            .get(&sid)
            .is_some_and(KvServerHost::is_quarantined)
    }

    /// Applies an audit log's verdicts: every convicted replica still in
    /// the fleet is quarantined (immediately read-only, so it stops
    /// counting toward write quorums) and then evicted through the
    /// reconfiguration path — replaced by a fresh replica on the next free
    /// id, because plain removal could drop the fleet below the per-shard
    /// replica count. Returns `(evicted, replacement)` pairs.
    ///
    /// # Errors
    ///
    /// The reconfiguration errors of
    /// [`replace_replica`](Self::replace_replica).
    pub fn enforce_verdicts(
        &mut self,
        audit: &AuditLog,
    ) -> std::io::Result<Vec<(ServerId, ServerId)>> {
        let mut evicted = Vec::new();
        for (sid, _charge) in audit.convictions() {
            if !self.hosts.contains_key(&sid) {
                continue; // already gone (earlier enforcement or removal)
            }
            self.quarantine(sid);
            let replacement = ServerId(self.hosts.keys().map(|s| s.0).max().map_or(0, |m| m + 1));
            self.replace_replica(sid, replacement)?;
            evicted.push((sid, replacement));
        }
        Ok(evicted)
    }

    /// One rolling reconfiguration step: pull the state the new placement
    /// is missing, flip every surviving member to the new config, install
    /// the staged entries, then retire the leavers — with the pull placed
    /// on the side of the flip that is sound for the mode (see the
    /// ordering comment in the body): coded groups snapshot at the old
    /// epoch *before* the flip (fragments only decode against the old
    /// logical slots — placements sort replicas by physical id, so a
    /// small-id joiner relabels every higher member, and flipping first
    /// would destroy the donor state the transfer still needs), while
    /// replicated groups pull at the new epoch *after* the flip (a
    /// pre-flip snapshot races concurrent writes and lets a joiner vouch
    /// for a superseded tag).
    fn reconfigure_to(
        &mut self,
        joiners: &[ServerId],
        leavers: &[ServerId],
    ) -> std::io::Result<()> {
        let old_map = self.map.clone();
        let old_config = self.config.clone();
        let fleet: Vec<ServerId> = old_config
            .ids()
            .into_iter()
            .filter(|s| !leavers.contains(s))
            .chain(joiners.iter().copied())
            .collect();
        let new_map = old_map.for_fleet(fleet).map_err(|e| {
            std::io::Error::new(
                ErrorKind::InvalidInput,
                format!("no placement over the new fleet: {e:?}"),
            )
        })?;
        // Joiners spawn with the *new* placement (right logical slots from
        // the start) but stay out of the serving epoch until the flip.
        let mut joined: BTreeMap<ServerId, KvServerHost> = BTreeMap::new();
        for sid in joiners {
            if self.hosts.contains_key(sid) {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidInput,
                    format!("joiner {sid:?} is already a fleet member"),
                ));
            }
            joined.insert(
                *sid,
                KvServerHost::spawn_inner(
                    *sid,
                    new_map.shard_config(),
                    self.mode,
                    self.chain.clone(),
                    bind_first(&("127.0.0.1", 0))?,
                    KvHostOptions {
                        tconfig: self.tconfig,
                        chaos: self.plan.clone(),
                        shards: Some(new_map.clone()),
                        runtime: self.runtime,
                        reactors: self.reactors,
                        poll_backend: self.poll_backend,
                        ..KvHostOptions::default()
                    },
                )?,
            );
        }
        // The successor config advertises every member's address — the
        // `WrongEpoch` redirect is how clients learn where a joiner lives.
        let members: Vec<Member> = self
            .hosts
            .iter()
            .filter(|(s, _)| !leavers.contains(s))
            .chain(joined.iter())
            .map(|(s, h)| Member::at(*s, h.addr()))
            .collect();
        let new_config = EpochConfig::at_epoch(old_config.epoch + 1, members);
        // Dry-run placement diff, mirroring `apply_config`'s restart rule:
        // a coded (host, shard) pair needs transfer iff it is newly placed
        // or lands on a different logical slot (fragments are bound to
        // their index); a replicated one only iff newly placed — a relabel
        // renames the slot in place and the full value carries across.
        let mut needs: BTreeMap<ServerId, Vec<ShardId>> = BTreeMap::new();
        for sid in new_map.fleet().iter().copied() {
            for g in new_map.shards_of_server(sid) {
                let moved = match self.mode {
                    KvMode::Coded => old_map.logical_of(g, sid) != new_map.logical_of(g, sid),
                    KvMode::Replicated => old_map.logical_of(g, sid).is_none(),
                };
                if moved {
                    needs.entry(sid).or_default().push(g);
                }
            }
        }
        // PULL ordering differs by mode.
        //
        // Coded groups pull at the OLD epoch, against the old placement,
        // *before* the flip: donors' fragments only decode against the old
        // logical slots, so the snapshot must be taken while they still
        // serve them (the relabeled survivors' installs then restore slot
        // consistency under the new placement).
        //
        // Replicated groups instead pull at the NEW epoch *after* the
        // flip. The flip freezes the set of old-epoch-completed writes —
        // stale-stamped frames are rejected, so no further old-epoch write
        // can reach its quorum — and a new-epoch quorum read then observes
        // every one of them. Installing a pre-flip snapshot would let a
        // joiner vouch for a tag that a racing write superseded between
        // snapshot and flip; with `f` faulty replicas plus the one honest
        // member that legitimately missed the write, that stale vouch
        // reaches `f + 1` witnesses and a later read returns it (a
        // regularity violation). An empty joiner answering `Tag::ZERO`
        // corroborates nothing, so the post-flip window is safe: reads in
        // it either find `f + 1` fresh witnesses or go slow and retry.
        let staged = if self.mode == KvMode::Coded {
            self.pull_entries(&needs, &old_map, &old_config, &new_map)?
        } else {
            Vec::new()
        };
        // FLIP: joiners enter the host table, then every member of the new
        // epoch switches config; leavers keep serving the old epoch until
        // retired below. Install staged state immediately after each flip
        // — the per-key registers are tag-monotonic, so a concurrent write
        // that already landed in the new epoch is never clobbered.
        self.hosts.append(&mut joined);
        for sid in new_map.fleet() {
            if let Some(host) = self.hosts.get(sid) {
                host.apply_config(new_config.clone(), new_map.clone());
            }
        }
        let staged = if self.mode == KvMode::Replicated {
            self.pull_entries(&needs, &new_map, &new_config, &new_map)?
        } else {
            staged
        };
        safereg_obs::global()
            .counter(names::KV_TRANSFER_KEYS)
            .add(staged.len() as u64);
        for (target, shard, key, tag, payload) in staged {
            if let Some(host) = self.hosts.get(&target) {
                host.install_state(shard, &key, tag, payload);
            }
        }
        self.map = new_map;
        self.config = new_config;
        let reg = safereg_obs::global();
        reg.counter(names::KV_EPOCH_RECONFIGS).inc();
        reg.gauge(names::KV_EPOCH_CURRENT)
            .set(u64::from(self.config.epoch));
        for sid in leavers {
            if let Some(mut host) = self.hosts.remove(sid) {
                host.retire(Duration::from_millis(100));
            }
        }
        Ok(())
    }

    /// Quorum-reads every key of every shard in `needs` at `donor_config`'s
    /// epoch over `donor_map`'s placement, and returns the entries to
    /// install — `(target, shard, key, tag, payload)` — where the payload
    /// is the full value (replicated) or the fragment for the target's
    /// logical slot in `target_map` (coded), re-encoded from the value the
    /// quorum decoded out of `m − f` donors' slices.
    fn pull_entries(
        &self,
        needs: &BTreeMap<ServerId, Vec<ShardId>>,
        donor_map: &ShardMap,
        donor_config: &EpochConfig,
        target_map: &ShardMap,
    ) -> std::io::Result<Vec<TransferEntry>> {
        if needs.values().all(Vec::is_empty) {
            return Ok(Vec::new());
        }
        let cfg = donor_map.shard_config();
        // Transport over the donor epoch's members only: joiners (not yet
        // serving that epoch) must not be asked and cannot answer.
        let addrs: BTreeMap<ServerId, SocketAddr> = donor_config
            .ids()
            .into_iter()
            .filter_map(|s| self.hosts.get(&s).map(|h| (s, h.addr())))
            .collect();
        let mut transport = TcpKvTransport::connect_with(&addrs, self.chain.clone(), self.tconfig);
        transport.reconfigure(donor_config);
        let (mut client, code) = match self.mode {
            KvMode::Replicated => (
                KvClient::sharded(
                    donor_map.clone(),
                    WriterId(TRANSFER_CLIENT),
                    ReaderId(TRANSFER_CLIENT),
                ),
                None,
            ),
            KvMode::Coded => {
                let k = cfg.mds_k().expect("coded cluster checked at start");
                (
                    KvClient::sharded_coded(
                        donor_map.clone(),
                        WriterId(TRANSFER_CLIENT),
                        ReaderId(TRANSFER_CLIENT),
                    ),
                    Some(ReedSolomon::new(cfg.n(), k).expect("valid code")),
                )
            }
        };
        client.align_epoch(donor_config.epoch);
        let mut by_shard: BTreeMap<ShardId, Vec<ServerId>> = BTreeMap::new();
        for (sid, shards) in needs {
            for g in shards {
                by_shard.entry(*g).or_default().push(*sid);
            }
        }
        let mut staged = Vec::new();
        for (g, targets) in by_shard {
            // Key discovery is the union over all old donors: up to `f` of
            // them are Byzantine and enumerate nothing, but every key with
            // completed writes lives on at least one honest donor.
            let mut keys: std::collections::BTreeSet<Bytes> = std::collections::BTreeSet::new();
            for donor in donor_map.replicas(g).unwrap_or(&[]) {
                if let Some(host) = self.hosts.get(donor) {
                    keys.extend(host.keys_of_shard(g));
                }
            }
            for key in keys {
                // The pull shares the wire with live (possibly Byzantine)
                // traffic; a bounded retry rides out transient quorum
                // misses without letting a dead fleet wedge the step.
                let mut attempt: u64 = 0;
                let (value, tag) = loop {
                    match client.get_with_tag(&mut transport, &key) {
                        Ok(read) => break read,
                        Err(_) if attempt < 5 => {
                            attempt += 1;
                            std::thread::sleep(Duration::from_millis(20 * attempt));
                        }
                        Err(e) => {
                            return Err(std::io::Error::other(format!(
                                "state transfer read failed: {e}"
                            )));
                        }
                    }
                };
                if tag == Tag::ZERO {
                    continue; // never written: a fresh register transfers nothing
                }
                for &target in &targets {
                    let payload = match &code {
                        None => Payload::Full(value.clone()),
                        Some(code) => {
                            let logical = target_map
                                .logical_of(g, target)
                                .expect("needs lists only placed shards");
                            Payload::Coded(
                                encode_value(code, &value)
                                    .into_iter()
                                    .nth(logical.0 as usize)
                                    .expect("one element per logical slot"),
                            )
                        }
                    };
                    staged.push((target, g, key.clone(), tag, payload));
                }
            }
        }
        Ok(staged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::KvClient;
    use safereg_common::ids::{ReaderId, WriterId};

    #[test]
    fn kv_over_tcp_roundtrip() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let cluster = TcpKvCluster::builder(KvMode::Replicated, b"kv-tcp")
            .quorum(cfg)
            .start()
            .unwrap();
        let mut transport = cluster.transport();
        let mut client = KvClient::new(cfg, WriterId(0), ReaderId(0));
        client
            .put(&mut transport, b"greeting", "hello tcp")
            .unwrap();
        assert_eq!(
            client.get(&mut transport, b"greeting").unwrap().as_bytes(),
            b"hello tcp"
        );
        assert!(client.get(&mut transport, b"missing").unwrap().is_initial());
    }

    #[test]
    fn kv_over_tcp_tolerates_f_crashes() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut cluster = TcpKvCluster::builder(KvMode::Replicated, b"kv-tcp2")
            .quorum(cfg)
            .start()
            .unwrap();
        let mut transport = cluster.transport();
        let mut client = KvClient::new(cfg, WriterId(0), ReaderId(0));
        client.put(&mut transport, b"k", "v1").unwrap();
        cluster.crash(ServerId(3));
        // New transport reflects the crash (the old connection would time
        // out instead; both work, the reconnect is faster in tests).
        transport.set_timeout(Duration::from_millis(500));
        client.put(&mut transport, b"k", "v2").unwrap();
        assert_eq!(client.get(&mut transport, b"k").unwrap().as_bytes(), b"v2");
    }

    #[test]
    fn metrics_key_serves_the_observability_dump() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let cluster = TcpKvCluster::builder(KvMode::Replicated, b"kv-metrics")
            .quorum(cfg)
            .start()
            .unwrap();
        let mut transport = cluster.transport();
        let mut client = KvClient::new(cfg, WriterId(3), ReaderId(3));
        client.put(&mut transport, b"watched", "payload").unwrap();
        assert_eq!(
            client.get(&mut transport, b"watched").unwrap().as_bytes(),
            b"payload"
        );

        let dump = fetch_metrics(
            &mut transport,
            ClientId::Reader(ReaderId(3)),
            ServerId(0),
            99,
        )
        .unwrap();
        // The replica counted the traffic the put/get just generated.
        assert!(dump.contains("\"metric\":\"kv.recv.query_tag\""));
        assert!(dump.contains("\"metric\":\"kv.recv.query_data\""));
        // Backpressure counters are registered eagerly at host spawn, so
        // the dump exposes them even when nothing has been shed yet.
        assert!(dump.contains("\"metric\":\"chan.shed\""));
        // The admin read itself never touches register state.
        assert!(client
            .get(&mut transport, METRICS_KEY)
            .unwrap()
            .is_initial());
    }

    #[test]
    fn coded_kv_over_tcp() {
        let cfg = QuorumConfig::new(8, 1).unwrap(); // k = 3
        let cluster = TcpKvCluster::builder(KvMode::Coded, b"kv-tcp3")
            .quorum(cfg)
            .start()
            .unwrap();
        let mut transport = cluster.transport();
        let mut client = KvClient::new_coded(cfg, WriterId(0), ReaderId(0));
        let blob = vec![0xA1u8; 4096];
        client.put(&mut transport, b"blob", blob.clone()).unwrap();
        assert_eq!(
            client.get(&mut transport, b"blob").unwrap().as_bytes(),
            &blob[..]
        );
    }

    #[test]
    fn byzantine_replica_cannot_corrupt_the_register() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut cluster = TcpKvCluster::builder(KvMode::Replicated, b"kv-byz")
            .quorum(cfg)
            .start()
            .unwrap();
        let mut client = KvClient::new(cfg, WriterId(0), ReaderId(0));
        {
            let mut transport = cluster.transport();
            client.put(&mut transport, b"k", "truth").unwrap();
        }
        cluster
            .set_role(ServerId(3), KvMode::Replicated, ByzRole::Fabricator, 99)
            .unwrap();
        assert_eq!(cluster.roles()[&ServerId(3)], ByzRole::Fabricator);
        // With one live fabricating replica (f = 1), writes still reach a
        // quorum and reads still return a genuinely-written value: the
        // forged high tag lacks the f + 1 witnesses validation demands.
        let mut transport = cluster.transport();
        client.put(&mut transport, b"k", "still truth").unwrap();
        let (value, tag) = client.get_with_tag(&mut transport, b"k").unwrap();
        assert_eq!(value.as_bytes(), b"still truth");
        assert!(tag.num < 1_000_000, "forged tag did not win");
        // Rotation back to honest service is a restart-in-place.
        cluster
            .set_role(ServerId(3), KvMode::Replicated, ByzRole::Correct, 0)
            .unwrap();
        assert_eq!(cluster.roles()[&ServerId(3)], ByzRole::Correct);
    }

    #[test]
    fn chaos_fronted_cluster_still_serves() {
        use safereg_transport::chaos::FaultSpec;
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let plan = FaultPlan::new(7, FaultSpec::calm());
        let cluster = TcpKvCluster::builder(KvMode::Replicated, b"kv-server-chaos")
            .quorum(cfg)
            .chaos(plan)
            .start()
            .unwrap();
        let mut transport = cluster.transport();
        let mut client = KvClient::new(cfg, WriterId(1), ReaderId(1));
        client
            .put(&mut transport, b"k", "through the proxy")
            .unwrap();
        assert_eq!(
            client.get(&mut transport, b"k").unwrap().as_bytes(),
            b"through the proxy"
        );
    }

    #[test]
    fn restart_respawns_on_the_old_address_and_counts() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut cluster = TcpKvCluster::builder(KvMode::Replicated, b"kv-restart")
            .quorum(cfg)
            .start()
            .unwrap();
        let addrs = cluster.addrs();
        let before = safereg_obs::global().counter(names::SERVER_RESTARTS).get();
        cluster.crash(ServerId(2));
        cluster.restart(ServerId(2), KvMode::Replicated).unwrap();
        assert_eq!(cluster.addrs(), addrs, "restart keeps the old address");
        assert!(safereg_obs::global().counter(names::SERVER_RESTARTS).get() > before);
        let mut transport = cluster.transport();
        let mut client = KvClient::new(cfg, WriterId(2), ReaderId(2));
        client.put(&mut transport, b"k", "after restart").unwrap();
        assert_eq!(
            client.get(&mut transport, b"k").unwrap().as_bytes(),
            b"after restart"
        );
    }

    #[test]
    fn idle_kv_connections_are_evicted() {
        use std::io::Read;
        let tconfig = TransportConfig {
            idle_timeout: Duration::from_millis(250),
            ..TransportConfig::default()
        };
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let chain = KeyChain::from_master_seed(b"kv-idle");
        let host = KvServerHost::builder(ServerId(0), cfg, KvMode::Replicated, chain)
            .config(tconfig)
            .spawn()
            .unwrap();
        let before = safereg_obs::global()
            .counter(&names::eviction_counter("idle"))
            .get();
        let mut conn = TcpStream::connect(host.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Send nothing: the host must close the connection once the idle
        // budget elapses, observable here as EOF.
        let mut buf = [0u8; 1];
        assert_eq!(conn.read(&mut buf).unwrap(), 0, "server closed the link");
        let reg = safereg_obs::global();
        assert!(reg.counter(&names::eviction_counter("idle")).get() > before);
        assert!(reg.counter(names::SERVER_EVICTIONS).get() > 0);
    }

    #[test]
    fn every_shed_policy_serves_a_roundtrip() {
        // The bounded reply outbox must be transparent when it never
        // fills: each policy serves the same put/get sequence.
        for (i, policy) in ShedPolicy::ALL.iter().enumerate() {
            let tconfig = TransportConfig {
                chan_capacity: 2,
                shed_policy: *policy,
                ..TransportConfig::default()
            };
            let cfg = QuorumConfig::minimal_bsr(1).unwrap();
            let cluster = TcpKvCluster::builder(KvMode::Replicated, b"kv-shed")
                .quorum(cfg)
                .config(tconfig)
                .start()
                .unwrap();
            let mut transport = cluster.transport();
            let mut client = KvClient::new(cfg, WriterId(i as u16), ReaderId(i as u16));
            client.put(&mut transport, b"key", "value").unwrap();
            assert_eq!(
                client.get(&mut transport, b"key").unwrap().as_bytes(),
                b"value"
            );
        }
    }

    #[test]
    fn rolling_reconfiguration_redirects_live_clients() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut cluster = TcpKvCluster::builder(KvMode::Replicated, b"kv-churn")
            .quorum(cfg)
            .start()
            .unwrap();
        let mut transport = cluster.transport();
        let mut client = KvClient::new(cfg, WriterId(0), ReaderId(0));
        client.put(&mut transport, b"k", "epoch0").unwrap();
        assert_eq!(cluster.epoch(), 0);

        // Add: the stale client learns the successor config from f + 1
        // matching `WrongEpoch` votes and finishes the op against it.
        cluster.add_replica(ServerId(5)).unwrap();
        assert_eq!(cluster.epoch(), 1);
        assert_eq!(
            client.get(&mut transport, b"k").unwrap().as_bytes(),
            b"epoch0"
        );
        assert_eq!(client.epoch(), 1, "client adopted the redirect");

        // Remove: the leaver retires after a drain grace; writes keep
        // completing against the shrunk fleet.
        cluster.remove_replica(ServerId(1)).unwrap();
        assert_eq!(cluster.epoch(), 2);
        client.put(&mut transport, b"k", "epoch2").unwrap();
        assert_eq!(client.epoch(), 2);

        // Replace: one epoch bump swaps a member for a joiner.
        cluster.replace_replica(ServerId(2), ServerId(9)).unwrap();
        assert_eq!(cluster.epoch(), 3);
        assert_eq!(
            client.get(&mut transport, b"k").unwrap().as_bytes(),
            b"epoch2"
        );
        assert_eq!(client.epoch(), 3);
        let fleet = cluster.epoch_config().ids();
        assert!(fleet.contains(&ServerId(9)) && !fleet.contains(&ServerId(2)));

        // The joiner replaced a fully-placed member (m = n), so it pulled
        // the register's state before serving; every replica of a BSR
        // group stores the identical `(tag, value)` entry.
        let g = cluster.map().shard_of(b"k");
        let survivor = cluster.payload_digest(ServerId(3), g, b"k");
        assert!(survivor.is_some(), "survivor holds the register");
        assert_eq!(cluster.payload_digest(ServerId(9), g, b"k"), survivor);
    }

    #[test]
    fn coded_joiner_rebuilds_its_own_fragment() {
        let cfg = QuorumConfig::new(8, 1).unwrap(); // k = 3
        let mut cluster = TcpKvCluster::builder(KvMode::Coded, b"kv-churn-coded")
            .quorum(cfg)
            .start()
            .unwrap();
        let mut transport = cluster.transport();
        let mut client = KvClient::new_coded(cfg, WriterId(0), ReaderId(0));
        let blob = vec![0x5Au8; 3 * 1024];
        client.put(&mut transport, b"blob", blob.clone()).unwrap();
        let (value, tag) = client.get_with_tag(&mut transport, b"blob").unwrap();

        // Replacing the smallest id relabels *every* survivor's logical
        // slot (ascending-id order), so each re-derives its fragment and
        // the joiner decodes the value out of m − f old slices before
        // re-encoding its own — the PULL-before-FLIP ordering under test.
        cluster.replace_replica(ServerId(0), ServerId(9)).unwrap();
        let g = cluster.map().shard_of(b"blob");
        let code = ReedSolomon::new(cfg.n(), cfg.mds_k().unwrap()).unwrap();
        let elems = encode_value(&code, &value);
        for sid in [ServerId(9), ServerId(1)] {
            let logical = cluster.map().logical_of(g, sid).unwrap().0 as usize;
            assert_eq!(
                cluster.payload_digest(sid, g, b"blob").unwrap(),
                crate::server::entry_digest(&tag, &Payload::Coded(elems[logical].clone())),
                "{sid:?} stores exactly the fragment its new slot demands"
            );
        }
        // And the register still reads back through the new epoch.
        assert_eq!(
            client.get(&mut transport, b"blob").unwrap().as_bytes(),
            &blob[..]
        );
        assert_eq!(client.epoch(), 1);
    }

    #[test]
    fn restarted_replica_is_rehydrated_not_amnesiac() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut cluster = TcpKvCluster::builder(KvMode::Replicated, b"kv-amnesia")
            .quorum(cfg)
            .start()
            .unwrap();
        let mut transport = cluster.transport();
        let mut client = KvClient::new(cfg, WriterId(0), ReaderId(0));
        client.put(&mut transport, b"k", "v1").unwrap();
        client.put(&mut transport, b"k", "v2").unwrap();
        let (value, tag) = client.get_with_tag(&mut transport, b"k").unwrap();
        let expected = crate::server::entry_digest(&tag, &Payload::Full(value));

        cluster.crash(ServerId(2));
        cluster.restart(ServerId(2), KvMode::Replicated).unwrap();
        // The restart pulled `(tag, value)` back from a quorum before the
        // replica serves again: it can never vouch for the pre-crash tag
        // (or an empty register) in a read quorum — the StaleRead hazard
        // an amnesiac restart would reintroduce.
        let g = cluster.map().shard_of(b"k");
        assert_eq!(cluster.payload_digest(ServerId(2), g, b"k"), Some(expected));
        transport.set_timeout(Duration::from_millis(500));
        assert_eq!(client.get(&mut transport, b"k").unwrap().as_bytes(), b"v2");
    }
}
