//! TCP deployment of the key-value store.
//!
//! Frames carry `(key, envelope)` pairs, MAC-authenticated under the same
//! pairwise link keys the register transport uses. Each request yields at
//! most one response frame on the same connection (the per-key register
//! protocol is strict request/response at the server), so the transport is
//! a simple synchronous exchange — the quorum logic above it supplies the
//! fault tolerance.
//!
//! The wire path is zero-copy end to end: requests and replies are encoded
//! once into `(head, tail)` parts where the tail is an O(1) [`Bytes`] slice
//! of the value being shipped, the MAC is streamed over the parts, and the
//! receiving side decodes borrowed views of the frame buffer
//! ([`Wire::from_bytes`]) so payload bytes are never memcpy'd after the
//! socket read. Replies leave each server connection through a *bounded*
//! writer outbox sized by
//! [`TransportConfig::chan_capacity`](safereg_common::config::TransportConfig);
//! when a slow client lets it fill, the configured
//! [`ShedPolicy`] decides whether the serving thread blocks or sheds, and
//! every shed increments `chan.shed` plus a per-policy counter in the
//! metrics dump.

use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use safereg_common::buf::Bytes;
use safereg_common::codec::{BytesReader, Wire, WireError, WireReader};
use safereg_common::config::{QuorumConfig, TransportConfig};
use safereg_common::ids::{ClientId, NodeId, ServerId};
use safereg_common::msg::{ClientToServer, Envelope, Message, ServerToClient};
use safereg_common::shard::{ShardId, ShardMap};
use safereg_common::sync::channel::{bounded, BoundedSender, SendTimeoutError, ShedPolicy};
use safereg_crypto::auth::AuthCodec;
use safereg_crypto::keychain::KeyChain;
use safereg_crypto::sha256::DIGEST_LEN;

use safereg_common::msg::{OpId, Payload};
use safereg_common::tag::Tag;
use safereg_common::trace::{Phase, TraceCtx};
use safereg_common::value::Value;
use safereg_core::behavior::ByzRole;
use safereg_obs::names;
use safereg_obs::span::{self, SpanKind};
use safereg_obs::trace::{wall_micros, MsgClass};
use safereg_transport::chaos::{ChaosProxy, FaultPlan};
use safereg_transport::write_all_vectored;

use crate::client::{KvTransport, Unreachable};
use crate::server::{KvMode, KvServer};

/// Reserved key addressing the replica's observability dump rather than a
/// register: a `QUERY-DATA` on this key is answered with the server
/// process's metrics snapshot rendered as line-oriented JSON. The prefix
/// `__safereg/` cannot collide with register state because the admin path
/// intercepts it before the KV table is consulted.
pub const METRICS_KEY: &[u8] = b"__safereg/metrics";

/// One shard- and key-addressed message on the wire, carrying its causal
/// trace context (always present — [`TraceCtx::NONE`] when unsampled — so
/// the frame layout never depends on sampling and the MAC covers it).
#[derive(Debug, Clone, PartialEq, Eq)]
struct KvFrame {
    shard: ShardId,
    trace: TraceCtx,
    key: Bytes,
    env: Envelope,
}

impl Wire for KvFrame {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        self.shard.encode_to(buf);
        self.trace.encode_to(buf);
        self.key.encode_to(buf);
        self.env.encode_to(buf);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(KvFrame {
            shard: ShardId::decode_from(r)?,
            trace: TraceCtx::decode_from(r)?,
            key: Bytes::decode_from(r)?,
            env: Envelope::decode_from(r)?,
        })
    }

    fn decode_borrowed(r: &mut BytesReader<'_>) -> Result<Self, WireError> {
        // Both the key and the envelope payload come out as O(1) slices of
        // the frame buffer.
        Ok(KvFrame {
            shard: ShardId::decode_borrowed(r)?,
            trace: TraceCtx::decode_borrowed(r)?,
            key: Bytes::decode_borrowed(r)?,
            env: Envelope::decode_borrowed(r)?,
        })
    }
}

impl KvFrame {
    /// Splits the encoding into a metadata head and the envelope's trailing
    /// payload (an O(1) slice of the value being shipped, when the message
    /// carries one). `head ++ tail` equals [`Wire::to_bytes`] byte for byte.
    fn encode_parts(&self) -> (Vec<u8>, Option<Bytes>) {
        let (env_head, tail) = self.env.encode_parts();
        let mut head =
            Vec::with_capacity(10 + TraceCtx::WIRE_LEN + self.key.len() + env_head.len());
        self.shard.encode_to(&mut head);
        self.trace.encode_to(&mut head);
        self.key.encode_to(&mut head);
        head.extend_from_slice(&env_head);
        (head, tail)
    }
}

/// A KV frame sealed for one link: metadata head, zero-copy payload tail,
/// and the streaming MAC over both. Written as one length-prefixed wire
/// frame without ever concatenating the parts.
struct SealedKv {
    head: Vec<u8>,
    tail: Bytes,
    mac: [u8; DIGEST_LEN],
}

impl SealedKv {
    fn seal(codec: &AuthCodec, frame: &KvFrame) -> SealedKv {
        let (head, tail) = frame.encode_parts();
        let tail = tail.unwrap_or_default();
        let mac = codec.mac_of_parts(&[&head, tail.as_ref()]);
        SealedKv { head, tail, mac }
    }

    /// Length of the framed payload (head + tail + MAC), i.e. the value of
    /// the `u32` length prefix.
    fn payload_len(&self) -> usize {
        self.head.len() + self.tail.len() + self.mac.len()
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        use std::io::Write;
        stream.write_all(&(self.payload_len() as u32).to_le_bytes())?;
        stream.write_all(&self.head)?;
        stream.write_all(self.tail.as_ref())?;
        stream.write_all(&self.mac)?;
        stream.flush()
    }
}

/// Flushes a batch of sealed replies with one vectored write: four iovecs
/// per frame (length prefix, head, zero-copy tail, MAC), no concatenation.
fn write_batch(stream: &mut TcpStream, batch: &[SealedKv]) -> std::io::Result<()> {
    use std::io::Write;
    let lens: Vec<[u8; 4]> = batch
        .iter()
        .map(|s| (s.payload_len() as u32).to_le_bytes())
        .collect();
    let mut parts: Vec<&[u8]> = Vec::with_capacity(batch.len() * 4);
    for (sealed, len) in batch.iter().zip(&lens) {
        parts.push(len);
        parts.push(&sealed.head);
        parts.push(sealed.tail.as_ref());
        parts.push(&sealed.mac);
    }
    write_all_vectored(stream, &mut parts)?;
    stream.flush()
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Bytes> {
    use std::io::Read;
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > (64 << 20) {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            "oversized frame",
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    // One allocation per frame; every decoded field below borrows from it.
    Ok(Bytes::from(payload))
}

/// Counts one slow-client eviction: the aggregate `server.evictions` plus
/// the per-reason counter (`server.evictions.idle` / `server.evictions.stall`).
/// Every eviction also dumps the flight recorder — the evicted connection's
/// recent spans are exactly the forensics a stall post-mortem needs.
fn count_eviction(reason: &str) {
    let reg = safereg_obs::global();
    reg.counter(names::SERVER_EVICTIONS).inc();
    reg.counter(&names::eviction_counter(reason)).inc();
    span::dump_flight("eviction");
}

/// Queues `reply` on the connection's writer outbox under the configured
/// shed policy, counting sheds. Returns `false` when the connection should
/// be torn down: the writer is gone, or (under [`ShedPolicy::Block`]) the
/// client stalled the outbox past the stall budget and is evicted rather
/// than allowed to wedge the serving thread indefinitely.
fn enqueue_reply(tx: &BoundedSender<SealedKv>, reply: SealedKv, config: &TransportConfig) -> bool {
    let reg = safereg_obs::global();
    match config.shed_policy {
        ShedPolicy::Block => match tx.send_timeout(reply, config.stall_timeout) {
            Ok(_) => true,
            Err(SendTimeoutError::Timeout(_)) => {
                // The channel never sheds under Block; a send that cannot
                // complete within the stall budget means the client has
                // stopped draining — evict it.
                reg.counter(safereg_obs::names::CHAN_SHED).inc();
                reg.counter(&safereg_obs::names::shed_counter(
                    config.shed_policy.label(),
                ))
                .inc();
                count_eviction("stall");
                false
            }
            Err(SendTimeoutError::Disconnected(_)) => false,
        },
        policy => match tx.send(reply) {
            Ok(outcome) => {
                if outcome.shed() {
                    reg.counter(safereg_obs::names::CHAN_SHED).inc();
                    reg.counter(&safereg_obs::names::shed_counter(policy.label()))
                        .inc();
                }
                true
            }
            Err(_) => false,
        },
    }
}

/// Everything optional about how a KV replica is hosted: the transport
/// policy, the (possibly Byzantine) role it plays, and an optional
/// server-side chaos plan that fronts the listener with a fault-injecting
/// proxy so *accepted* connections drop, delay, corrupt and die on the
/// server's side of the wire.
#[derive(Debug, Clone, Default)]
pub struct KvHostOptions {
    /// Transport policy: outbox capacity, shed policy, idle/stall budgets.
    pub tconfig: TransportConfig,
    /// The role this replica plays ([`ByzRole::Correct`] by default) —
    /// applied to every hosted register group; rotate individual shards
    /// afterwards with [`KvServerHost::set_shard_role`].
    pub role: ByzRole,
    /// Seed for the role's fault stream (fabricated tags, forged values).
    pub byz_seed: u64,
    /// When set, the advertised address is a seeded [`ChaosProxy`] in front
    /// of the real listener, injecting this plan on the accept side.
    pub chaos: Option<FaultPlan>,
    /// Shard placement: the replica hosts one register group per shard
    /// placed on it. `None` hosts the single pre-sharding group over the
    /// whole fleet.
    pub shards: Option<ShardMap>,
}

/// A KV replica served over TCP.
pub struct KvServerHost {
    /// Advertised address: the chaos proxy when one fronts the listener,
    /// the listener itself otherwise.
    addr: SocketAddr,
    /// The real listener address (used to unblock the accept loop on stop).
    listen_addr: SocketAddr,
    role: ByzRole,
    /// The hosted replica, shared with every connection thread; kept here
    /// so per-shard roles can be rotated live.
    server: Arc<KvServer>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    chaos: Option<ChaosProxy>,
}

impl std::fmt::Debug for KvServerHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvServerHost")
            .field("addr", &self.addr)
            .field("role", &self.role)
            .field("chaos", &self.chaos.is_some())
            .finish()
    }
}

impl KvServerHost {
    /// Spawns a replica on an ephemeral loopback port with the default
    /// [`TransportConfig`].
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn(
        id: ServerId,
        cfg: QuorumConfig,
        mode: KvMode,
        chain: KeyChain,
    ) -> std::io::Result<Self> {
        Self::spawn_on(id, cfg, mode, chain, ("127.0.0.1", 0))
    }

    /// Spawns a replica on an ephemeral loopback port with an explicit
    /// transport policy (reply-outbox capacity and shed policy).
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn_with(
        id: ServerId,
        cfg: QuorumConfig,
        mode: KvMode,
        chain: KeyChain,
        tconfig: TransportConfig,
    ) -> std::io::Result<Self> {
        Self::spawn_on_with(id, cfg, mode, chain, ("127.0.0.1", 0), tconfig)
    }

    /// Spawns a replica on a caller-chosen address (the `safereg-kv-server`
    /// daemon path).
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn_on(
        id: ServerId,
        cfg: QuorumConfig,
        mode: KvMode,
        chain: KeyChain,
        bind: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<Self> {
        Self::spawn_on_with(id, cfg, mode, chain, bind, TransportConfig::default())
    }

    /// Spawns a replica on a caller-chosen address with an explicit
    /// transport policy.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn_on_with(
        id: ServerId,
        cfg: QuorumConfig,
        mode: KvMode,
        chain: KeyChain,
        bind: impl std::net::ToSocketAddrs,
        tconfig: TransportConfig,
    ) -> std::io::Result<Self> {
        Self::spawn_opts(
            id,
            cfg,
            mode,
            chain,
            bind,
            KvHostOptions {
                tconfig,
                ..KvHostOptions::default()
            },
        )
    }

    /// Spawns a replica with the full option set: transport policy, role,
    /// and optional server-side chaos. With chaos, the real listener binds
    /// ephemerally and a seeded [`ChaosProxy`] binds `bind` in front of it —
    /// the advertised [`addr`](Self::addr) is the proxy, so every accepted
    /// connection runs through the fault plan.
    ///
    /// # Errors
    ///
    /// Propagates bind errors from the listener or the proxy.
    pub fn spawn_opts(
        id: ServerId,
        cfg: QuorumConfig,
        mode: KvMode,
        chain: KeyChain,
        bind: impl std::net::ToSocketAddrs,
        opts: KvHostOptions,
    ) -> std::io::Result<Self> {
        let tconfig = opts.tconfig;
        let listener = match opts.chaos {
            // The proxy owns the requested address; the listener hides on
            // an ephemeral port behind it.
            Some(_) => TcpListener::bind(("127.0.0.1", 0))?,
            None => TcpListener::bind(bind_first(&bind)?)?,
        };
        let listen_addr = listener.local_addr()?;
        let chaos = match opts.chaos {
            Some(plan) => Some(ChaosProxy::spawn_on(
                id,
                listen_addr,
                plan,
                bind_first(&bind)?,
            )?),
            None => None,
        };
        let addr = chaos.as_ref().map_or(listen_addr, ChaosProxy::addr);
        let stop = Arc::new(AtomicBool::new(false));
        let map = opts.shards.unwrap_or_else(|| ShardMap::single(cfg));
        let server = Arc::new(KvServer::sharded_with_role(
            id,
            map.clone(),
            mode,
            opts.role,
            opts.byz_seed,
        ));

        // Register the degradation metrics up front so a dump shows them
        // (at zero) even before any backpressure, eviction or restart.
        let reg = safereg_obs::global();
        reg.counter(safereg_obs::names::CHAN_SHED);
        reg.counter(&safereg_obs::names::shed_counter(
            tconfig.shed_policy.label(),
        ));
        reg.counter(names::SERVER_EVICTIONS);
        reg.counter(&names::eviction_counter("idle"));
        reg.counter(&names::eviction_counter("stall"));
        reg.counter(names::SERVER_RESTARTS);
        reg.gauge(names::SERVER_BYZ_ACTIVE);
        reg.histogram(names::TRANSPORT_BATCH_FRAMES);
        // Likewise every per-shard series, so JSONL dumps are
        // schema-stable regardless of which shards saw traffic.
        for g in map.shards() {
            reg.counter(&names::shard_ops_counter(g.0));
            reg.counter(&names::shard_reads_counter(g.0, "fast"));
            reg.counter(&names::shard_reads_counter(g.0, "slow"));
            reg.gauge(&names::shard_fast_ratio_gauge(g.0));
        }
        // Server-side serving counters for the shards *this* replica hosts,
        // plus one receive counter per message class — the admin dump shows
        // the whole schema at zero before any traffic.
        for g in server.shards() {
            reg.counter(&names::shard_served_counter(g.0));
        }
        for class in MsgClass::ALL {
            reg.counter(&names::kv_recv_counter(class.as_str()));
        }
        reg.gauge(names::KV_SHARD_HOT);
        reg.gauge(names::KV_SHARD_HOT_OPS);

        let host_server = Arc::clone(&server);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name(format!("safereg-kv-{addr}"))
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match conn {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    // Replies are small frames on a request/response path:
                    // Nagle against the client's delayed ACK turns every
                    // exchange into a ~40 ms stall, so send eagerly.
                    let _ = stream.set_nodelay(true);
                    let server = Arc::clone(&server);
                    let stop = Arc::clone(&accept_stop);
                    let chain = chain.clone();
                    let _ = std::thread::Builder::new()
                        .name("safereg-kv-conn".into())
                        .spawn(move || serve(stream, server, chain, stop, id, tconfig));
                }
            })
            .expect("spawn kv accept thread");
        Ok(KvServerHost {
            addr,
            listen_addr,
            role: opts.role,
            server: host_server,
            stop,
            accept_thread: Some(accept_thread),
            chaos,
        })
    }

    /// The advertised address (the chaos proxy's, when one is configured).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The role this replica was spawned with.
    pub fn role(&self) -> ByzRole {
        self.role
    }

    /// The role one shard's register group currently plays, or `None`
    /// when this replica does not serve the shard.
    pub fn shard_role(&self, shard: ShardId) -> Option<ByzRole> {
        self.server.shard_role(shard)
    }

    /// Rotates one shard's role **live** — connections keep flowing and
    /// the other shards' groups are untouched. Returns `false` when this
    /// replica does not serve the shard.
    pub fn set_shard_role(&self, shard: ShardId, role: ByzRole, byz_seed: u64) -> bool {
        self.server.set_shard_role(shard, role, byz_seed)
    }

    /// Stops the host (proxy first, then the listener).
    pub fn stop(&mut self) {
        if let Some(mut proxy) = self.chaos.take() {
            proxy.stop();
        }
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.listen_addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Resolves `bind` to its first address (both the listener and the proxy
/// need a concrete `SocketAddr`, and `ToSocketAddrs` is consumed on use).
fn bind_first(bind: &impl std::net::ToSocketAddrs) -> std::io::Result<SocketAddr> {
    bind.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(ErrorKind::InvalidInput, "bind address resolves to nothing")
    })
}

impl Drop for KvServerHost {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve(
    mut stream: TcpStream,
    server: Arc<KvServer>,
    chain: KeyChain,
    stop: Arc<AtomicBool>,
    me: ServerId,
    tconfig: TransportConfig,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    // Replies leave through a bounded outbox drained by a writer thread, so
    // a client that stops reading exerts backpressure here (or gets shed,
    // per policy) instead of wedging the serving loop on a full socket.
    let (reply_tx, reply_rx) = bounded::<SealedKv>(tconfig.chan_capacity, tconfig.shed_policy);
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let stall_timeout = tconfig.stall_timeout;
    let max_batch = tconfig.max_batch_frames.max(1);
    let writer = std::thread::Builder::new()
        .name("safereg-kv-writer".into())
        .spawn(move || {
            let mut stream = writer_stream;
            // A client that stops draining its socket stalls the writer; a
            // bounded write budget turns that into an eviction instead of a
            // thread parked forever.
            let _ = stream.set_write_timeout(Some(stall_timeout));
            while let Ok(first) = reply_rx.recv() {
                // Opportunistically drain queued replies into one vectored
                // write: fan-in bursts (quorum reads hitting many keys)
                // amortise to a syscall per batch instead of per frame.
                let mut batch = vec![first];
                while batch.len() < max_batch {
                    match reply_rx.try_recv() {
                        Ok(next) => batch.push(next),
                        Err(_) => break,
                    }
                }
                safereg_obs::global()
                    .histogram(names::TRANSPORT_BATCH_FRAMES)
                    .record(batch.len() as u64);
                match write_batch(&mut stream, &batch) {
                    Ok(()) => {}
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                    {
                        count_eviction("stall");
                        return;
                    }
                    Err(_) => return,
                }
            }
        });
    if writer.is_err() {
        return;
    }
    let idle_timeout = tconfig.idle_timeout;
    let mut last_inbound = std::time::Instant::now();
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let sealed = match read_frame(&mut stream) {
            Ok(f) => {
                last_inbound = std::time::Instant::now();
                f
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if last_inbound.elapsed() >= idle_timeout {
                    // The client went quiet past the idle budget: reclaim
                    // the connection thread rather than poll forever.
                    count_eviction("idle");
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        // A crashed host must never answer a request sent after the crash:
        // the flag is set before the client's next frame, so recheck it
        // between reading and responding.
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Authenticate: the MAC is keyed by the claimed endpoints of the
        // inner envelope.
        if sealed.len() < DIGEST_LEN {
            continue;
        }
        let payload = sealed.slice(..sealed.len() - DIGEST_LEN);
        // Borrowing decode: the frame's key and value fields are O(1)
        // slices of `sealed`; `wire.bytes_copied` stays at zero here.
        let frame = match KvFrame::from_bytes(&payload) {
            Ok(f) => f,
            Err(_) => continue,
        };
        // Tracing is one branch when the frame is unsampled; when it is,
        // time the MAC verification as the server's `server_decode` phase.
        let auth_start = if frame.trace.is_sampled() {
            wall_micros()
        } else {
            0
        };
        let codec = AuthCodec::new(chain.pair_key(frame.env.src, frame.env.dst));
        if codec.open(sealed.as_ref()).is_err() {
            continue; // forged or corrupted: drop, not fatal
        }
        // The MAC covered the trace bytes, so the context is authentic
        // from here on. The server's spans run one hop below the client's.
        let strace = frame.trace.hopped(Phase::ServerDecode);
        let me_node = span::node::server(me.0);
        if strace.is_sampled() {
            let now = wall_micros();
            span::record_global(
                strace,
                SpanKind::Segment,
                auth_start,
                now.saturating_sub(auth_start),
                me_node,
                sealed.len() as u32,
            );
        }
        let (from, msg) = match (&frame.env.src, &frame.env.msg) {
            (NodeId::Client(c), Message::ToServer(m)) => (*c, m),
            _ => continue,
        };
        if frame.env.dst != NodeId::Server(me) {
            continue; // misaddressed
        }
        safereg_obs::global()
            .counter(&names::kv_recv_counter(
                MsgClass::of(&frame.env.msg).as_str(),
            ))
            .inc();
        // Admin path: the metrics key is served from the observability
        // registry, never from register state.
        if frame.key.as_slice() == METRICS_KEY {
            if let ClientToServer::QueryData { op } = msg {
                let mut dump = safereg_obs::render_jsonl(&safereg_obs::global().snapshot());
                dump.push_str(&placement_summary(server.map()));
                let resp = ServerToClient::DataResp {
                    op: *op,
                    tag: Tag::ZERO,
                    payload: Payload::Full(Value::from(dump.into_bytes())),
                };
                let reply = KvFrame {
                    shard: frame.shard,
                    trace: frame.trace.hopped(Phase::Reply),
                    key: frame.key.clone(),
                    env: Envelope::to_client(me, from, resp),
                };
                let codec = AuthCodec::new(chain.pair_key(reply.env.src, reply.env.dst));
                if !enqueue_reply(&reply_tx, SealedKv::seal(&codec, &reply), &tconfig) {
                    return;
                }
            }
            continue;
        }
        // Per-shard dispatch: only the addressed register group's lock is
        // taken, so connections serving different shards run in parallel.
        let responses = server.handle_traced(from, frame.shard, &frame.key, msg, strace);
        safereg_obs::global()
            .counter(&names::shard_served_counter(frame.shard.0))
            .inc();
        for resp in responses {
            let reply = KvFrame {
                shard: frame.shard,
                trace: frame.trace.hopped(Phase::Reply),
                key: frame.key.clone(),
                env: Envelope::to_client(me, from, resp),
            };
            let codec = AuthCodec::new(chain.pair_key(reply.env.src, reply.env.dst));
            let sealed_reply = SealedKv::seal(&codec, &reply);
            let outbox_start = if strace.is_sampled() {
                wall_micros()
            } else {
                0
            };
            let reply_len = sealed_reply.payload_len() as u32;
            let queued = enqueue_reply(&reply_tx, sealed_reply, &tconfig);
            if strace.is_sampled() {
                let now = wall_micros();
                span::record_global(
                    strace.with_phase(Phase::Outbox),
                    SpanKind::Segment,
                    outbox_start,
                    now.saturating_sub(outbox_start),
                    me_node,
                    reply_len,
                );
            }
            if !queued {
                return;
            }
        }
    }
}

/// Renders the replica's shard placement as JSONL lines appended to the
/// `__safereg/metrics` admin dump: one `shard_map` header with the
/// placement parameters, then one `placement` line per shard listing its
/// replica subset — so an operator reading a single replica's dump can see
/// *which* physical servers each `kv.shard.g{i}.*` series routes to.
fn placement_summary(map: &ShardMap) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"{{"shard_map":{{"seed":{},"num_shards":{},"fleet":{},"shard_size":{}}}}}"#,
        map.seed(),
        map.num_shards(),
        map.fleet().len(),
        map.shard_config().n(),
    );
    for g in map.shards() {
        let replicas = map
            .replicas(g)
            .unwrap_or(&[])
            .iter()
            .map(|s| s.0.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let _ = writeln!(
            out,
            r#"{{"placement":{{"shard":{},"replicas":[{replicas}]}}}}"#,
            g.0,
        );
    }
    out
}

/// Circuit-breaker states for one KV link.
const STATE_CLOSED: u8 = 0;
const STATE_HALF_OPEN: u8 = 1;
const STATE_OPEN: u8 = 2;

/// One replica's connection state inside [`TcpKvTransport`]: the live
/// stream (if any), the breaker, and the earliest instant a reconnect may
/// be attempted.
struct KvLink {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    /// Consecutive failed exchanges/connects since the last success.
    failures: u32,
    state: u8,
    /// While set and in the future, the link fails fast without touching
    /// the network (breaker cooldown via backoff).
    next_retry_at: Option<std::time::Instant>,
}

impl KvLink {
    fn set_state(&mut self, server: ServerId, new: u8) {
        if self.state != new {
            self.state = new;
            let reg = safereg_obs::global();
            reg.counter(safereg_obs::names::KV_BREAKER_TRANSITIONS)
                .inc();
            reg.gauge(&safereg_obs::names::link_state_gauge("kv", server.0))
                .set(u64::from(new));
        }
    }
}

/// [`KvTransport`] over TCP connections to every replica.
///
/// The transport is synchronous (one request, at most one response per
/// exchange) but *self-healing*: a dead connection is torn down, backed
/// off, and lazily re-established on a later exchange, so a replica that
/// restarts rejoins the quorum instead of being silently dropped forever.
/// Each server carries a circuit breaker — after
/// [`TransportConfig::breaker_threshold`](safereg_common::config::TransportConfig)
/// consecutive failures the link fails fast (no blocking connect on the
/// hot path) until its backoff cooldown elapses.
pub struct TcpKvTransport {
    chain: KeyChain,
    links: BTreeMap<ServerId, KvLink>,
    config: TransportConfig,
    /// Jitter rolls for backoff waits.
    rng: safereg_common::rng::DetRng,
}

impl std::fmt::Debug for TcpKvTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpKvTransport")
            .field("servers", &self.links.len())
            .finish()
    }
}

impl TcpKvTransport {
    /// Connects to the given replicas with the default
    /// [`TransportConfig`](safereg_common::config::TransportConfig).
    /// Unreachable replicas are not abandoned — they are retried lazily on
    /// later exchanges.
    pub fn connect(servers: &BTreeMap<ServerId, SocketAddr>, chain: KeyChain) -> Self {
        Self::connect_with(servers, chain, TransportConfig::default())
    }

    /// Connects with an explicit transport policy.
    pub fn connect_with(
        servers: &BTreeMap<ServerId, SocketAddr>,
        chain: KeyChain,
        config: TransportConfig,
    ) -> Self {
        let mut links = BTreeMap::new();
        for (sid, addr) in servers {
            let stream = TcpStream::connect_timeout(addr, config.connect_timeout).ok();
            if let Some(s) = &stream {
                let _ = s.set_read_timeout(Some(config.io_timeout));
                let _ = s.set_nodelay(true);
            }
            safereg_obs::global()
                .gauge(&safereg_obs::names::link_state_gauge("kv", sid.0))
                .set(u64::from(STATE_CLOSED));
            links.insert(
                *sid,
                KvLink {
                    addr: *addr,
                    stream,
                    failures: 0,
                    state: STATE_CLOSED,
                    next_retry_at: None,
                },
            );
        }
        TcpKvTransport {
            chain,
            links,
            config,
            rng: safereg_common::rng::DetRng::seed_from(0x5AFE_4B56),
        }
    }

    /// Overrides the per-exchange response timeout.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.config.io_timeout = timeout;
        for link in self.links.values() {
            if let Some(stream) = &link.stream {
                let _ = stream.set_read_timeout(Some(timeout));
            }
        }
    }

    /// Overrides the whole transport policy (applies to future connects
    /// and backoff decisions; live streams keep their read timeout until
    /// [`set_timeout`](Self::set_timeout) or a reconnect).
    pub fn set_config(&mut self, config: TransportConfig) {
        self.config = config;
    }

    /// The breaker state of one replica link (0 Closed, 1 HalfOpen,
    /// 2 Open), or `None` for an unknown server.
    pub fn link_state(&self, server: ServerId) -> Option<u8> {
        self.links.get(&server).map(|l| l.state)
    }

    /// Number of currently open sockets. The transport keys connections
    /// by **physical** server, so this is bounded by the fleet size `n`
    /// no matter how many shards route through it — the socket-sharing
    /// invariant the sharding bench asserts (`n` sockets, not `s × n`).
    pub fn live_sockets(&self) -> usize {
        self.links.values().filter(|l| l.stream.is_some()).count()
    }

    /// Marks a link failed: drops the stream, escalates the breaker, and
    /// schedules the earliest reconnect.
    fn fail_link(&mut self, to: ServerId) -> Unreachable {
        let roll = self.rng.next_u64();
        let (backoff, threshold) = (self.config.backoff, self.config.breaker_threshold);
        if let Some(link) = self.links.get_mut(&to) {
            link.stream = None;
            link.failures = link.failures.saturating_add(1);
            if link.failures >= threshold {
                link.set_state(to, STATE_OPEN);
            }
            let wait = backoff.delay(link.failures.saturating_sub(1), roll);
            safereg_obs::global()
                .histogram(safereg_obs::names::KV_BACKOFF_WAIT_MS)
                .record(wait.as_millis() as u64);
            link.next_retry_at = Some(std::time::Instant::now() + wait);
        }
        Unreachable { server: to }
    }

    /// Ensures `to` has a live stream, honouring the breaker cooldown.
    fn ensure_connected(&mut self, to: ServerId) -> Result<(), Unreachable> {
        let (connect_timeout, io_timeout) = (self.config.connect_timeout, self.config.io_timeout);
        let Some(link) = self.links.get_mut(&to) else {
            return Err(Unreachable { server: to });
        };
        if link.stream.is_some() {
            return Ok(());
        }
        if let Some(at) = link.next_retry_at {
            if std::time::Instant::now() < at {
                // Cooling down: fail fast instead of blocking the caller
                // on a connect that just failed.
                return Err(Unreachable { server: to });
            }
        }
        match TcpStream::connect_timeout(&link.addr, connect_timeout) {
            Ok(stream) => {
                let _ = stream.set_read_timeout(Some(io_timeout));
                let _ = stream.set_nodelay(true);
                link.stream = Some(stream);
                link.next_retry_at = None;
                // A handshake is weak evidence (listener backlogs accept
                // for dead servers): half-open until a reply arrives.
                if link.state == STATE_OPEN {
                    link.set_state(to, STATE_HALF_OPEN);
                }
                safereg_obs::global()
                    .counter(safereg_obs::names::KV_RECONNECTS)
                    .inc();
                Ok(())
            }
            Err(_) => Err(self.fail_link(to)),
        }
    }
}

impl KvTransport for TcpKvTransport {
    fn exchange(
        &mut self,
        from: ClientId,
        to: ServerId,
        shard: ShardId,
        key: &[u8],
        msg: &ClientToServer,
        trace: TraceCtx,
    ) -> Result<Vec<ServerToClient>, Unreachable> {
        self.ensure_connected(to)?;
        let frame = KvFrame {
            shard,
            trace,
            key: Bytes::copy_from_slice(key),
            env: Envelope::to_server(from, to, msg.clone()),
        };
        // Encode once into (head, tail) parts — the tail is a slice of the
        // value being put, never a re-buffered copy — and MAC them in
        // streaming fashion.
        let codec = AuthCodec::new(self.chain.pair_key(frame.env.src, frame.env.dst));
        let sealed = SealedKv::seal(&codec, &frame);
        let stream = self
            .links
            .get_mut(&to)
            .and_then(|l| l.stream.as_mut())
            .expect("ensure_connected left a live stream");
        if sealed.write_to(stream).is_err() {
            return Err(self.fail_link(to));
        }
        // One response per request in the KV protocol.
        let sealed = match read_frame(stream) {
            Ok(f) => f,
            Err(_) => return Err(self.fail_link(to)),
        };
        // A frame arrived: the server is alive. Everything below that
        // fails is Byzantine (forged MAC, wrong key, junk) — reachable
        // silence, not a network fault.
        if let Some(link) = self.links.get_mut(&to) {
            link.failures = 0;
            link.set_state(to, STATE_CLOSED);
        }
        if sealed.len() < DIGEST_LEN {
            return Ok(Vec::new());
        }
        let payload = sealed.slice(..sealed.len() - DIGEST_LEN);
        // Borrowing decode: the returned value aliases the frame buffer.
        let reply = match KvFrame::from_bytes(&payload) {
            Ok(f) => f,
            Err(_) => return Ok(Vec::new()),
        };
        if AuthCodec::new(self.chain.pair_key(reply.env.src, reply.env.dst))
            .open(sealed.as_ref())
            .is_err()
        {
            return Ok(Vec::new());
        }
        if reply.shard != shard || reply.key.as_ref() != key || reply.env.src != NodeId::Server(to)
        {
            return Ok(Vec::new());
        }
        match reply.env.msg {
            Message::ToClient(m) => Ok(vec![m]),
            _ => Ok(Vec::new()),
        }
    }
}

/// Fetches one replica's metrics dump (line-oriented JSON) over any
/// [`KvTransport`] by querying the reserved [`METRICS_KEY`].
///
/// Returns `None` when the replica is unreachable, does not answer,
/// answers with the wrong operation id, or the payload is not UTF-8.
pub fn fetch_metrics(
    transport: &mut impl KvTransport,
    from: ClientId,
    to: ServerId,
    seq: u64,
) -> Option<String> {
    let op = OpId::new(from, seq);
    // The admin path is intercepted before shard dispatch, so any shard id
    // works; 0 by convention.
    let responses = transport
        .exchange(
            from,
            to,
            ShardId(0),
            METRICS_KEY,
            &ClientToServer::QueryData { op },
            TraceCtx::NONE,
        )
        .ok()?;
    responses.into_iter().find_map(|resp| match resp {
        ServerToClient::DataResp {
            op: rop,
            payload: Payload::Full(v),
            ..
        } if rop == op => String::from_utf8(v.as_bytes().to_vec()).ok(),
        _ => None,
    })
}

/// A whole KV deployment on loopback TCP: one host per fleet server,
/// each serving a register group per shard placed on it.
#[derive(Debug)]
pub struct TcpKvCluster {
    map: ShardMap,
    chain: KeyChain,
    tconfig: TransportConfig,
    /// The server-side fault plan every replica is fronted with, if any;
    /// restarts respawn the proxy with the same plan on the old address.
    plan: Option<FaultPlan>,
    hosts: BTreeMap<ServerId, KvServerHost>,
}

impl TcpKvCluster {
    /// Starts `n` replicas in the given mode with the default
    /// [`TransportConfig`].
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn start(cfg: QuorumConfig, mode: KvMode, master_seed: &[u8]) -> std::io::Result<Self> {
        Self::start_with(cfg, mode, master_seed, TransportConfig::default())
    }

    /// Starts `n` replicas with an explicit transport policy governing each
    /// replica's per-connection reply outbox (capacity and shed policy).
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn start_with(
        cfg: QuorumConfig,
        mode: KvMode,
        master_seed: &[u8],
        tconfig: TransportConfig,
    ) -> std::io::Result<Self> {
        Self::start_opts(cfg, mode, master_seed, tconfig, None)
    }

    /// Starts `n` replicas with every listener fronted by a seeded
    /// server-side [`ChaosProxy`] injecting `plan` on accepted connections.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn start_chaos(
        cfg: QuorumConfig,
        mode: KvMode,
        master_seed: &[u8],
        tconfig: TransportConfig,
        plan: FaultPlan,
    ) -> std::io::Result<Self> {
        Self::start_opts(cfg, mode, master_seed, tconfig, Some(plan))
    }

    fn start_opts(
        cfg: QuorumConfig,
        mode: KvMode,
        master_seed: &[u8],
        tconfig: TransportConfig,
        plan: Option<FaultPlan>,
    ) -> std::io::Result<Self> {
        Self::start_sharded(ShardMap::single(cfg), mode, master_seed, tconfig, plan)
    }

    /// Starts one host per fleet server of `map`, each serving a register
    /// group per shard placed on it, optionally chaos-fronted.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn start_sharded(
        map: ShardMap,
        mode: KvMode,
        master_seed: &[u8],
        tconfig: TransportConfig,
        plan: Option<FaultPlan>,
    ) -> std::io::Result<Self> {
        let chain = KeyChain::from_master_seed(master_seed);
        let mut hosts = BTreeMap::new();
        for sid in map.fleet().iter().copied() {
            hosts.insert(
                sid,
                KvServerHost::spawn_opts(
                    sid,
                    map.shard_config(),
                    mode,
                    chain.clone(),
                    ("127.0.0.1", 0),
                    KvHostOptions {
                        tconfig,
                        chaos: plan.clone(),
                        shards: Some(map.clone()),
                        ..KvHostOptions::default()
                    },
                )?,
            );
        }
        Ok(TcpKvCluster {
            map,
            chain,
            tconfig,
            plan,
            hosts,
        })
    }

    /// The per-shard deployment configuration.
    pub fn config(&self) -> QuorumConfig {
        self.map.shard_config()
    }

    /// The shard placement the cluster serves.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Replica addresses, for external transports (e.g. one built against
    /// chaos-proxied addresses).
    pub fn addrs(&self) -> BTreeMap<ServerId, SocketAddr> {
        self.hosts.iter().map(|(s, h)| (*s, h.addr())).collect()
    }

    /// The deployment's key chain, for building transports against
    /// substituted (proxied) addresses.
    pub fn chain(&self) -> &KeyChain {
        &self.chain
    }

    /// A transport connected to every live replica.
    pub fn transport(&self) -> TcpKvTransport {
        TcpKvTransport::connect(&self.addrs(), self.chain.clone())
    }

    /// A transport with an explicit policy (e.g.
    /// [`TransportConfig::aggressive`](safereg_common::config::TransportConfig::aggressive)
    /// for fault-injection tests).
    pub fn transport_with(&self, config: TransportConfig) -> TcpKvTransport {
        TcpKvTransport::connect_with(&self.addrs(), self.chain.clone(), config)
    }

    /// Crashes a replica.
    pub fn crash(&mut self, sid: ServerId) {
        if let Some(host) = self.hosts.get_mut(&sid) {
            host.stop();
        }
    }

    /// Restarts a crashed replica on its **old advertised address** with
    /// empty register state — a crash-recover server. A chaos-fronted
    /// replica gets a fresh proxy with the same plan on the same address.
    /// Safe for `≤ f` replicas: the register protocol treats lost state
    /// like a slow server that never saw the writes. Restarting always
    /// restores the replica to [`ByzRole::Correct`].
    ///
    /// # Errors
    ///
    /// Propagates bind errors (e.g. the old port was reclaimed).
    pub fn restart(&mut self, sid: ServerId, mode: KvMode) -> std::io::Result<()> {
        self.respawn(sid, mode, ByzRole::Correct, 0)
    }

    /// Converts a replica to `role` by restarting it in place (old
    /// advertised address, fresh state). State loss is acceptable both
    /// ways: a Byzantine replica's state is untrusted, and restoring to
    /// `Correct` is the crash-recovery case the protocol already absorbs
    /// for `≤ f` replicas. Updates the `server.byz.active` gauge.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn set_role(
        &mut self,
        sid: ServerId,
        mode: KvMode,
        role: ByzRole,
        seed: u64,
    ) -> std::io::Result<()> {
        self.respawn(sid, mode, role, seed)
    }

    /// The role each replica currently plays.
    pub fn roles(&self) -> BTreeMap<ServerId, ByzRole> {
        self.hosts.iter().map(|(s, h)| (*s, h.role())).collect()
    }

    /// Rotates the role of one `(shard, replica)` register group **live**
    /// — no respawn, no state loss in other shards, connections keep
    /// flowing. Returns `false` when the replica is unknown or does not
    /// serve the shard. Updates the `server.byz.active` gauge with the
    /// count of replicas hosting at least one Byzantine group.
    pub fn set_shard_role(&self, sid: ServerId, shard: ShardId, role: ByzRole, seed: u64) -> bool {
        let Some(host) = self.hosts.get(&sid) else {
            return false;
        };
        let changed = host.set_shard_role(shard, role, seed);
        if changed {
            let byz = self
                .hosts
                .values()
                .filter(|h| {
                    self.map
                        .shards()
                        .any(|g| h.shard_role(g).is_some_and(|r| r != ByzRole::Correct))
                })
                .count();
            safereg_obs::global()
                .gauge(names::SERVER_BYZ_ACTIVE)
                .set(byz as u64);
        }
        changed
    }

    /// The per-shard roles one replica's register groups currently play.
    pub fn shard_roles(&self, sid: ServerId) -> BTreeMap<ShardId, ByzRole> {
        let Some(host) = self.hosts.get(&sid) else {
            return BTreeMap::new();
        };
        self.map
            .shards()
            .filter_map(|g| host.shard_role(g).map(|r| (g, r)))
            .collect()
    }

    /// Swaps the fault plan used by *future* respawns: a soak harness
    /// rotates chaos seeds per epoch, and every replica restarted from then
    /// on comes back behind a proxy driven by the new plan. Running proxies
    /// keep their old plan until their host is restarted.
    pub fn set_plan(&mut self, plan: Option<FaultPlan>) {
        self.plan = plan;
    }

    fn respawn(
        &mut self,
        sid: ServerId,
        mode: KvMode,
        role: ByzRole,
        seed: u64,
    ) -> std::io::Result<()> {
        let Some(old) = self.hosts.get(&sid) else {
            return Ok(());
        };
        let addr = old.addr();
        self.hosts.remove(&sid); // drop stops the old host first
        let host = KvServerHost::spawn_opts(
            sid,
            self.map.shard_config(),
            mode,
            self.chain.clone(),
            addr,
            KvHostOptions {
                tconfig: self.tconfig,
                role,
                byz_seed: seed,
                chaos: self.plan.clone(),
                shards: Some(self.map.clone()),
            },
        )?;
        self.hosts.insert(sid, host);
        let reg = safereg_obs::global();
        reg.counter(names::SERVER_RESTARTS).inc();
        let byz = self
            .hosts
            .values()
            .filter(|h| h.role() != ByzRole::Correct)
            .count();
        reg.gauge(names::SERVER_BYZ_ACTIVE).set(byz as u64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::KvClient;
    use safereg_common::ids::{ReaderId, WriterId};

    #[test]
    fn kv_over_tcp_roundtrip() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let cluster = TcpKvCluster::start(cfg, KvMode::Replicated, b"kv-tcp").unwrap();
        let mut transport = cluster.transport();
        let mut client = KvClient::new(cfg, WriterId(0), ReaderId(0));
        client
            .put(&mut transport, b"greeting", "hello tcp")
            .unwrap();
        assert_eq!(
            client.get(&mut transport, b"greeting").unwrap().as_bytes(),
            b"hello tcp"
        );
        assert!(client.get(&mut transport, b"missing").unwrap().is_initial());
    }

    #[test]
    fn kv_over_tcp_tolerates_f_crashes() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut cluster = TcpKvCluster::start(cfg, KvMode::Replicated, b"kv-tcp2").unwrap();
        let mut transport = cluster.transport();
        let mut client = KvClient::new(cfg, WriterId(0), ReaderId(0));
        client.put(&mut transport, b"k", "v1").unwrap();
        cluster.crash(ServerId(3));
        // New transport reflects the crash (the old connection would time
        // out instead; both work, the reconnect is faster in tests).
        transport.set_timeout(Duration::from_millis(500));
        client.put(&mut transport, b"k", "v2").unwrap();
        assert_eq!(client.get(&mut transport, b"k").unwrap().as_bytes(), b"v2");
    }

    #[test]
    fn metrics_key_serves_the_observability_dump() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let cluster = TcpKvCluster::start(cfg, KvMode::Replicated, b"kv-metrics").unwrap();
        let mut transport = cluster.transport();
        let mut client = KvClient::new(cfg, WriterId(3), ReaderId(3));
        client.put(&mut transport, b"watched", "payload").unwrap();
        assert_eq!(
            client.get(&mut transport, b"watched").unwrap().as_bytes(),
            b"payload"
        );

        let dump = fetch_metrics(
            &mut transport,
            ClientId::Reader(ReaderId(3)),
            ServerId(0),
            99,
        )
        .unwrap();
        // The replica counted the traffic the put/get just generated.
        assert!(dump.contains("\"metric\":\"kv.recv.query_tag\""));
        assert!(dump.contains("\"metric\":\"kv.recv.query_data\""));
        // Backpressure counters are registered eagerly at host spawn, so
        // the dump exposes them even when nothing has been shed yet.
        assert!(dump.contains("\"metric\":\"chan.shed\""));
        // The admin read itself never touches register state.
        assert!(client
            .get(&mut transport, METRICS_KEY)
            .unwrap()
            .is_initial());
    }

    #[test]
    fn coded_kv_over_tcp() {
        let cfg = QuorumConfig::new(8, 1).unwrap(); // k = 3
        let cluster = TcpKvCluster::start(cfg, KvMode::Coded, b"kv-tcp3").unwrap();
        let mut transport = cluster.transport();
        let mut client = KvClient::new_coded(cfg, WriterId(0), ReaderId(0));
        let blob = vec![0xA1u8; 4096];
        client.put(&mut transport, b"blob", blob.clone()).unwrap();
        assert_eq!(
            client.get(&mut transport, b"blob").unwrap().as_bytes(),
            &blob[..]
        );
    }

    #[test]
    fn byzantine_replica_cannot_corrupt_the_register() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut cluster = TcpKvCluster::start(cfg, KvMode::Replicated, b"kv-byz").unwrap();
        let mut client = KvClient::new(cfg, WriterId(0), ReaderId(0));
        {
            let mut transport = cluster.transport();
            client.put(&mut transport, b"k", "truth").unwrap();
        }
        cluster
            .set_role(ServerId(3), KvMode::Replicated, ByzRole::Fabricator, 99)
            .unwrap();
        assert_eq!(cluster.roles()[&ServerId(3)], ByzRole::Fabricator);
        // With one live fabricating replica (f = 1), writes still reach a
        // quorum and reads still return a genuinely-written value: the
        // forged high tag lacks the f + 1 witnesses validation demands.
        let mut transport = cluster.transport();
        client.put(&mut transport, b"k", "still truth").unwrap();
        let (value, tag) = client.get_with_tag(&mut transport, b"k").unwrap();
        assert_eq!(value.as_bytes(), b"still truth");
        assert!(tag.num < 1_000_000, "forged tag did not win");
        // Rotation back to honest service is a restart-in-place.
        cluster
            .set_role(ServerId(3), KvMode::Replicated, ByzRole::Correct, 0)
            .unwrap();
        assert_eq!(cluster.roles()[&ServerId(3)], ByzRole::Correct);
    }

    #[test]
    fn chaos_fronted_cluster_still_serves() {
        use safereg_transport::chaos::FaultSpec;
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let plan = FaultPlan::new(7, FaultSpec::calm());
        let cluster = TcpKvCluster::start_chaos(
            cfg,
            KvMode::Replicated,
            b"kv-server-chaos",
            TransportConfig::default(),
            plan,
        )
        .unwrap();
        let mut transport = cluster.transport();
        let mut client = KvClient::new(cfg, WriterId(1), ReaderId(1));
        client
            .put(&mut transport, b"k", "through the proxy")
            .unwrap();
        assert_eq!(
            client.get(&mut transport, b"k").unwrap().as_bytes(),
            b"through the proxy"
        );
    }

    #[test]
    fn restart_respawns_on_the_old_address_and_counts() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut cluster = TcpKvCluster::start(cfg, KvMode::Replicated, b"kv-restart").unwrap();
        let addrs = cluster.addrs();
        let before = safereg_obs::global().counter(names::SERVER_RESTARTS).get();
        cluster.crash(ServerId(2));
        cluster.restart(ServerId(2), KvMode::Replicated).unwrap();
        assert_eq!(cluster.addrs(), addrs, "restart keeps the old address");
        assert!(safereg_obs::global().counter(names::SERVER_RESTARTS).get() > before);
        let mut transport = cluster.transport();
        let mut client = KvClient::new(cfg, WriterId(2), ReaderId(2));
        client.put(&mut transport, b"k", "after restart").unwrap();
        assert_eq!(
            client.get(&mut transport, b"k").unwrap().as_bytes(),
            b"after restart"
        );
    }

    #[test]
    fn idle_kv_connections_are_evicted() {
        use std::io::Read;
        let tconfig = TransportConfig {
            idle_timeout: Duration::from_millis(250),
            ..TransportConfig::default()
        };
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let chain = KeyChain::from_master_seed(b"kv-idle");
        let host =
            KvServerHost::spawn_with(ServerId(0), cfg, KvMode::Replicated, chain, tconfig).unwrap();
        let before = safereg_obs::global()
            .counter(&names::eviction_counter("idle"))
            .get();
        let mut conn = TcpStream::connect(host.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Send nothing: the host must close the connection once the idle
        // budget elapses, observable here as EOF.
        let mut buf = [0u8; 1];
        assert_eq!(conn.read(&mut buf).unwrap(), 0, "server closed the link");
        let reg = safereg_obs::global();
        assert!(reg.counter(&names::eviction_counter("idle")).get() > before);
        assert!(reg.counter(names::SERVER_EVICTIONS).get() > 0);
    }

    #[test]
    fn every_shed_policy_serves_a_roundtrip() {
        // The bounded reply outbox must be transparent when it never
        // fills: each policy serves the same put/get sequence.
        for (i, policy) in ShedPolicy::ALL.iter().enumerate() {
            let tconfig = TransportConfig {
                chan_capacity: 2,
                shed_policy: *policy,
                ..TransportConfig::default()
            };
            let cfg = QuorumConfig::minimal_bsr(1).unwrap();
            let cluster =
                TcpKvCluster::start_with(cfg, KvMode::Replicated, b"kv-shed", tconfig).unwrap();
            let mut transport = cluster.transport();
            let mut client = KvClient::new(cfg, WriterId(i as u16), ReaderId(i as u16));
            client.put(&mut transport, b"key", "value").unwrap();
            assert_eq!(
                client.get(&mut transport, b"key").unwrap().as_bytes(),
                b"value"
            );
        }
    }
}
