//! TCP deployment of the key-value store.
//!
//! Frames carry `(key, envelope)` pairs, MAC-authenticated under the same
//! pairwise link keys the register transport uses. Each request yields at
//! most one response frame on the same connection (the per-key register
//! protocol is strict request/response at the server), so the transport is
//! a simple synchronous exchange — the quorum logic above it supplies the
//! fault tolerance.

use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use safereg_common::buf::Bytes;
use safereg_common::codec::{Wire, WireError, WireReader};
use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ClientId, NodeId, ServerId};
use safereg_common::msg::{ClientToServer, Envelope, Message, ServerToClient};
use safereg_common::sync::Mutex;
use safereg_crypto::auth::AuthCodec;
use safereg_crypto::keychain::KeyChain;

use safereg_common::msg::{OpId, Payload};
use safereg_common::tag::Tag;
use safereg_common::value::Value;
use safereg_obs::trace::MsgClass;

use crate::client::KvTransport;
use crate::server::{KvMode, KvServer};

/// Reserved key addressing the replica's observability dump rather than a
/// register: a `QUERY-DATA` on this key is answered with the server
/// process's metrics snapshot rendered as line-oriented JSON. The prefix
/// `__safereg/` cannot collide with register state because the admin path
/// intercepts it before the KV table is consulted.
pub const METRICS_KEY: &[u8] = b"__safereg/metrics";

/// One key-addressed message on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
struct KvFrame {
    key: Bytes,
    env: Envelope,
}

impl Wire for KvFrame {
    fn encode_to(&self, buf: &mut Vec<u8>) {
        self.key.encode_to(buf);
        self.env.encode_to(buf);
    }

    fn decode_from(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(KvFrame {
            key: Bytes::decode_from(r)?,
            env: Envelope::decode_from(r)?,
        })
    }
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    use std::io::Read;
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > (64 << 20) {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            "oversized frame",
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// A KV replica served over TCP.
pub struct KvServerHost {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for KvServerHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvServerHost")
            .field("addr", &self.addr)
            .finish()
    }
}

impl KvServerHost {
    /// Spawns a replica on an ephemeral loopback port.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn(
        id: ServerId,
        cfg: QuorumConfig,
        mode: KvMode,
        chain: KeyChain,
    ) -> std::io::Result<Self> {
        Self::spawn_on(id, cfg, mode, chain, ("127.0.0.1", 0))
    }

    /// Spawns a replica on a caller-chosen address (the `safereg-kv-server`
    /// daemon path).
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn_on(
        id: ServerId,
        cfg: QuorumConfig,
        mode: KvMode,
        chain: KeyChain,
        bind: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let server = Arc::new(Mutex::new(match mode {
            KvMode::Replicated => KvServer::new(id, cfg),
            KvMode::Coded => KvServer::new_coded(id, cfg),
        }));

        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name(format!("safereg-kv-{addr}"))
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match conn {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let server = Arc::clone(&server);
                    let stop = Arc::clone(&accept_stop);
                    let chain = chain.clone();
                    let _ = std::thread::Builder::new()
                        .name("safereg-kv-conn".into())
                        .spawn(move || serve(stream, server, chain, stop, id));
                }
            })
            .expect("spawn kv accept thread");
        Ok(KvServerHost {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the host.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for KvServerHost {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve(
    mut stream: TcpStream,
    server: Arc<Mutex<KvServer>>,
    chain: KeyChain,
    stop: Arc<AtomicBool>,
    me: ServerId,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let sealed = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue
            }
            Err(_) => return,
        };
        // Authenticate: the MAC is keyed by the claimed endpoints of the
        // inner envelope.
        if sealed.len() < 32 {
            continue;
        }
        let (payload, _mac) = sealed.split_at(sealed.len() - 32);
        let frame = match KvFrame::from_wire_bytes(payload) {
            Ok(f) => f,
            Err(_) => continue,
        };
        let codec = AuthCodec::new(chain.pair_key(frame.env.src, frame.env.dst));
        if codec.open(&sealed).is_err() {
            continue; // forged or corrupted: drop, not fatal
        }
        let (from, msg) = match (&frame.env.src, &frame.env.msg) {
            (NodeId::Client(c), Message::ToServer(m)) => (*c, m),
            _ => continue,
        };
        if frame.env.dst != NodeId::Server(me) {
            continue; // misaddressed
        }
        safereg_obs::global()
            .counter(&format!("kv.recv.{}", MsgClass::of(&frame.env.msg)))
            .inc();
        // Admin path: the metrics key is served from the observability
        // registry, never from register state.
        if frame.key.as_slice() == METRICS_KEY {
            if let ClientToServer::QueryData { op } = msg {
                let dump = safereg_obs::render_jsonl(&safereg_obs::global().snapshot());
                let resp = ServerToClient::DataResp {
                    op: *op,
                    tag: Tag::ZERO,
                    payload: Payload::Full(Value::from(dump.into_bytes())),
                };
                let reply = KvFrame {
                    key: frame.key.clone(),
                    env: Envelope::to_client(me, from, resp),
                };
                let bytes = reply.to_wire_bytes();
                let sealed =
                    AuthCodec::new(chain.pair_key(reply.env.src, reply.env.dst)).seal(&bytes);
                if write_frame(&mut stream, &sealed).is_err() {
                    return;
                }
            }
            continue;
        }
        let responses = server.lock().handle(from, &frame.key, msg);
        for resp in responses {
            let out = Envelope::to_client(me, from, resp);
            let reply = KvFrame {
                key: frame.key.clone(),
                env: out,
            };
            let bytes = reply.to_wire_bytes();
            let sealed = AuthCodec::new(chain.pair_key(reply.env.src, reply.env.dst)).seal(&bytes);
            if write_frame(&mut stream, &sealed).is_err() {
                return;
            }
        }
    }
}

/// [`KvTransport`] over TCP connections to every replica.
pub struct TcpKvTransport {
    chain: KeyChain,
    conns: BTreeMap<ServerId, TcpStream>,
    timeout: Duration,
}

impl std::fmt::Debug for TcpKvTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpKvTransport")
            .field("servers", &self.conns.len())
            .finish()
    }
}

impl TcpKvTransport {
    /// Connects to the given replicas; unreachable ones are skipped (they
    /// behave as silent servers, which the quorum tolerates).
    pub fn connect(servers: &BTreeMap<ServerId, SocketAddr>, chain: KeyChain) -> Self {
        let timeout = Duration::from_secs(5);
        let mut conns = BTreeMap::new();
        for (sid, addr) in servers {
            if let Ok(stream) = TcpStream::connect_timeout(addr, timeout) {
                let _ = stream.set_read_timeout(Some(timeout));
                let _ = stream.set_nodelay(true);
                conns.insert(*sid, stream);
            }
        }
        TcpKvTransport {
            chain,
            conns,
            timeout,
        }
    }

    /// Overrides the per-exchange response timeout.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
        for stream in self.conns.values() {
            let _ = stream.set_read_timeout(Some(self.timeout));
        }
    }
}

impl KvTransport for TcpKvTransport {
    fn exchange(
        &mut self,
        from: ClientId,
        to: ServerId,
        key: &[u8],
        msg: &ClientToServer,
    ) -> Vec<ServerToClient> {
        let stream = match self.conns.get_mut(&to) {
            Some(s) => s,
            None => return Vec::new(),
        };
        let frame = KvFrame {
            key: Bytes::copy_from_slice(key),
            env: Envelope::to_server(from, to, msg.clone()),
        };
        let bytes = frame.to_wire_bytes();
        let sealed = AuthCodec::new(self.chain.pair_key(frame.env.src, frame.env.dst)).seal(&bytes);
        if write_frame(stream, &sealed).is_err() {
            self.conns.remove(&to);
            return Vec::new();
        }
        // One response per request in the KV protocol.
        let sealed = match read_frame(stream) {
            Ok(f) => f,
            Err(_) => {
                self.conns.remove(&to);
                return Vec::new();
            }
        };
        if sealed.len() < 32 {
            return Vec::new();
        }
        let (payload, _mac) = sealed.split_at(sealed.len() - 32);
        let reply = match KvFrame::from_wire_bytes(payload) {
            Ok(f) => f,
            Err(_) => return Vec::new(),
        };
        if AuthCodec::new(self.chain.pair_key(reply.env.src, reply.env.dst))
            .open(&sealed)
            .is_err()
        {
            return Vec::new();
        }
        if reply.key.as_ref() != key || reply.env.src != NodeId::Server(to) {
            return Vec::new();
        }
        match reply.env.msg {
            Message::ToClient(m) => vec![m],
            _ => Vec::new(),
        }
    }
}

/// Fetches one replica's metrics dump (line-oriented JSON) over any
/// [`KvTransport`] by querying the reserved [`METRICS_KEY`].
///
/// Returns `None` when the replica does not answer, answers with the
/// wrong operation id, or the payload is not UTF-8.
pub fn fetch_metrics(
    transport: &mut impl KvTransport,
    from: ClientId,
    to: ServerId,
    seq: u64,
) -> Option<String> {
    let op = OpId::new(from, seq);
    let responses = transport.exchange(from, to, METRICS_KEY, &ClientToServer::QueryData { op });
    responses.into_iter().find_map(|resp| match resp {
        ServerToClient::DataResp {
            op: rop,
            payload: Payload::Full(v),
            ..
        } if rop == op => String::from_utf8(v.as_bytes().to_vec()).ok(),
        _ => None,
    })
}

/// A whole KV deployment on loopback TCP.
#[derive(Debug)]
pub struct TcpKvCluster {
    cfg: QuorumConfig,
    chain: KeyChain,
    hosts: BTreeMap<ServerId, KvServerHost>,
}

impl TcpKvCluster {
    /// Starts `n` replicas in the given mode.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn start(cfg: QuorumConfig, mode: KvMode, master_seed: &[u8]) -> std::io::Result<Self> {
        let chain = KeyChain::from_master_seed(master_seed);
        let mut hosts = BTreeMap::new();
        for sid in cfg.servers() {
            hosts.insert(sid, KvServerHost::spawn(sid, cfg, mode, chain.clone())?);
        }
        Ok(TcpKvCluster { cfg, chain, hosts })
    }

    /// The deployment configuration.
    pub fn config(&self) -> &QuorumConfig {
        &self.cfg
    }

    /// A transport connected to every live replica.
    pub fn transport(&self) -> TcpKvTransport {
        let addrs: BTreeMap<ServerId, SocketAddr> =
            self.hosts.iter().map(|(s, h)| (*s, h.addr())).collect();
        TcpKvTransport::connect(&addrs, self.chain.clone())
    }

    /// Crashes a replica.
    pub fn crash(&mut self, sid: ServerId) {
        if let Some(host) = self.hosts.get_mut(&sid) {
            host.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::KvClient;
    use safereg_common::ids::{ReaderId, WriterId};

    #[test]
    fn kv_over_tcp_roundtrip() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let cluster = TcpKvCluster::start(cfg, KvMode::Replicated, b"kv-tcp").unwrap();
        let mut transport = cluster.transport();
        let mut client = KvClient::new(cfg, WriterId(0), ReaderId(0));
        client
            .put(&mut transport, b"greeting", "hello tcp")
            .unwrap();
        assert_eq!(
            client.get(&mut transport, b"greeting").unwrap().as_bytes(),
            b"hello tcp"
        );
        assert!(client.get(&mut transport, b"missing").unwrap().is_initial());
    }

    #[test]
    fn kv_over_tcp_tolerates_f_crashes() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut cluster = TcpKvCluster::start(cfg, KvMode::Replicated, b"kv-tcp2").unwrap();
        let mut transport = cluster.transport();
        let mut client = KvClient::new(cfg, WriterId(0), ReaderId(0));
        client.put(&mut transport, b"k", "v1").unwrap();
        cluster.crash(ServerId(3));
        // New transport reflects the crash (the old connection would time
        // out instead; both work, the reconnect is faster in tests).
        transport.set_timeout(Duration::from_millis(500));
        client.put(&mut transport, b"k", "v2").unwrap();
        assert_eq!(client.get(&mut transport, b"k").unwrap().as_bytes(), b"v2");
    }

    #[test]
    fn metrics_key_serves_the_observability_dump() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let cluster = TcpKvCluster::start(cfg, KvMode::Replicated, b"kv-metrics").unwrap();
        let mut transport = cluster.transport();
        let mut client = KvClient::new(cfg, WriterId(3), ReaderId(3));
        client.put(&mut transport, b"watched", "payload").unwrap();
        assert_eq!(
            client.get(&mut transport, b"watched").unwrap().as_bytes(),
            b"payload"
        );

        let dump = fetch_metrics(
            &mut transport,
            ClientId::Reader(ReaderId(3)),
            ServerId(0),
            99,
        )
        .unwrap();
        // The replica counted the traffic the put/get just generated.
        assert!(dump.contains("\"metric\":\"kv.recv.query_tag\""));
        assert!(dump.contains("\"metric\":\"kv.recv.query_data\""));
        // The admin read itself never touches register state.
        assert!(client
            .get(&mut transport, METRICS_KEY)
            .unwrap()
            .is_initial());
    }

    #[test]
    fn coded_kv_over_tcp() {
        let cfg = QuorumConfig::new(8, 1).unwrap(); // k = 3
        let cluster = TcpKvCluster::start(cfg, KvMode::Coded, b"kv-tcp3").unwrap();
        let mut transport = cluster.transport();
        let mut client = KvClient::new_coded(cfg, WriterId(0), ReaderId(0));
        let blob = vec![0xA1u8; 4096];
        client.put(&mut transport, b"blob", blob.clone()).unwrap();
        assert_eq!(
            client.get(&mut transport, b"blob").unwrap().as_bytes(),
            &blob[..]
        );
    }
}
