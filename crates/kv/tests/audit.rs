//! Accountability integration tests: the audit log must never convict a
//! correct replica — no matter how badly the wire mangles its frames —
//! and the evidence it files against a real Byzantine replica must
//! survive a serialize → decode → re-verify round trip, exactly as a
//! third party holding only the deployment seed would check it.
//!
//! Both properties are judged through the per-log API
//! ([`AuditLog::convictions`], [`AuditLog::evidence`]), not the global
//! metric counters: integration tests share one process-wide registry,
//! so counter deltas from parallel tests would bleed into each other.

use std::time::Duration;

use safereg_common::codec::Wire;
use safereg_common::config::{BackoffPolicy, QuorumConfig, TransportConfig};
use safereg_common::ids::{ReaderId, ServerId, WriterId};
use safereg_core::behavior::ByzRole;
use safereg_kv::{Evidence, KvClient, KvMode, TcpKvCluster, Verdict};
use safereg_transport::chaos::{FaultPlan, FaultSpec};

/// Retries per logical operation; chaos faults individual frames, so a
/// handful of fresh attempts heals everything short of a partition.
const OP_RETRIES: usize = 8;

/// Transport policy matching the audit harness: short io timeout so
/// dropped frames cost little, one in-op retry to re-ask silent servers.
fn chaos_transport() -> TransportConfig {
    TransportConfig {
        connect_timeout: Duration::from_millis(250),
        op_deadline: Duration::from_secs(3),
        io_timeout: Duration::from_millis(50),
        retry_budget: 1,
        backoff: BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            jitter_permille: 200,
        },
        ..TransportConfig::aggressive()
    }
}

/// A wire that drops, delays, corrupts and truncates frames — but no
/// replica lies. MAC failures and silence must stay suspicion, never
/// conviction.
fn lossy_spec() -> FaultSpec {
    FaultSpec {
        kill_permille: 0,
        truncate_permille: 10,
        corrupt_permille: 40,
        drop_permille: 25,
        delay_permille: 25,
        delay_micros: (50, 500),
        classes: None,
    }
}

/// Correct replicas under heavy wire chaos are never convicted, across
/// several fault schedules: corruption forges nothing (the HMAC link
/// fails closed into suspicion) and drops prove nothing.
#[test]
fn correct_replicas_never_convicted_under_chaos() {
    let q = QuorumConfig::minimal_bsr(1).unwrap();
    for seed in [21u64, 22, 23] {
        let cluster = TcpKvCluster::builder(KvMode::Replicated, b"audit-it-chaos")
            .quorum(q)
            .config(chaos_transport())
            .chaos(FaultPlan::new(seed, lossy_spec()))
            .start()
            .unwrap();
        let audit = cluster.audit_log();
        audit.register_writers([WriterId(1)]);
        audit.expect_correct(q.servers());

        let mut transport = cluster.transport_with(chaos_transport());
        transport.set_audit(audit.clone());
        let mut client = KvClient::new(q, WriterId(1), ReaderId(1));
        client.set_policy(chaos_transport());

        for i in 0..16u32 {
            let key = format!("chaos-{}", i % 2);
            let value = format!("v{seed}:{i}");
            for attempt in 0..OP_RETRIES {
                match client.put(&mut transport, key.as_bytes(), value.clone().into_bytes()) {
                    Ok(_) => break,
                    Err(_) if attempt + 1 < OP_RETRIES => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => {}
                }
            }
            for attempt in 0..OP_RETRIES {
                match client.get(&mut transport, key.as_bytes()) {
                    Ok(_) => break,
                    Err(_) if attempt + 1 < OP_RETRIES => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => {}
                }
            }
        }

        assert!(
            audit.convictions().is_empty(),
            "seed {seed}: chaos alone convicted a correct replica: {:?}",
            audit.convictions()
        );
        for s in q.servers() {
            assert_ne!(
                audit.verdict(s),
                Verdict::Convicted(s),
                "seed {seed}: correct s{} convicted",
                s.0
            );
        }
        assert!(
            audit.reverify().is_empty(),
            "seed {seed}: a filed record failed offline re-verification"
        );
    }
}

/// Evidence filed against a live Fabricator survives the full offline
/// round trip: encode to wire bytes, decode as a third party, re-verify
/// from the deployment seed and writer set alone — and a tampered copy
/// accusing a correct replica verifies as nothing.
#[test]
fn evidence_survives_serialization_roundtrip() {
    let q = QuorumConfig::minimal_bsr(1).unwrap();
    let fabricator = ServerId(3);
    let cluster = TcpKvCluster::builder(KvMode::Replicated, b"audit-it-roundtrip")
        .quorum(q)
        .start()
        .unwrap();
    let audit = cluster.audit_log();
    audit.register_writers([WriterId(1)]);
    audit.expect_correct(q.servers().filter(|s| *s != fabricator));

    for g in cluster.map().shards_of_server(fabricator) {
        assert!(
            cluster.set_shard_role(fabricator, g, ByzRole::Fabricator, 0xFAB5EED),
            "fabricator must serve its placed shard"
        );
    }

    let mut transport = cluster.transport();
    transport.set_audit(audit.clone());
    let mut client = KvClient::new(q, WriterId(1), ReaderId(1));

    // The fabricator forges tags under an unregistered writer id, so one
    // read that happens to consult it is enough; loop until convicted.
    for i in 0..40u32 {
        let _ = client.put(&mut transport, b"rt-key", format!("v{i}").into_bytes());
        let _ = client.get(&mut transport, b"rt-key");
        if !audit.convictions().is_empty() {
            break;
        }
    }
    assert_eq!(
        audit
            .convictions()
            .iter()
            .map(|(s, _)| *s)
            .collect::<Vec<_>>(),
        vec![fabricator],
        "exactly the fabricator must be convicted"
    );

    let evidence = audit.evidence();
    assert!(!evidence.is_empty(), "conviction must have filed evidence");
    let writers = audit.registered_writers();
    for e in &evidence {
        let bytes = e.to_bytes();
        let decoded = Evidence::from_bytes(&bytes).expect("evidence decodes");
        assert_eq!(&decoded, e, "evidence must round-trip bit-exactly");
        assert!(
            decoded.verify(cluster.chain(), &writers),
            "decoded evidence must still convict s{}",
            decoded.accused.0
        );

        // Tampering: the same links cannot be re-aimed at a correct
        // replica — the chain MAC binds each link to its minter.
        let mut framed = decoded.clone();
        framed.accused = ServerId(0);
        assert!(
            !framed.verify(cluster.chain(), &writers),
            "re-aimed evidence must not verify"
        );
    }
    assert!(
        audit.reverify().is_empty(),
        "every filed record must re-verify offline"
    );
}
