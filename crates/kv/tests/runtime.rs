//! Reactor-runtime integration tests: the readiness-driven serving path
//! (`ServerRuntime::Reactor`, the default) must behave exactly like the
//! thread-per-connection runtime under chaos, backpressure and idleness,
//! and the builder API must be a faithful replacement for the deprecated
//! `spawn*`/`start*` constructors.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use safereg_common::config::{QuorumConfig, ServerRuntime, TransportConfig};
use safereg_common::epoch::EpochConfig;
use safereg_common::ids::{ClientId, ReaderId, ServerId, WriterId};
use safereg_common::msg::{ClientToServer, OpId};
use safereg_common::shard::{ShardId, ShardMap};
use safereg_common::sync::channel::ShedPolicy;
use safereg_crypto::keychain::KeyChain;
use safereg_kv::{encode_request, KvClient, KvMode, KvServerHost, TcpKvCluster};
use safereg_obs::names;
use safereg_transport::chaos::{ChaosNet, FaultPlan, FaultSpec};
use safereg_transport::poll::PollBackend;

fn roundtrip(cluster: &TcpKvCluster, who: u16, key: &[u8], value: &str) {
    let mut transport = cluster.transport();
    let mut client = KvClient::new(cluster.map().shard_config(), WriterId(who), ReaderId(who));
    client.put(&mut transport, key, value).unwrap();
    assert_eq!(
        client.get(&mut transport, key).unwrap().as_bytes(),
        value.as_bytes()
    );
}

/// The deprecated constructors and the builders they delegate to must be
/// behaviourally interchangeable: same wire protocol, same chain, same
/// roundtrip result. (This test is the one sanctioned caller of the shims;
/// production code is held to the builder by a CI grep gate.)
#[test]
#[allow(deprecated)]
fn builders_are_equivalent_to_deprecated_constructors() {
    let cfg = QuorumConfig::minimal_bsr(1).unwrap();

    let via_shim = TcpKvCluster::start(cfg, KvMode::Replicated, b"rt-equiv").unwrap();
    roundtrip(&via_shim, 1, b"equiv", "via shim");
    drop(via_shim);

    let via_builder = TcpKvCluster::builder(KvMode::Replicated, b"rt-equiv")
        .quorum(cfg)
        .start()
        .unwrap();
    roundtrip(&via_builder, 1, b"equiv", "via builder");
    drop(via_builder);

    // Single-host parity: a shim-spawned and a builder-spawned replica
    // accept the same sealed frames.
    let chain = KeyChain::from_master_seed(b"rt-equiv-host");
    let a = KvServerHost::spawn(ServerId(0), cfg, KvMode::Replicated, chain.clone()).unwrap();
    let b = KvServerHost::builder(ServerId(0), cfg, KvMode::Replicated, chain)
        .spawn()
        .unwrap();
    assert_ne!(a.addr(), b.addr());

    // A builder with neither quorum nor shards must refuse to start.
    let err = TcpKvCluster::builder(KvMode::Replicated, b"rt-equiv")
        .start()
        .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}

/// Chaos over the reactor runtime: with every link fronted by a fault
/// proxy, one replica severed and then blackholed (`<= f`), the register
/// must keep serving and the reactor must report the connections it
/// adopted.
#[test]
fn reactor_cluster_survives_sever_and_blackhole() {
    let cfg = QuorumConfig::minimal_bsr(1).unwrap();
    let cluster = TcpKvCluster::builder(KvMode::Replicated, b"rt-chaos")
        .quorum(cfg)
        .runtime(ServerRuntime::Reactor)
        .start()
        .unwrap();
    let plan = FaultPlan::new(0x0EAC_0EAC, FaultSpec::calm());
    let net = ChaosNet::wrap(&cluster.addrs(), &plan).unwrap();
    let mut transport = safereg_kv::TcpKvTransport::connect_with(
        &net.addrs(),
        cluster.chain().clone(),
        TransportConfig::aggressive(),
    );
    let mut client = KvClient::new(cfg, WriterId(3), ReaderId(3));
    client.set_policy(TransportConfig::aggressive());

    client.put(&mut transport, b"chaos", "calm").unwrap();

    // Cut one replica's established sessions outright.
    net.sever(ServerId(4));
    client.put(&mut transport, b"chaos", "severed").unwrap();
    assert_eq!(
        client.get(&mut transport, b"chaos").unwrap().as_bytes(),
        b"severed"
    );

    // Blackhole the same replica: new sessions connect but deliver nothing.
    net.set_blackhole(ServerId(4), true);
    client.put(&mut transport, b"chaos", "blackholed").unwrap();
    assert_eq!(
        client.get(&mut transport, b"chaos").unwrap().as_bytes(),
        b"blackholed"
    );
    net.set_blackhole(ServerId(4), false);

    let reg = safereg_obs::global();
    assert!(
        reg.gauge(names::REACTOR_THREADS).get() > 0,
        "reactor threads must be live while the cluster serves"
    );
    assert!(
        reg.counter(names::REACTOR_HANDOFFS).get() > 0,
        "accepted connections must have been handed to reactors"
    );
}

/// Builds the wire bytes of one authenticated `QueryData` request against
/// a single freshly-spawned replica (genesis epoch, single shard).
fn canned_query(chain: &KeyChain, cfg: QuorumConfig, who: u16, seq: u64) -> Vec<u8> {
    let stamp = EpochConfig::genesis(cfg.servers()).stamp();
    let from = ClientId::Reader(ReaderId(who));
    encode_request(
        chain,
        stamp,
        from,
        ServerId(0),
        ShardId(0),
        b"flood",
        &ClientToServer::QueryData {
            op: OpId::new(from, seq),
        },
    )
}

/// A peer that sends requests but never drains its replies must be stall
/// evicted by the reactor once the write side has been blocked for the
/// stall budget. The replies are made large (reads of a 1 MiB value) so
/// the kernel's generous loopback buffers cannot mask the jam.
#[test]
fn slow_reader_is_stall_evicted_by_the_reactor() {
    let tconfig = TransportConfig {
        chan_capacity: 4,
        shed_policy: ShedPolicy::Block,
        adaptive_outbox: false,
        stall_timeout: Duration::from_millis(300),
        idle_timeout: Duration::from_secs(30),
        ..TransportConfig::default()
    };
    // A one-replica deployment (n = 1, f = 0): a real client can complete
    // the seeding put against the same host the flood targets.
    let cfg = QuorumConfig::new(1, 0).unwrap();
    let chain = KeyChain::from_master_seed(b"rt-stall");
    let host = KvServerHost::builder(ServerId(0), cfg, KvMode::Replicated, chain.clone())
        .config(tconfig)
        .runtime(ServerRuntime::Reactor)
        .spawn()
        .unwrap();
    let addrs: std::collections::BTreeMap<ServerId, std::net::SocketAddr> =
        [(ServerId(0), host.addr())].into_iter().collect();
    let mut transport =
        safereg_kv::TcpKvTransport::connect_with(&addrs, chain.clone(), TransportConfig::default());
    let mut client = KvClient::new(cfg, WriterId(7), ReaderId(7));
    let blob: Vec<u8> = (0..1_048_576u32).map(|i| (i % 251) as u8).collect();
    client.put(&mut transport, b"flood", blob).unwrap();

    let reg = safereg_obs::global();
    let before = reg.counter(&names::eviction_counter("stall")).get();

    // Ask for the megabyte 300 times and read nothing: four queued replies
    // already exceed the socket buffers, so the reactor's write side jams
    // at once and the stall clock runs uninterrupted.
    let conn = TcpStream::connect(host.addr()).unwrap();
    for seq in 0..300u64 {
        let request = canned_query(&chain, cfg, 7, seq + 1);
        conn.set_write_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        if (&conn).write_all(&request).is_err() {
            break;
        }
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline
        && reg.counter(&names::eviction_counter("stall")).get() == before
    {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        reg.counter(&names::eviction_counter("stall")).get() > before,
        "the reactor must have evicted the stalled connection"
    );
}

/// Idle eviction must survive the move to nonblocking sockets: a silent
/// connection is closed once the idle budget elapses, on the reactor path
/// specifically.
#[test]
fn idle_connection_is_evicted_on_the_reactor_path() {
    let tconfig = TransportConfig {
        idle_timeout: Duration::from_millis(250),
        ..TransportConfig::default()
    };
    let cfg = QuorumConfig::minimal_bsr(1).unwrap();
    let chain = KeyChain::from_master_seed(b"rt-idle");
    let host = KvServerHost::builder(ServerId(0), cfg, KvMode::Replicated, chain)
        .config(tconfig)
        .runtime(ServerRuntime::Reactor)
        .spawn()
        .unwrap();
    let before = safereg_obs::global()
        .counter(&names::eviction_counter("idle"))
        .get();
    let mut conn = TcpStream::connect(host.addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 1];
    assert_eq!(
        conn.read(&mut buf).unwrap(),
        0,
        "server closed the idle link"
    );
    assert!(
        safereg_obs::global()
            .counter(&names::eviction_counter("idle"))
            .get()
            > before
    );
}

/// Under a sustained shed storm the adaptive outbox must grow its
/// capacity (and count doing so): flood a tiny `DropNewest` outbox from a
/// client that never reads.
#[test]
fn adaptive_outbox_grows_under_a_shed_storm() {
    let tconfig = TransportConfig {
        chan_capacity: 2,
        chan_capacity_max: 64,
        shed_policy: ShedPolicy::DropNewest,
        adaptive_outbox: true,
        stall_timeout: Duration::from_secs(30),
        idle_timeout: Duration::from_secs(30),
        ..TransportConfig::default()
    };
    let cfg = QuorumConfig::minimal_bsr(1).unwrap();
    let chain = KeyChain::from_master_seed(b"rt-adaptive");
    let host = KvServerHost::builder(ServerId(0), cfg, KvMode::Replicated, chain.clone())
        .config(tconfig)
        .runtime(ServerRuntime::Reactor)
        .spawn()
        .unwrap();

    let reg = safereg_obs::global();
    let grow_before = reg.counter(names::CHAN_ADAPTIVE_GROW).get();

    let conn = TcpStream::connect(host.addr()).unwrap();
    conn.set_nonblocking(true).unwrap();
    let request = canned_query(&chain, cfg, 8, 1);
    // Keep the shed rate above the growth threshold across at least one
    // full adaptation window; DropNewest keeps the reactor reading (and
    // shedding) even while the reply path is jammed.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut off = 0usize;
    while std::time::Instant::now() < deadline {
        match (&conn).write(&request[off..]) {
            Ok(n) => {
                off += n;
                if off == request.len() {
                    off = 0;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
        if reg.counter(names::CHAN_ADAPTIVE_GROW).get() > grow_before {
            break;
        }
    }
    assert!(
        reg.counter(names::CHAN_ADAPTIVE_GROW).get() > grow_before,
        "a sustained shed storm must have grown the adaptive outbox"
    );
}

/// First-class `m < n` placement: an 8-server fleet serving 4 shards with
/// 5 replicas each (`f = 1`) must roundtrip keys across every shard over
/// the reactor runtime.
#[test]
fn m_of_n_sharded_cluster_roundtrips_on_the_reactor() {
    let fleet: Vec<ServerId> = (0..8).map(ServerId).collect();
    let map = ShardMap::with_replicas(0x5AFE_0008, 4, fleet, 5, 1).unwrap();
    let cluster = TcpKvCluster::builder(KvMode::Replicated, b"rt-mofn")
        .shards(map.clone())
        .runtime(ServerRuntime::Reactor)
        .start()
        .unwrap();
    let mut transport = cluster.transport();
    let mut client = KvClient::sharded(map.clone(), WriterId(5), ReaderId(5));
    for k in 0..16u32 {
        let key = format!("mofn-{k}");
        let value = format!("value-{k}");
        client
            .put(&mut transport, key.as_bytes(), value.clone().into_bytes())
            .unwrap();
        assert_eq!(
            client
                .get(&mut transport, key.as_bytes())
                .unwrap()
                .as_bytes(),
            value.as_bytes()
        );
    }
}

/// The portable `poll(2)` backend must serve identically to epoll.
#[test]
fn poll_backend_serves_roundtrips() {
    let cfg = QuorumConfig::minimal_bsr(1).unwrap();
    let cluster = TcpKvCluster::builder(KvMode::Replicated, b"rt-pollfd")
        .quorum(cfg)
        .poll_backend(PollBackend::Poll)
        .start()
        .unwrap();
    roundtrip(&cluster, 6, b"backend", "portable poll");
}
