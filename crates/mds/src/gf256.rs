//! Arithmetic in GF(2⁸).
//!
//! The field is GF(2)\[x\] / (x⁸ + x⁴ + x³ + x² + 1) (the 0x11D polynomial,
//! the same one used by QR codes and most storage systems), with α = 2 as a
//! primitive element. Exponential and logarithm tables are generated at
//! compile time by `const fn`s, so multiplication and division are two table
//! lookups with no runtime setup.
//!
//! Addition and subtraction are both XOR (characteristic 2).

/// The reduction polynomial x⁸ + x⁴ + x³ + x² + 1 (top bit implicit).
pub const POLY: u16 = 0x11D;

/// `EXP[i] = α^i` for `i ∈ 0..512` (doubled so `mul` needs no modulo).
const EXP: [u8; 512] = build_exp();

/// `LOG[v] = log_α(v)` for `v ∈ 1..=255`; `LOG[0]` is a sentinel (unused).
const LOG: [u16; 256] = build_log();

const fn build_exp() -> [u8; 512] {
    let mut exp = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    // Duplicate the cycle so EXP[a + b] works for a, b < 255.
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    exp
}

const fn build_log() -> [u16; 256] {
    let exp = build_exp();
    let mut log = [0u16; 256];
    let mut i = 0;
    while i < 255 {
        log[exp[i] as usize] = i as u16;
        i += 1;
    }
    log
}

/// Field addition (XOR).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[(LOG[a as usize] + LOG[b as usize]) as usize]
    }
}

/// Field division.
///
/// # Panics
///
/// Panics on division by zero (a decoder bug, never data-dependent).
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "GF(256) division by zero");
    if a == 0 {
        0
    } else {
        EXP[(LOG[a as usize] + 255 - LOG[b as usize]) as usize]
    }
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics on zero.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "GF(256) inverse of zero");
    EXP[(255 - LOG[a as usize]) as usize]
}

/// `α^e` for any exponent (reduced mod 255).
#[inline]
pub fn alpha_pow(e: i64) -> u8 {
    EXP[e.rem_euclid(255) as usize]
}

/// `a^e` by log arithmetic (`0^0 = 1`).
pub fn pow(a: u8, e: u64) -> u8 {
    if e == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let l = (LOG[a as usize] as u64 * e) % 255;
    EXP[l as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_generates_the_whole_group() {
        let mut seen = [false; 256];
        for i in 0..255 {
            let v = alpha_pow(i);
            assert!(!seen[v as usize], "α^{i} repeated");
            seen[v as usize] = true;
        }
        assert!(!seen[0], "zero is not a power of α");
    }

    #[test]
    fn mul_matches_carryless_reference() {
        // Slow reference: schoolbook carry-less multiply + reduction.
        fn slow_mul(mut a: u8, mut b: u8) -> u8 {
            let mut acc: u8 = 0;
            while b != 0 {
                if b & 1 != 0 {
                    acc ^= a;
                }
                let carry = a & 0x80 != 0;
                a <<= 1;
                if carry {
                    a ^= (POLY & 0xFF) as u8;
                }
                b >>= 1;
            }
            acc
        }
        for a in 0..=255u8 {
            for b in [0u8, 1, 2, 3, 5, 29, 76, 128, 200, 255] {
                assert_eq!(mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn field_axioms_hold() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a·a⁻¹ = 1 for a={a}");
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(add(a, a), 0, "characteristic 2");
        }
        // Distributivity spot checks across the table edges.
        for (a, b, c) in [(7u8, 200u8, 255u8), (128, 128, 1), (91, 17, 83)] {
            assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        }
    }

    #[test]
    fn div_is_mul_inverse() {
        for a in 0..=255u8 {
            for b in [1u8, 2, 77, 130, 255] {
                assert_eq!(mul(div(a, b), b), a);
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        div(1, 0);
    }

    #[test]
    fn pow_and_alpha_pow_agree() {
        for e in 0..600i64 {
            assert_eq!(alpha_pow(e), pow(2, e as u64));
        }
        assert_eq!(alpha_pow(-1), inv(2));
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
    }
}
