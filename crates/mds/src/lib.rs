//! `[n, k]` MDS erasure coding for BCSR (§IV-A of the paper).
//!
//! The paper stores one coded element per server and requires a decoder that
//! recovers the value from `n − f` coded elements of which up to `e` are
//! *erroneous* (stale or Byzantine-corrupted), with `k = n − f − 2e`. That is
//! exactly the error-and-erasure capability of a Reed–Solomon code:
//! `2·errors + erasures ≤ n − k`. This crate implements, from scratch:
//!
//! * [`gf256`] — arithmetic in GF(2⁸) with compile-time tables,
//! * [`poly`] — polynomial helpers over the field,
//! * [`rs`] — a systematic Reed–Solomon encoder and a decoder that corrects
//!   both erasures (positions known) and errors (positions unknown) via
//!   Forney syndromes, Berlekamp–Massey, Chien search and Forney's formula,
//! * [`stripe`] — striping of arbitrary-length values into per-server
//!   [`safereg_common::msg::CodedElement`]s and back.
//!
//! # Examples
//!
//! ```
//! use safereg_mds::rs::ReedSolomon;
//!
//! // [6, 1] code as used by BCSR at n = 5f+1 = 6, f = 1 (k = n - 5f = 1).
//! let code = ReedSolomon::new(6, 1)?;
//! let codeword = code.encode(&[42]);
//!
//! // Reader view: one server missing (erasure), two stale (errors).
//! let mut received: Vec<Option<u8>> = codeword.iter().copied().map(Some).collect();
//! received[0] = None;          // crashed / slow server
//! received[1] = Some(7);       // Byzantine garbage
//! received[2] = Some(13);      // stale element
//! let decoded = code.decode(&received)?;
//! assert_eq!(code.message_of(&decoded), &[42]);
//! # Ok::<(), safereg_mds::MdsError>(())
//! ```

pub mod gf256;
pub mod poly;
pub mod rs;
pub mod stripe;

pub use rs::{MdsError, ReedSolomon};
pub use stripe::{decode_elements, encode_value, ElementView};
