//! Polynomials over GF(2⁸).
//!
//! A polynomial is a `Vec<u8>` of coefficients in **ascending** degree order
//! (`p[0]` is the constant term). All helpers keep results trimmed so the
//! degree is `len − 1` (the zero polynomial is the empty vec).

use crate::gf256;

/// Removes trailing zero coefficients in place.
pub fn trim(p: &mut Vec<u8>) {
    while p.last() == Some(&0) {
        p.pop();
    }
}

/// Degree of `p`, or `None` for the zero polynomial.
pub fn degree(p: &[u8]) -> Option<usize> {
    p.iter().rposition(|c| *c != 0)
}

/// `a + b` (coefficient-wise XOR).
pub fn add(a: &[u8], b: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; a.len().max(b.len())];
    for (i, c) in a.iter().enumerate() {
        out[i] ^= c;
    }
    for (i, c) in b.iter().enumerate() {
        out[i] ^= c;
    }
    trim(&mut out);
    out
}

/// `a · b`.
pub fn mul(a: &[u8], b: &[u8]) -> Vec<u8> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u8; a.len() + b.len() - 1];
    for (i, x) in a.iter().enumerate() {
        if *x == 0 {
            continue;
        }
        for (j, y) in b.iter().enumerate() {
            out[i + j] ^= gf256::mul(*x, *y);
        }
    }
    trim(&mut out);
    out
}

/// `a · c` for a scalar `c`.
pub fn scale(a: &[u8], c: u8) -> Vec<u8> {
    let mut out: Vec<u8> = a.iter().map(|x| gf256::mul(*x, c)).collect();
    trim(&mut out);
    out
}

/// `a · x^k` (shift up by `k` degrees).
pub fn shift(a: &[u8], k: usize) -> Vec<u8> {
    if a.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u8; k];
    out.extend_from_slice(a);
    out
}

/// Evaluates `p` at `x` (Horner's rule).
pub fn eval(p: &[u8], x: u8) -> u8 {
    let mut acc = 0u8;
    for c in p.iter().rev() {
        acc = gf256::mul(acc, x) ^ c;
    }
    acc
}

/// Remainder of `a / b`.
///
/// # Panics
///
/// Panics when `b` is the zero polynomial.
pub fn rem(a: &[u8], b: &[u8]) -> Vec<u8> {
    let db = degree(b).expect("polynomial division by zero");
    let lead_inv = gf256::inv(b[db]);
    let mut r = a.to_vec();
    trim(&mut r);
    while let Some(dr) = degree(&r) {
        if dr < db {
            break;
        }
        let coef = gf256::mul(r[dr], lead_inv);
        let offset = dr - db;
        for (i, c) in b.iter().enumerate() {
            r[offset + i] ^= gf256::mul(coef, *c);
        }
        trim(&mut r);
    }
    r
}

/// Truncates `p` modulo `x^k` (keeps the low `k` coefficients).
pub fn mod_xk(p: &[u8], k: usize) -> Vec<u8> {
    let mut out = p[..p.len().min(k)].to_vec();
    trim(&mut out);
    out
}

/// Formal derivative. Over characteristic 2 only odd-degree terms survive:
/// `(Σ cᵢ xⁱ)' = Σ_{i odd} cᵢ x^{i−1}`.
pub fn derivative(p: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(p.len().saturating_sub(1));
    for (i, c) in p.iter().enumerate().skip(1) {
        out.push(if i % 2 == 1 { *c } else { 0 });
    }
    trim(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_and_trim() {
        assert_eq!(degree(&[]), None);
        assert_eq!(degree(&[0, 0]), None);
        assert_eq!(degree(&[5]), Some(0));
        assert_eq!(degree(&[0, 0, 3, 0]), Some(2));
        let mut p = vec![1, 2, 0, 0];
        trim(&mut p);
        assert_eq!(p, vec![1, 2]);
    }

    #[test]
    fn add_is_xor_and_cancels() {
        let a = vec![1, 2, 3];
        assert_eq!(add(&a, &a), Vec::<u8>::new());
        assert_eq!(add(&a, &[]), a);
        assert_eq!(add(&[1], &[0, 1]), vec![1, 1]);
    }

    #[test]
    fn mul_known_product() {
        // (1 + x)(1 + x) = 1 + x² in characteristic 2.
        assert_eq!(mul(&[1, 1], &[1, 1]), vec![1, 0, 1]);
        assert_eq!(mul(&[], &[1, 2, 3]), Vec::<u8>::new());
        // Scalar multiplication agrees with scale.
        assert_eq!(mul(&[7, 9], &[3]), scale(&[7, 9], 3));
    }

    #[test]
    fn eval_horner_matches_naive() {
        let p = vec![3, 0, 7, 1]; // 3 + 7x² + x³
        for x in [0u8, 1, 2, 97, 255] {
            let naive = 3 ^ gf256::mul(7, gf256::pow(x, 2)) ^ gf256::pow(x, 3);
            assert_eq!(eval(&p, x), naive);
        }
    }

    #[test]
    fn rem_is_division_remainder() {
        // a = q·b + r with deg r < deg b, characteristic 2 ⇒ r = a + q·b.
        let a = vec![5, 17, 1, 3, 200, 9];
        let b = vec![7, 1, 1];
        let r = rem(&a, &b);
        assert!(degree(&r).is_none_or(|d| d < 2));
        // Verify by checking a − r is divisible by b at b's roots…
        // easier: brute-force search small quotients is overkill; instead
        // verify rem(a + r, b) == 0.
        let diff = add(&a, &r);
        assert_eq!(rem(&diff, &b), Vec::<u8>::new());
    }

    #[test]
    fn rem_by_larger_divisor_is_identity() {
        let a = vec![1, 2];
        let b = vec![0, 0, 0, 1];
        assert_eq!(rem(&a, &b), vec![1, 2]);
    }

    #[test]
    fn derivative_keeps_odd_terms() {
        // p = c0 + c1 x + c2 x² + c3 x³ → p' = c1 + c3 x² (char 2).
        let p = vec![9, 5, 7, 3];
        assert_eq!(derivative(&p), vec![5, 0, 3]);
        assert_eq!(derivative(&[4]), Vec::<u8>::new());
    }

    #[test]
    fn shift_and_mod_xk() {
        assert_eq!(shift(&[1, 2], 2), vec![0, 0, 1, 2]);
        assert_eq!(shift(&[], 3), Vec::<u8>::new());
        assert_eq!(mod_xk(&[1, 2, 3, 4], 2), vec![1, 2]);
        assert_eq!(mod_xk(&[0, 0, 3], 2), Vec::<u8>::new());
    }
}
