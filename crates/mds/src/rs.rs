//! Systematic Reed–Solomon codes over GF(2⁸) with error-and-erasure
//! decoding.
//!
//! An `[n, k]` code here has `2t = n − k` parity symbols and corrects any
//! pattern of `ρ` erasures (positions known) and `ν` errors (positions
//! unknown) with `2ν + ρ ≤ n − k` — the property §IV-A of the paper relies
//! on with `ρ ≤ f` missing servers and `ν ≤ e = 2f` stale/Byzantine
//! elements when `k = n − 5f`.
//!
//! Decoder pipeline (textbook, e.g. Blahut §7.4): syndromes → erasure
//! locator Γ → Forney syndromes Ξ = S·Γ mod x^{2t} → Berlekamp–Massey on
//! Ξ_ρ.. → error locator σ → Chien search → errata locator Λ = Γ·σ →
//! errata evaluator Ω = S·Λ mod x^{2t} → Forney's formula
//! `e_i = X_i·Ω(X_i⁻¹)/Λ′(X_i⁻¹)` → correction → syndrome re-check.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use crate::gf256;
use crate::poly;

/// Errors from code construction or decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdsError {
    /// Invalid `[n, k]` parameters.
    BadParameters {
        /// Codeword length requested.
        n: usize,
        /// Dimension requested.
        k: usize,
    },
    /// Input had the wrong number of symbols.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// More erasures than parity symbols; information is lost.
    TooManyErasures {
        /// Number of erased positions.
        erasures: usize,
        /// Parity symbol budget `n − k`.
        budget: usize,
    },
    /// The error pattern exceeded the code's correction capability, or the
    /// received word is not within distance of any codeword.
    DecodeFailure,
}

impl fmt::Display for MdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdsError::BadParameters { n, k } => {
                write!(
                    f,
                    "invalid MDS parameters [n={n}, k={k}]: need 1 <= k <= n <= 255"
                )
            }
            MdsError::LengthMismatch { expected, got } => {
                write!(f, "expected {expected} symbols, got {got}")
            }
            MdsError::TooManyErasures { erasures, budget } => {
                write!(
                    f,
                    "{erasures} erasures exceed the parity budget of {budget}"
                )
            }
            MdsError::DecodeFailure => write!(f, "error pattern exceeds correction capability"),
        }
    }
}

impl Error for MdsError {}

/// A systematic `[n, k]` Reed–Solomon code.
///
/// Codeword layout: positions `0..n−k` hold parity, positions `n−k..n` hold
/// the message (so [`ReedSolomon::message_of`] is a slice). Position `i`
/// has locator `αⁱ`.
///
/// # Examples
///
/// ```
/// use safereg_mds::rs::ReedSolomon;
///
/// let code = ReedSolomon::new(10, 4)?;
/// let cw = code.encode(&[1, 2, 3, 4]);
/// let mut rx: Vec<Option<u8>> = cw.iter().copied().map(Some).collect();
/// rx[0] = None;        // erasure
/// rx[5] = Some(99);    // error at unknown position
/// rx[9] = Some(0);     // another error
/// let fixed = code.decode(&rx)?;
/// assert_eq!(code.message_of(&fixed), &[1, 2, 3, 4]);
/// # Ok::<(), safereg_mds::MdsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReedSolomon {
    n: usize,
    k: usize,
    /// Generator polynomial `g(x) = ∏_{j=0}^{n−k−1} (x − αʲ)`, ascending.
    gen: Vec<u8>,
}

impl ReedSolomon {
    /// Builds an `[n, k]` code.
    ///
    /// # Errors
    ///
    /// Returns [`MdsError::BadParameters`] unless `1 ≤ k ≤ n ≤ 255`.
    pub fn new(n: usize, k: usize) -> Result<Self, MdsError> {
        if k == 0 || k > n || n > 255 {
            return Err(MdsError::BadParameters { n, k });
        }
        let mut gen = vec![1u8];
        for j in 0..(n - k) {
            // (x + α^j) ascending: [α^j, 1].
            gen = poly::mul(&gen, &[gf256::alpha_pow(j as i64), 1]);
        }
        Ok(ReedSolomon { n, k, gen })
    }

    /// Codeword length `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Message dimension `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of parity symbols `n − k` (= `2t`).
    pub fn parity(&self) -> usize {
        self.n - self.k
    }

    /// Encodes `k` message symbols into an `n`-symbol codeword.
    ///
    /// # Panics
    ///
    /// Panics if `message.len() != k` — an internal-caller contract; the
    /// striping layer always supplies exactly `k` symbols.
    pub fn encode(&self, message: &[u8]) -> Vec<u8> {
        assert_eq!(message.len(), self.k, "message must have exactly k symbols");
        let two_t = self.parity();
        if two_t == 0 {
            return message.to_vec();
        }
        // C(x) = M(x)·x^{2t} + (M(x)·x^{2t} mod g(x)); parity occupies the
        // low positions so the message stays visible at n−k..n.
        let shifted = poly::shift(message, two_t);
        let parity = poly::rem(&shifted, &self.gen);
        let mut cw = vec![0u8; self.n];
        for (i, c) in parity.iter().enumerate() {
            cw[i] = *c;
        }
        cw[two_t..].copy_from_slice(message);
        cw
    }

    /// The message symbols of a codeword (systematic positions).
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len() != n`.
    pub fn message_of<'a>(&self, codeword: &'a [u8]) -> &'a [u8] {
        assert_eq!(
            codeword.len(),
            self.n,
            "codeword must have exactly n symbols"
        );
        &codeword[self.parity()..]
    }

    /// Returns `true` when `word` is a valid codeword (all syndromes zero).
    pub fn is_codeword(&self, word: &[u8]) -> bool {
        word.len() == self.n && self.syndromes(word).iter().all(|s| *s == 0)
    }

    fn syndromes(&self, word: &[u8]) -> Vec<u8> {
        (0..self.parity())
            .map(|j| poly::eval(word, gf256::alpha_pow(j as i64)))
            .collect()
    }

    /// Decodes a received word with erasures (`None`) and unknown errors,
    /// returning the corrected codeword.
    ///
    /// # Errors
    ///
    /// * [`MdsError::LengthMismatch`] — `received.len() != n`.
    /// * [`MdsError::TooManyErasures`] — `ρ > n − k`.
    /// * [`MdsError::DecodeFailure`] — `2ν + ρ > n − k`, or the word is not
    ///   within the correction radius of any codeword.
    pub fn decode(&self, received: &[Option<u8>]) -> Result<Vec<u8>, MdsError> {
        if received.len() != self.n {
            return Err(MdsError::LengthMismatch {
                expected: self.n,
                got: received.len(),
            });
        }
        let two_t = self.parity();
        let erasures: Vec<usize> = received
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| i)
            .collect();
        if erasures.len() > two_t {
            return Err(MdsError::TooManyErasures {
                erasures: erasures.len(),
                budget: two_t,
            });
        }
        let mut word: Vec<u8> = received.iter().map(|s| s.unwrap_or(0)).collect();

        let synd = self.syndromes(&word);
        if synd.iter().all(|s| *s == 0) {
            // Already a codeword (erasures, if any, happened to be zeros).
            return Ok(word);
        }

        // Erasure locator Γ(x) = ∏ (1 + αⁱ x).
        let mut gamma = vec![1u8];
        for i in &erasures {
            gamma = poly::mul(&gamma, &[1, gf256::alpha_pow(*i as i64)]);
        }

        // Forney syndromes Ξ = S·Γ mod x^{2t}; entries ρ.. follow the
        // error-only LFSR.
        let xi = poly::mod_xk(&poly::mul(&synd, &gamma), two_t);
        let rho = erasures.len();
        let window: Vec<u8> = (rho..two_t)
            .map(|j| xi.get(j).copied().unwrap_or(0))
            .collect();

        let sigma = berlekamp_massey(&window);
        let nu = poly::degree(&sigma).unwrap_or(0);
        if 2 * nu > two_t - rho {
            return Err(MdsError::DecodeFailure);
        }

        // Chien search: error positions are i with σ(α⁻ⁱ) = 0.
        let mut errata: BTreeSet<usize> = erasures.iter().copied().collect();
        let mut error_roots = 0usize;
        for i in 0..self.n {
            if poly::eval(&sigma, gf256::alpha_pow(-(i as i64))) == 0 {
                error_roots += 1;
                if !errata.insert(i) {
                    // An "error" at an erased position signals a bogus σ.
                    return Err(MdsError::DecodeFailure);
                }
            }
        }
        if error_roots != nu {
            // σ does not split over the locator set → miscorrection.
            return Err(MdsError::DecodeFailure);
        }

        // Errata locator over all positions and its evaluator.
        let lambda = poly::mul(&gamma, &sigma);
        let omega = poly::mod_xk(&poly::mul(&synd, &lambda), two_t);
        let lambda_der = poly::derivative(&lambda);

        for i in &errata {
            let x = gf256::alpha_pow(*i as i64);
            let x_inv = gf256::alpha_pow(-(*i as i64));
            let denom = poly::eval(&lambda_der, x_inv);
            if denom == 0 {
                return Err(MdsError::DecodeFailure);
            }
            let magnitude = gf256::mul(x, gf256::div(poly::eval(&omega, x_inv), denom));
            word[*i] ^= magnitude;
        }

        if self.syndromes(&word).iter().any(|s| *s != 0) {
            return Err(MdsError::DecodeFailure);
        }
        Ok(word)
    }
}

/// Berlekamp–Massey over GF(2⁸): shortest LFSR (connection polynomial,
/// ascending, σ(0) = 1) generating `seq`.
fn berlekamp_massey(seq: &[u8]) -> Vec<u8> {
    let mut c = vec![1u8]; // current connection polynomial
    let mut b = vec![1u8]; // copy from before the last length change
    let mut l = 0usize; // current LFSR length
    let mut m = 1usize; // steps since last length change
    let mut bb = 1u8; // discrepancy at last length change
    for i in 0..seq.len() {
        let mut d = seq[i];
        for j in 1..c.len() {
            if j <= i {
                d ^= gf256::mul(c[j], seq[i - j]);
            }
        }
        if d == 0 {
            m += 1;
        } else if 2 * l <= i {
            let prev = c.clone();
            c = poly::add(&c, &poly::scale(&poly::shift(&b, m), gf256::div(d, bb)));
            l = i + 1 - l;
            b = prev;
            bb = d;
            m = 1;
        } else {
            c = poly::add(&c, &poly::scale(&poly::shift(&b, m), gf256::div(d, bb)));
            m += 1;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_message(k: usize, seed: u8) -> Vec<u8> {
        (0..k)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn new_rejects_bad_parameters() {
        assert!(matches!(
            ReedSolomon::new(10, 0),
            Err(MdsError::BadParameters { .. })
        ));
        assert!(matches!(
            ReedSolomon::new(4, 5),
            Err(MdsError::BadParameters { .. })
        ));
        assert!(matches!(
            ReedSolomon::new(256, 10),
            Err(MdsError::BadParameters { .. })
        ));
        assert!(ReedSolomon::new(255, 1).is_ok());
    }

    #[test]
    fn encode_is_systematic_and_valid() {
        let code = ReedSolomon::new(12, 5).unwrap();
        let msg = sample_message(5, 7);
        let cw = code.encode(&msg);
        assert_eq!(cw.len(), 12);
        assert_eq!(code.message_of(&cw), &msg[..]);
        assert!(code.is_codeword(&cw));
    }

    #[test]
    fn clean_word_decodes_unchanged() {
        let code = ReedSolomon::new(9, 3).unwrap();
        let cw = code.encode(&sample_message(3, 1));
        let rx: Vec<Option<u8>> = cw.iter().copied().map(Some).collect();
        assert_eq!(code.decode(&rx).unwrap(), cw);
    }

    #[test]
    fn corrects_max_erasures() {
        let code = ReedSolomon::new(10, 4).unwrap();
        let cw = code.encode(&sample_message(4, 3));
        let mut rx: Vec<Option<u8>> = cw.iter().copied().map(Some).collect();
        for i in [0, 2, 4, 6, 8, 9] {
            rx[i] = None; // exactly n - k = 6 erasures
        }
        assert_eq!(code.decode(&rx).unwrap(), cw);
        rx[1] = None; // one more than the budget
        assert!(matches!(
            code.decode(&rx),
            Err(MdsError::TooManyErasures { .. })
        ));
    }

    #[test]
    fn corrects_max_errors() {
        let code = ReedSolomon::new(10, 4).unwrap();
        let cw = code.encode(&sample_message(4, 9));
        let mut rx: Vec<Option<u8>> = cw.iter().copied().map(Some).collect();
        for i in [1, 4, 7] {
            // t = 3 errors
            rx[i] = Some(cw[i] ^ 0x5A);
        }
        assert_eq!(code.decode(&rx).unwrap(), cw);
    }

    #[test]
    fn corrects_mixed_errors_and_erasures_at_the_boundary() {
        // 2ν + ρ = n − k exactly: ν = 2, ρ = 2 with n − k = 6.
        let code = ReedSolomon::new(10, 4).unwrap();
        let cw = code.encode(&sample_message(4, 17));
        let mut rx: Vec<Option<u8>> = cw.iter().copied().map(Some).collect();
        rx[0] = None;
        rx[9] = None;
        rx[3] = Some(cw[3] ^ 1);
        rx[6] = Some(cw[6] ^ 0xFF);
        assert_eq!(code.decode(&rx).unwrap(), cw);
    }

    #[test]
    fn bcsr_worst_case_pattern() {
        // The paper's worst case at n = 5f+1, f = 1: k = 1, one missing
        // server (erasure) and up to 2f = 2 erroneous elements.
        let code = ReedSolomon::new(6, 1).unwrap();
        let cw = code.encode(&[0xAB]);
        let stale = code.encode(&[0x11]);
        let mut rx: Vec<Option<u8>> = cw.iter().copied().map(Some).collect();
        rx[5] = None; // f = 1 slow server
        rx[0] = Some(stale[0]); // stale element
        rx[1] = Some(stale[1]); // stale element (e = 2f = 2)
        let fixed = code.decode(&rx).unwrap();
        assert_eq!(code.message_of(&fixed), &[0xAB]);
    }

    #[test]
    fn overload_is_detected_not_miscorrected() {
        let code = ReedSolomon::new(8, 4).unwrap(); // corrects up to 2 errors
        let cw = code.encode(&sample_message(4, 23));
        let other = code.encode(&sample_message(4, 99));
        // Replace 3 symbols with another codeword's — beyond capability.
        let mut rx: Vec<Option<u8>> = cw.iter().copied().map(Some).collect();
        for i in 0..3 {
            rx[i] = Some(other[i]);
        }
        match code.decode(&rx) {
            Err(MdsError::DecodeFailure) => {}
            Ok(out) => {
                // Decoding to *some* codeword is permitted only if it is a
                // real codeword (bounded-distance decoders may land on a
                // neighbour when overloaded) — never garbage.
                assert!(code.is_codeword(&out));
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn degenerate_k_equals_n() {
        let code = ReedSolomon::new(4, 4).unwrap();
        let msg = sample_message(4, 2);
        let cw = code.encode(&msg);
        assert_eq!(cw, msg);
        let rx: Vec<Option<u8>> = cw.iter().copied().map(Some).collect();
        assert_eq!(code.decode(&rx).unwrap(), msg);
    }

    #[test]
    fn wrong_length_is_rejected() {
        let code = ReedSolomon::new(6, 2).unwrap();
        assert!(matches!(
            code.decode(&[Some(1); 5]),
            Err(MdsError::LengthMismatch {
                expected: 6,
                got: 5
            })
        ));
    }

    #[test]
    fn any_k_subset_reconstructs_mds_property() {
        // MDS: any k surviving symbols determine the codeword when the other
        // n − k are erased.
        let code = ReedSolomon::new(7, 3).unwrap();
        let msg = sample_message(3, 5);
        let cw = code.encode(&msg);
        // All (7 choose 3) = 35 survivor subsets.
        for a in 0..7 {
            for b in (a + 1)..7 {
                for c in (b + 1)..7 {
                    let mut rx: Vec<Option<u8>> = vec![None; 7];
                    for i in [a, b, c] {
                        rx[i] = Some(cw[i]);
                    }
                    let fixed = code.decode(&rx).unwrap();
                    assert_eq!(code.message_of(&fixed), &msg[..], "subset {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn berlekamp_massey_finds_short_lfsr() {
        // Sequence generated by s_{i+1} = 3·s_i → connection 1 + 3x.
        let mut seq = vec![5u8];
        for _ in 0..7 {
            let last = *seq.last().unwrap();
            seq.push(gf256::mul(3, last));
        }
        let c = berlekamp_massey(&seq);
        assert_eq!(c, vec![1, 3]);
    }
}
