//! Striping values into per-server coded elements.
//!
//! §IV-A: "v is divided into k elements … the encoder takes the k elements
//! as input and produces n coded elements as output … we store one coded
//! element per server." A value of `B` bytes is processed as `⌈B/k⌉`
//! columns of `k` data bytes (zero-padded); each column is RS-encoded into
//! `n` symbols and server `i` receives symbol `i` of every column, so a
//! coded element is `⌈B/k⌉` bytes — the paper's `1/k` size factor.
//! The original length travels in [`CodedElement::value_len`] so decoding
//! can strip the padding.

use safereg_common::buf::Bytes;
use safereg_common::msg::CodedElement;
use safereg_common::value::Value;

use crate::rs::{MdsError, ReedSolomon};

/// A received coded element: which codeword position it claims plus its
/// bytes. Borrowed so the BCSR reader can stage responses without copying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElementView<'a> {
    /// Codeword position (the server index that stored the element).
    pub index: usize,
    /// The element's bytes (one symbol per column).
    pub data: &'a [u8],
}

impl<'a> ElementView<'a> {
    /// Views a [`CodedElement`] received from a server.
    pub fn of(elem: &'a CodedElement) -> Self {
        ElementView {
            index: elem.index as usize,
            data: &elem.data,
        }
    }
}

/// Number of columns a value of `value_len` bytes occupies under dimension
/// `k`.
pub fn column_count(value_len: usize, k: usize) -> usize {
    value_len.div_ceil(k)
}

/// Encodes a value into `n` coded elements, one per server.
///
/// The element at position `i` is what the BCSR writer sends to server `i`
/// (Fig. 4 line 7: `c_i = Φ_i(v)`).
///
/// # Examples
///
/// ```
/// use safereg_mds::{rs::ReedSolomon, stripe::encode_value};
/// use safereg_common::value::Value;
///
/// let code = ReedSolomon::new(6, 1)?;
/// let elements = encode_value(&code, &Value::from("hi"));
/// assert_eq!(elements.len(), 6);
/// assert_eq!(elements[0].data.len(), 2); // ⌈2 / k⌉ with k = 1
/// # Ok::<(), safereg_mds::MdsError>(())
/// ```
/// All `n` elements are written into a single arena buffer (element `i`
/// occupying `arena[i·cols .. (i+1)·cols]`) that is converted to [`Bytes`]
/// once; each element's `data` is then an O(1) slice of that arena. The
/// BCSR writer turns these directly into per-server `PutData` envelopes,
/// so one allocation backs every fragment the write fans out.
pub fn encode_value(code: &ReedSolomon, value: &Value) -> Vec<CodedElement> {
    let n = code.n();
    let k = code.k();
    let bytes = value.as_bytes();
    let cols = column_count(bytes.len(), k);
    let mut arena = vec![0u8; n * cols];
    let mut column = vec![0u8; k];
    for c in 0..cols {
        column.fill(0);
        let start = c * k;
        let end = (start + k).min(bytes.len());
        column[..end - start].copy_from_slice(&bytes[start..end]);
        let cw = code.encode(&column);
        for (i, symbol) in cw.iter().enumerate() {
            arena[i * cols + c] = *symbol;
        }
    }
    let arena = Bytes::from(arena);
    (0..n)
        .map(|i| CodedElement {
            index: i as u16,
            value_len: bytes.len() as u32,
            data: arena
                .try_slice(i * cols..(i + 1) * cols)
                .expect("arena sized as n*cols"),
        })
        .collect()
}

/// Reconstructs a value from received coded elements.
///
/// `elements` may omit positions (erasures) and may contain corrupted or
/// stale elements (errors); decoding succeeds whenever every column's
/// pattern satisfies `2·errors + erasures ≤ n − k`. Elements whose length
/// does not match `⌈value_len/k⌉` are treated as erasures (a Byzantine
/// server cannot crash the decoder with a short buffer), as are duplicate
/// claims for the same position.
///
/// # Errors
///
/// Propagates [`MdsError`] when any column fails to decode; the BCSR reader
/// maps that to "return `v_0`" per Fig. 5 line 4.
pub fn decode_elements(
    code: &ReedSolomon,
    value_len: usize,
    elements: &[ElementView<'_>],
) -> Result<Value, MdsError> {
    let n = code.n();
    let k = code.k();
    let cols = column_count(value_len, k);
    if value_len == 0 {
        return Ok(Value::initial());
    }

    // Stage per-position element bytes; malformed or duplicate claims
    // degrade to erasures rather than failures.
    let mut slots: Vec<Option<&[u8]>> = vec![None; n];
    for e in elements {
        if e.index < n && e.data.len() == cols && slots[e.index].is_none() {
            slots[e.index] = Some(e.data);
        }
    }

    let mut out = Vec::with_capacity(cols * k);
    let mut received: Vec<Option<u8>> = vec![None; n];
    for c in 0..cols {
        for (i, slot) in slots.iter().enumerate() {
            received[i] = slot.map(|d| d[c]);
        }
        let cw = code.decode(&received)?;
        out.extend_from_slice(code.message_of(&cw));
    }
    out.truncate(value_len);
    Ok(Value::from(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(elements: &[CodedElement]) -> Vec<ElementView<'_>> {
        elements.iter().map(ElementView::of).collect()
    }

    #[test]
    fn roundtrip_all_elements() {
        let code = ReedSolomon::new(8, 3).unwrap();
        let v = Value::from("the quick brown fox");
        let elements = encode_value(&code, &v);
        assert_eq!(elements.len(), 8);
        let back = decode_elements(&code, v.len(), &views(&elements)).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn elements_share_one_arena_allocation() {
        let code = ReedSolomon::new(11, 1).unwrap();
        let v = Value::from(vec![3u8; 64]);
        let elements = encode_value(&code, &v);
        let cols = column_count(v.len(), 1);
        let base = elements[0].data.as_ref().as_ptr() as usize;
        for (i, e) in elements.iter().enumerate() {
            // Element i sits exactly i*cols bytes into the shared arena:
            // adjacent slices of one allocation, not n separate buffers.
            assert_eq!(e.data.as_ref().as_ptr() as usize, base + i * cols);
        }
    }

    #[test]
    fn element_size_is_value_over_k() {
        let code = ReedSolomon::new(10, 5).unwrap();
        let v = Value::from(vec![7u8; 100]);
        let elements = encode_value(&code, &v);
        for e in &elements {
            assert_eq!(e.data.len(), 20); // 100 / k = 20
            assert_eq!(e.value_len, 100);
        }
        // Non-multiple length pads up.
        let v2 = Value::from(vec![7u8; 101]);
        assert_eq!(encode_value(&code, &v2)[0].data.len(), 21);
    }

    #[test]
    fn any_k_elements_suffice() {
        let code = ReedSolomon::new(7, 3).unwrap();
        let v = Value::from("mds property");
        let elements = encode_value(&code, &v);
        let subset = [&elements[1], &elements[4], &elements[6]];
        let subset_views: Vec<ElementView<'_>> =
            subset.iter().map(|e| ElementView::of(e)).collect();
        assert_eq!(decode_elements(&code, v.len(), &subset_views).unwrap(), v);
    }

    #[test]
    fn corrects_stale_and_byzantine_elements() {
        // BCSR shape: n = 11, f = 2 → k = 1, tolerate 2 missing + up to 4 bad.
        let code = ReedSolomon::new(11, 1).unwrap();
        let fresh = Value::from("fresh value");
        let stale = Value::from("stale value");
        let fresh_elems = encode_value(&code, &fresh);
        let stale_elems = encode_value(&code, &stale);

        let mut rx: Vec<CodedElement> = Vec::new();
        for i in 0..11 {
            if i < 2 {
                continue; // 2 slow servers: erasures
            }
            if i < 6 {
                rx.push(stale_elems[i].clone()); // 4 stale elements (e = 2f)
            } else {
                rx.push(fresh_elems[i].clone());
            }
        }
        let got = decode_elements(&code, fresh.len(), &views(&rx)).unwrap();
        assert_eq!(got, fresh);
    }

    #[test]
    fn malformed_elements_degrade_to_erasures() {
        let code = ReedSolomon::new(6, 2).unwrap();
        let v = Value::from("abcdef");
        let mut elements = encode_value(&code, &v);
        // Byzantine server truncates its element and another claims an
        // out-of-range index.
        elements[0].data = Bytes::from_static(b"x");
        elements[1].index = 99;
        let got = decode_elements(&code, v.len(), &views(&elements)).unwrap();
        assert_eq!(got, v);
    }

    #[test]
    fn duplicate_positions_keep_first_claim() {
        let code = ReedSolomon::new(6, 2).unwrap();
        let v = Value::from("abcdef");
        let mut elements = encode_value(&code, &v);
        // A Byzantine server impersonates position 2 with garbage, appended
        // after the honest element — the honest one wins.
        let mut fake = elements[2].clone();
        fake.data = Bytes::from(vec![0xFF; fake.data.len()]);
        elements.push(fake);
        let got = decode_elements(&code, v.len(), &views(&elements)).unwrap();
        assert_eq!(got, v);
    }

    #[test]
    fn empty_value_roundtrips() {
        let code = ReedSolomon::new(6, 1).unwrap();
        let v = Value::initial();
        let elements = encode_value(&code, &v);
        assert!(elements.iter().all(|e| e.data.is_empty()));
        let got = decode_elements(&code, 0, &views(&elements)).unwrap();
        assert!(got.is_initial());
    }

    #[test]
    fn unrecoverable_pattern_errors_out() {
        let code = ReedSolomon::new(6, 2).unwrap();
        let v = Value::from("abcdef");
        let elements = encode_value(&code, &v);
        // Only one element survives; k = 2 are needed.
        let one = [ElementView::of(&elements[0])];
        assert!(decode_elements(&code, v.len(), &one).is_err());
    }
}
