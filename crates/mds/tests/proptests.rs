//! Property-based tests for the MDS substrate.
//!
//! These check the algebraic laws of GF(2⁸), the MDS guarantees of the
//! Reed–Solomon code under randomized error/erasure patterns, and the
//! striping layer's roundtrip over arbitrary byte strings.
//!
//! The always-on suite is driven by the deterministic [`DetRng`]
//! (reproducible, shrinking-free); the GF(2⁸) laws are checked
//! exhaustively where the domain is small enough. The original proptest
//! suite sits behind the off-by-default `proptests` feature.

use safereg_common::rng::DetRng;
use safereg_common::value::Value;
use safereg_mds::gf256;
use safereg_mds::rs::ReedSolomon;
use safereg_mds::stripe::{decode_elements, encode_value, ElementView};

#[test]
fn gf256_mul_is_commutative_and_inverse_law_holds_exhaustively() {
    for a in 0u8..=255 {
        for b in 0u8..=255 {
            assert_eq!(gf256::mul(a, b), gf256::mul(b, a));
        }
        if a != 0 {
            assert_eq!(gf256::mul(a, gf256::inv(a)), 1);
            assert_eq!(gf256::div(gf256::mul(a, 77), a), 77);
        }
    }
}

#[test]
fn gf256_associates_and_distributes() {
    // The full triple product space is 2²⁴ points; a deterministic sample
    // of 200k triples is plenty to catch a broken table.
    let mut rng = DetRng::seed_from(0x6F25_6A55);
    for _ in 0..200_000 {
        let (a, b, c) = (
            rng.next_u64() as u8,
            rng.next_u64() as u8,
            rng.next_u64() as u8,
        );
        assert_eq!(
            gf256::mul(a, gf256::mul(b, c)),
            gf256::mul(gf256::mul(a, b), c)
        );
        assert_eq!(
            gf256::mul(a, gf256::add(b, c)),
            gf256::add(gf256::mul(a, b), gf256::mul(a, c))
        );
    }
}

#[test]
fn rs_roundtrip_within_capability() {
    let mut rng = DetRng::seed_from(0x25_C0DE);
    for _ in 0..512 {
        let k = 1 + rng.index(7);
        let parity = rng.index(10);
        let n = k + parity;
        let code = ReedSolomon::new(n, k).unwrap();
        let msg_byte = rng.next_u64() as u8;
        let msg: Vec<u8> = (0..k).map(|i| msg_byte.wrapping_add(i as u8)).collect();
        let cw = code.encode(&msg);

        // Derive a random error/erasure pattern within 2ν + ρ ≤ parity.
        let rho = rng.index(parity + 1);
        let max_errors = (parity - rho) / 2;
        let nu = if max_errors == 0 {
            0
        } else {
            rng.index(max_errors + 1)
        };

        let mut rx: Vec<Option<u8>> = cw.iter().copied().map(Some).collect();
        let mut positions: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut positions);
        for (count, &p) in positions.iter().enumerate() {
            if count < rho {
                rx[p] = None;
            } else if count < rho + nu {
                rx[p] = Some(cw[p] ^ (1 + rng.index(255) as u8));
            }
        }

        let fixed = code.decode(&rx).unwrap();
        assert_eq!(code.message_of(&fixed), &msg[..]);
    }
}

#[test]
fn rs_never_accepts_non_codeword() {
    let mut rng = DetRng::seed_from(0xBAD_C0DE);
    for _ in 0..512 {
        // Whatever the decoder returns, it is a valid codeword — a reader
        // can always detect garbage by re-encoding.
        let k = 1 + rng.index(5);
        let parity = 1 + rng.index(7);
        let n = k + parity;
        let code = ReedSolomon::new(n, k).unwrap();
        let corrupt_len = 1 + rng.index(19);
        let mut corrupt = vec![0u8; corrupt_len];
        rng.fill_bytes(&mut corrupt);
        let rx: Vec<Option<u8>> = (0..n).map(|i| Some(corrupt[i % corrupt.len()])).collect();
        if let Ok(word) = code.decode(&rx) {
            assert!(code.is_codeword(&word));
        }
    }
}

#[test]
fn stripe_roundtrip_any_length() {
    let mut rng = DetRng::seed_from(0x571_219E);
    for case in 0..512 {
        // BCSR-shaped code: n = 5f + 1 + extra, k = n − 5f. Sweep lengths
        // 0..200 deterministically so the empty and one-column edges are
        // always covered.
        let f = 1 + rng.index(2);
        let n = 5 * f + 3;
        let k = n - 5 * f;
        let code = ReedSolomon::new(n, k).unwrap();
        let len = case % 200;
        let mut data = vec![0u8; len];
        rng.fill_bytes(&mut data);
        let v = Value::from(data);
        let elements = encode_value(&code, &v);
        let views: Vec<ElementView<'_>> = elements.iter().map(ElementView::of).collect();
        let back = decode_elements(&code, v.len(), &views).unwrap();
        assert_eq!(back, v);
    }
}

#[test]
fn stripe_survives_f_erasures_and_2f_errors() {
    let mut rng = DetRng::seed_from(0x0571_2BAD);
    for _ in 0..512 {
        let f = 1usize;
        let n = 5 * f + 1;
        let code = ReedSolomon::new(n, n - 5 * f).unwrap();
        let len = 1 + rng.index(99);
        let mut data = vec![0u8; len];
        rng.fill_bytes(&mut data);
        let fresh = Value::from(data.clone());
        let mut stale_bytes = data;
        stale_bytes[0] ^= 0xA5; // a genuinely different older value
        let stale = Value::from(stale_bytes);

        let fresh_elems = encode_value(&code, &fresh);
        let stale_elems = encode_value(&code, &stale);

        let drop = rng.index(n);
        let mut rx: Vec<ElementView<'_>> = Vec::new();
        let mut corrupted = 0;
        for i in 0..n {
            if i == drop {
                continue; // f erasures
            }
            if corrupted < 2 * f {
                rx.push(ElementView::of(&stale_elems[i]));
                corrupted += 1;
            } else {
                rx.push(ElementView::of(&fresh_elems[i]));
            }
        }
        let got = decode_elements(&code, fresh.len(), &rx).unwrap();
        assert_eq!(got, fresh);
    }
}

/// Original proptest suite; requires re-adding `proptest` as a
/// dev-dependency (see the `proptests` feature note in Cargo.toml).
#[cfg(feature = "proptests")]
mod proptest_suite {
    use proptest::collection::vec;
    use proptest::prelude::*;

    use safereg_common::value::Value;
    use safereg_mds::gf256;
    use safereg_mds::rs::ReedSolomon;
    use safereg_mds::stripe::{decode_elements, encode_value, ElementView};

    proptest! {
        #[test]
        fn gf256_mul_is_commutative_and_associative(a: u8, b: u8, c: u8) {
            prop_assert_eq!(gf256::mul(a, b), gf256::mul(b, a));
            prop_assert_eq!(
                gf256::mul(a, gf256::mul(b, c)),
                gf256::mul(gf256::mul(a, b), c)
            );
        }

        #[test]
        fn gf256_distributes(a: u8, b: u8, c: u8) {
            prop_assert_eq!(
                gf256::mul(a, gf256::add(b, c)),
                gf256::add(gf256::mul(a, b), gf256::mul(a, c))
            );
        }

        #[test]
        fn stripe_roundtrip_any_length(data in vec(any::<u8>(), 0..200), f in 1usize..3) {
            let n = 5 * f + 3;
            let k = n - 5 * f;
            let code = ReedSolomon::new(n, k).unwrap();
            let v = Value::from(data.clone());
            let elements = encode_value(&code, &v);
            let views: Vec<ElementView<'_>> = elements.iter().map(ElementView::of).collect();
            let back = decode_elements(&code, v.len(), &views).unwrap();
            prop_assert_eq!(back, v);
        }
    }
}
