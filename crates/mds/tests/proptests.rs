//! Property-based tests for the MDS substrate.
//!
//! These check the algebraic laws of GF(2⁸), the MDS guarantees of the
//! Reed–Solomon code under randomized error/erasure patterns, and the
//! striping layer's roundtrip over arbitrary byte strings.

use proptest::collection::vec;
use proptest::prelude::*;

use safereg_common::value::Value;
use safereg_mds::gf256;
use safereg_mds::rs::ReedSolomon;
use safereg_mds::stripe::{decode_elements, encode_value, ElementView};

proptest! {
    #[test]
    fn gf256_mul_is_commutative_and_associative(a: u8, b: u8, c: u8) {
        prop_assert_eq!(gf256::mul(a, b), gf256::mul(b, a));
        prop_assert_eq!(
            gf256::mul(a, gf256::mul(b, c)),
            gf256::mul(gf256::mul(a, b), c)
        );
    }

    #[test]
    fn gf256_distributes(a: u8, b: u8, c: u8) {
        prop_assert_eq!(
            gf256::mul(a, gf256::add(b, c)),
            gf256::add(gf256::mul(a, b), gf256::mul(a, c))
        );
    }

    #[test]
    fn gf256_inverse_law(a in 1u8..=255) {
        prop_assert_eq!(gf256::mul(a, gf256::inv(a)), 1);
        prop_assert_eq!(gf256::div(gf256::mul(a, 77), a), 77);
    }

    #[test]
    fn rs_roundtrip_within_capability(
        seed in any::<u64>(),
        k in 1usize..8,
        parity in 0usize..10,
        msg_byte in any::<u8>(),
    ) {
        let n = k + parity;
        let code = ReedSolomon::new(n, k).unwrap();
        let msg: Vec<u8> = (0..k).map(|i| msg_byte.wrapping_add(i as u8)).collect();
        let cw = code.encode(&msg);

        // Derive a random error/erasure pattern within 2ν + ρ ≤ parity.
        let mut rng = seed;
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng >> 33) as usize
        };
        let rho = next() % (parity + 1);
        let max_errors = (parity - rho) / 2;
        let nu = if max_errors == 0 { 0 } else { next() % (max_errors + 1) };

        let mut rx: Vec<Option<u8>> = cw.iter().copied().map(Some).collect();
        let mut positions: Vec<usize> = (0..n).collect();
        // Deterministic shuffle from the seed.
        for i in (1..positions.len()).rev() {
            positions.swap(i, next() % (i + 1));
        }
        for (count, &p) in positions.iter().enumerate() {
            if count < rho {
                rx[p] = None;
            } else if count < rho + nu {
                rx[p] = Some(cw[p] ^ (1 + (next() % 255) as u8));
            }
        }

        let fixed = code.decode(&rx).unwrap();
        prop_assert_eq!(code.message_of(&fixed), &msg[..]);
    }

    #[test]
    fn rs_never_accepts_non_codeword(
        k in 1usize..6,
        parity in 1usize..8,
        corrupt in vec(any::<u8>(), 1..20),
    ) {
        // Whatever the decoder returns, it is a valid codeword — a reader
        // can always detect garbage by re-encoding.
        let n = k + parity;
        let code = ReedSolomon::new(n, k).unwrap();
        let rx: Vec<Option<u8>> = (0..n)
            .map(|i| Some(*corrupt.get(i % corrupt.len()).unwrap()))
            .collect();
        if let Ok(word) = code.decode(&rx) {
            prop_assert!(code.is_codeword(&word));
        }
    }

    #[test]
    fn stripe_roundtrip_any_length(data in vec(any::<u8>(), 0..200), f in 1usize..3) {
        // BCSR-shaped code: n = 5f + 1 + extra, k = n − 5f.
        let n = 5 * f + 3;
        let k = n - 5 * f;
        let code = ReedSolomon::new(n, k).unwrap();
        let v = Value::from(data.clone());
        let elements = encode_value(&code, &v);
        let views: Vec<ElementView<'_>> = elements.iter().map(ElementView::of).collect();
        let back = decode_elements(&code, v.len(), &views).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn stripe_survives_f_erasures_and_2f_errors(
        data in vec(any::<u8>(), 1..100),
        seed in any::<u64>(),
    ) {
        let f = 1usize;
        let n = 5 * f + 1;
        let code = ReedSolomon::new(n, n - 5 * f).unwrap();
        let fresh = Value::from(data.clone());
        let mut stale_bytes = data.clone();
        stale_bytes[0] ^= 0xA5; // a genuinely different older value
        let stale = Value::from(stale_bytes);

        let fresh_elems = encode_value(&code, &fresh);
        let stale_elems = encode_value(&code, &stale);

        let drop = (seed % n as u64) as usize;
        let mut rx: Vec<ElementView<'_>> = Vec::new();
        let mut corrupted = 0;
        for i in 0..n {
            if i == drop {
                continue; // f erasures
            }
            if corrupted < 2 * f {
                rx.push(ElementView::of(&stale_elems[i]));
                corrupted += 1;
            } else {
                rx.push(ElementView::of(&fresh_elems[i]));
            }
        }
        let got = decode_elements(&code, fresh.len(), &rx).unwrap();
        prop_assert_eq!(got, fresh);
    }
}
