//! Snapshot exporters: a human-readable table and line-oriented JSON.
//!
//! Both renderers are pure functions of a [`Snapshot`], which is itself
//! name-ordered with integer fields — so equal snapshots render to
//! byte-identical strings, the property the determinism tests rely on.
//! The JSON is hand-rolled (no dependencies): one object per line, fixed
//! key order, floats printed with three decimals.

use std::fmt::Write as _;

use crate::metrics::{MetricValue, Snapshot};

/// Escapes a string for a JSON string literal (quotes not included).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one JSON object per metric, names ascending.
///
/// Counters and gauges carry `value`; histograms carry their exact moments
/// and summary percentiles (or only `count: 0` when empty). Ends with a
/// trailing newline when the snapshot is non-empty.
pub fn render_jsonl(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.entries {
        let name = json_escape(name);
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, r#"{{"metric":"{name}","type":"counter","value":{v}}}"#);
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, r#"{{"metric":"{name}","type":"gauge","value":{v}}}"#);
            }
            MetricValue::Histogram(h) => match h.summary() {
                Some(s) => {
                    let _ = writeln!(
                        out,
                        concat!(
                            r#"{{"metric":"{}","type":"histogram","count":{},"#,
                            r#""min":{},"max":{},"mean":{:.3},"#,
                            r#""p50":{},"p90":{},"p99":{},"p999":{}}}"#
                        ),
                        name, s.count, s.min, s.max, s.mean, s.p50, s.p90, s.p99, s.p999
                    );
                }
                None => {
                    let _ = writeln!(out, r#"{{"metric":"{name}","type":"histogram","count":0}}"#);
                }
            },
        }
    }
    out
}

/// Renders an aligned human-readable table, names ascending.
pub fn render_table(snapshot: &Snapshot) -> String {
    let width = snapshot
        .entries
        .keys()
        .map(String::len)
        .max()
        .unwrap_or(0)
        .max("metric".len());
    let mut out = String::new();
    let _ = writeln!(out, "{:width$}  {:9}  value", "metric", "type");
    for (name, value) in &snapshot.entries {
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{name:width$}  {:9}  {v}", "counter");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{name:width$}  {:9}  {v}", "gauge");
            }
            MetricValue::Histogram(h) => match h.summary() {
                Some(s) => {
                    let _ = writeln!(
                        out,
                        "{name:width$}  {:9}  count={} min={} p50={} p90={} p99={} p999={} max={} mean={:.1}",
                        "histogram", s.count, s.min, s.p50, s.p90, s.p99, s.p999, s.max, s.mean
                    );
                }
                None => {
                    let _ = writeln!(out, "{name:width$}  {:9}  count=0", "histogram");
                }
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter("sim.reads.fast").add(3);
        r.gauge("sim.read.fast_ratio_permille").set(750);
        let h = r.histogram("sim.read.latency.fast");
        for v in [2u64, 4, 4, 9] {
            h.record(v);
        }
        r.histogram("sim.read.latency.slow");
        r.snapshot()
    }

    #[test]
    fn jsonl_has_one_sorted_line_per_metric() {
        let out = render_jsonl(&sample());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0],
            r#"{"metric":"sim.read.fast_ratio_permille","type":"gauge","value":750}"#
        );
        assert!(lines[1].starts_with(r#"{"metric":"sim.read.latency.fast","type":"histogram","count":4,"min":2,"max":9,"mean":4.750,"#));
        assert_eq!(
            lines[2],
            r#"{"metric":"sim.read.latency.slow","type":"histogram","count":0}"#
        );
        assert_eq!(
            lines[3],
            r#"{"metric":"sim.reads.fast","type":"counter","value":3}"#
        );
    }

    #[test]
    fn equal_snapshots_render_identically() {
        assert_eq!(render_jsonl(&sample()), render_jsonl(&sample()));
        assert_eq!(render_table(&sample()), render_table(&sample()));
    }

    #[test]
    fn table_mentions_every_metric() {
        let out = render_table(&sample());
        for name in [
            "sim.reads.fast",
            "sim.read.fast_ratio_permille",
            "sim.read.latency.fast",
            "sim.read.latency.slow",
        ] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
        assert!(out.contains("p999="));
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny"), r"x\ny");
        assert_eq!(json_escape("\u{1}"), r"\u0001");
    }
}
