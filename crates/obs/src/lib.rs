//! Zero-dependency observability for the `safereg` workspace.
//!
//! Everything a run wants to know about itself — how many reads took the
//! paper's *fast* path versus the *slow* fallback, how long quorum waits
//! took, what went over the wire — flows through this crate:
//!
//! * [`metrics`] — a named [`Registry`](metrics::Registry) of lock-sharded
//!   [`Counter`](metrics::Counter)s, [`Gauge`](metrics::Gauge)s and
//!   log-linear [`Histogram`](metrics::Histogram)s, frozen into
//!   deterministic [`Snapshot`](metrics::Snapshot)s.
//! * [`trace`] — typed protocol [`Event`](trace::Event)s with
//!   caller-supplied timestamps feeding a pluggable
//!   [`Recorder`](trace::Recorder) (ring buffer, null, or custom), plus
//!   wall-clock [`Span`](trace::Span) scopes via the [`span!`] macro.
//! * [`export`] — a human table and line-oriented JSON, both pure
//!   functions of a snapshot so equal runs dump identical bytes.
//! * [`names`] — pinned metric names for the self-healing network path
//!   (reconnects, breaker transitions, backoff waits, chaos injections),
//!   shared by the transport, kv and chaos layers.
//!
//! Two ownership styles coexist deliberately. The deterministic simulator
//! creates one `Registry` per run and stamps events with **virtual time**,
//! so a seed reproduces its metric dump bit-for-bit. The TCP transport and
//! kv server share the process-wide [`global`] registry and stamp events
//! with wall-clock microseconds.
//!
//! # Examples
//!
//! ```
//! use safereg_obs::metrics::Registry;
//!
//! let reg = Registry::new();
//! reg.counter("reads.fast").inc();
//! reg.histogram("read.latency").record(12);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("reads.fast"), Some(1));
//! println!("{}", safereg_obs::export::render_table(&snap));
//! ```

pub mod export;
pub mod metrics;
pub mod names;
pub mod span;
pub mod trace;

pub use export::{render_jsonl, render_table};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, Registry, Snapshot};
pub use span::{
    attribute_slow_read, dump_flight, flight, violation_trees, FlightRecorder, SlowCause,
    SlowEvidence, SpanKind, SpanLog, SpanRecord, SpanSink,
};
pub use trace::{Event, EventKind, MsgClass, NullRecorder, Recorder, RingRecorder, Span};

/// The process-wide registry used by the TCP transport and kv server.
///
/// The simulator deliberately does **not** use this — it owns a registry
/// per run so that concurrent simulations (and determinism tests) never
/// share state.
pub fn global() -> &'static Registry {
    static GLOBAL: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    #[test]
    fn global_registry_is_shared() {
        super::global().counter("test.global").add(2);
        assert!(super::global().snapshot().counter("test.global").unwrap() >= 2);
    }
}
