//! Metric primitives and the registry.
//!
//! Three instrument kinds, all std-only and lock-free on the hot path:
//!
//! * [`Counter`] — a monotonically increasing sum, sharded across
//!   cache-line-padded atomics so concurrent connection threads do not
//!   serialize on one cell.
//! * [`Gauge`] — a last-write-wins value (e.g. the fast-read ratio of a
//!   finished run, in permille).
//! * [`Histogram`] — a 256-bucket log-linear latency distribution with
//!   exact count/sum/min/max and ≤ ~12% relative bucket error, summarized
//!   through [`LatencyStats`] so simulator reports and live dumps quote
//!   the same percentile math.
//!
//! A [`Registry`] maps names to instruments with get-or-create semantics
//! and produces a deterministic [`Snapshot`] (names are `BTreeMap`-ordered;
//! every field is an integer), which is what the exporters render and what
//! the determinism tests compare byte-for-byte.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use safereg_checker::stats::LatencyStats;
use safereg_common::sync::RwLock;

/// Shards per counter. Small enough to sum cheaply, large enough that a
/// handful of connection threads rarely collide on a line.
const SHARDS: usize = 16;

/// One atomic on its own cache line, so shards don't false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// Stable per-thread shard index: threads are assigned round-robin on
/// first use, so a fixed set of worker threads spreads evenly.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut i = s.get();
        if i == usize::MAX {
            i = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(i);
        }
        i
    })
}

/// A monotonically increasing counter, lock-sharded for write scalability.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-write-wins value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds to the value (e.g. open-connection tracking).
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts from the value, saturating at zero.
    pub fn sub(&self, n: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: 16 exact linear buckets for `0..=15`, then
/// 4 sub-buckets per power of two up to `u64::MAX` (60 octaves × 4).
pub const BUCKET_COUNT: usize = 256;

/// The bucket a value falls into.
///
/// Values `0..=15` get exact buckets. A larger `v` with highest set bit
/// `b ≥ 4` lands in one of four sub-buckets of the octave `[2^b, 2^(b+1))`,
/// keyed by its next two bits — a log-linear layout with worst-case
/// relative error `1/4` of the octave (≈ 12% of the value).
pub fn bucket_of(v: u64) -> usize {
    if v < 16 {
        return v as usize;
    }
    let b = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (b - 2)) & 3) as usize;
    16 + (b - 4) * 4 + sub
}

/// The largest value mapping to bucket `i` — the bucket's representative.
///
/// Using the *upper* bound keeps summaries conservative (never optimistic
/// about latency). The top bucket's bound is `u64::MAX` (the shift wraps to
/// zero and the wrapping decrement lands on the intended all-ones value).
///
/// # Panics
///
/// Panics if `i >= BUCKET_COUNT`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    assert!(i < BUCKET_COUNT, "bucket index out of range");
    if i < 16 {
        return i as u64;
    }
    let octave = (i - 16) / 4;
    let sub = ((i - 16) % 4) as u64;
    let b = (octave + 4) as u32;
    ((4 + sub + 1) << (b - 2)).wrapping_sub(1)
}

/// A fixed-size log-linear histogram of `u64` samples.
///
/// Recording is wait-free (one relaxed fetch-add per field); reading takes
/// a relaxed pass over the buckets. Count, sum, min and max are exact;
/// percentiles are bucket-resolved. The value→representative mapping is
/// monotone non-decreasing, so the histogram's nearest-rank percentile is
/// *exactly* the representative of the true percentile sample — the
/// property the reference-sort tests pin down.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Freezes the histogram into plain integers.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let c = c.load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_upper_bound(i), c))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Summary statistics, or `None` when empty.
    pub fn summary(&self) -> Option<LatencyStats> {
        self.snapshot().summary()
    }
}

/// A frozen histogram: exact moments plus the non-empty `(representative,
/// count)` buckets, ascending. All integers, so snapshots compare exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Exact sum of samples (wrapping on overflow).
    pub sum: u64,
    /// Exact smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Exact largest sample (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(upper bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Summary statistics: percentiles are bucket-resolved
    /// ([`LatencyStats::from_bucketed`]); count, min, max and mean are
    /// replaced with the histogram's exact values.
    pub fn summary(&self) -> Option<LatencyStats> {
        let mut stats = LatencyStats::from_bucketed(&self.buckets)?;
        stats.count = self.count as usize;
        stats.min = self.min;
        stats.max = self.max;
        stats.mean = self.sum as f64 / self.count as f64;
        Some(stats)
    }
}

/// One registered instrument's frozen value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter's total.
    Counter(u64),
    /// A gauge's value.
    Gauge(u64),
    /// A histogram's frozen buckets and moments.
    Histogram(HistogramSnapshot),
}

/// A deterministic point-in-time view of a registry: name-ordered, all
/// integers. Two runs that record the same samples in any order produce
/// equal snapshots (and byte-identical rendered dumps).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Instrument values by name, ascending.
    pub entries: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// Convenience: a counter's value, or `None` if absent/not a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: a gauge's value, or `None` if absent/not a gauge.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: a histogram's snapshot, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.entries.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of instruments with get-or-create semantics.
///
/// The simulator owns a registry per run (virtual time, deterministic);
/// the TCP transport and kv server share the process-wide
/// [`crate::global`] one. Lookups take a read lock; creation (once per
/// name) takes the write lock.
#[derive(Debug, Default)]
pub struct Registry {
    slots: RwLock<BTreeMap<String, Slot>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Slot) -> Slot {
        if let Some(slot) = self.slots.read().get(name) {
            return slot.clone();
        }
        self.slots
            .write()
            .entry(name.to_string())
            .or_insert_with(make)
            .clone()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind — a
    /// naming bug, not an input error.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Slot::Counter(Arc::new(Counter::new()))) {
            Slot::Counter(c) => c,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics on a kind mismatch (see [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Slot::Gauge(Arc::new(Gauge::new()))) {
            Slot::Gauge(g) => g,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics on a kind mismatch (see [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Slot::Histogram(Arc::new(Histogram::new()))) {
            Slot::Histogram(h) => h,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Freezes every instrument into a deterministic [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let entries = self
            .slots
            .read()
            .iter()
            .map(|(name, slot)| {
                let value = match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                    Slot::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        g.set(7);
        g.add(3);
        assert_eq!(g.get(), 10);
        g.sub(100);
        assert_eq!(g.get(), 0, "saturating");
    }

    #[test]
    fn bucket_mapping_roundtrips_and_is_monotone() {
        // Every bucket's upper bound maps back to that bucket, and the
        // next value after it maps to the next bucket.
        for i in 0..BUCKET_COUNT {
            let hi = bucket_upper_bound(i);
            assert_eq!(bucket_of(hi), i, "upper bound of bucket {i}");
            if hi < u64::MAX {
                assert_eq!(bucket_of(hi + 1), i + 1, "boundary after bucket {i}");
            }
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(15), 15);
        assert_eq!(bucket_of(16), 16, "first log-linear bucket");
        assert_eq!(bucket_of(u64::MAX), BUCKET_COUNT - 1);
        assert_eq!(bucket_upper_bound(BUCKET_COUNT - 1), u64::MAX);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // Representative / value ≤ 1 + 1/4 for values ≥ 16 (one sub-bucket
        // of the octave), exact below 16.
        for v in [16u64, 100, 1000, 12345, 1 << 20, (1 << 40) + 12345] {
            let rep = bucket_upper_bound(bucket_of(v));
            assert!(rep >= v, "representative is an upper bound");
            assert!(
                (rep - v) as f64 / v as f64 <= 0.25,
                "error too large for {v}: rep {rep}"
            );
        }
    }

    #[test]
    fn histogram_exact_moments_bucketed_percentiles() {
        let h = Histogram::new();
        for v in [3u64, 3, 3, 200, 1000] {
            h.record(v);
        }
        let s = h.summary().unwrap();
        assert_eq!(s.count, 5);
        assert_eq!((s.min, s.max), (3, 1000), "min/max are exact");
        assert!((s.mean - 241.8).abs() < 1e-9, "mean uses the exact sum");
        assert_eq!(s.p50, 3, "exact linear bucket");
        assert_eq!(s.p90, bucket_upper_bound(bucket_of(1000)));
    }

    #[test]
    fn empty_histogram_has_no_summary() {
        assert!(Histogram::new().summary().is_none());
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn registry_returns_the_same_instrument() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("a").inc();
        assert_eq!(r.counter("a").get(), 2);
        r.histogram("h").record(5);
        assert_eq!(r.histogram("h").count(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_is_a_bug() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn snapshot_is_name_ordered_and_queryable() {
        let r = Registry::new();
        r.counter("z.last").add(9);
        r.gauge("a.first").set(1);
        r.histogram("m.mid").record(4);
        let snap = r.snapshot();
        let names: Vec<&String> = snap.entries.keys().collect();
        assert_eq!(names, ["a.first", "m.mid", "z.last"]);
        assert_eq!(snap.counter("z.last"), Some(9));
        assert_eq!(snap.gauge("a.first"), Some(1));
        assert_eq!(snap.histogram("m.mid").unwrap().count, 1);
        assert_eq!(snap.counter("a.first"), None, "kind-checked accessor");
    }
}
