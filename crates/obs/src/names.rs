//! Well-known metric names for the self-healing network path.
//!
//! The resilience layer spans three crates (`transport`, `kv`, and the
//! chaos tooling in `safereg-transport::chaos`); pinning the metric names
//! here keeps the producers and every consumer (tests, `scripts/ci.sh`,
//! the `__safereg/metrics` admin key) in agreement without string
//! duplication. All of these flow through the process-wide
//! [`crate::global`] registry.

/// Register-transport link supervisors: successful reconnections after a
/// connection was lost or refused (the initial connect does not count).
pub const TRANSPORT_RECONNECTS: &str = "transport.reconnects";

/// Register-transport circuit breaker state changes
/// (Closed → Open → HalfOpen → Closed …), summed over all servers.
pub const TRANSPORT_BREAKER_TRANSITIONS: &str = "transport.breaker.transitions";

/// Histogram of backoff waits (milliseconds) between reconnect attempts.
pub const TRANSPORT_BACKOFF_WAIT_MS: &str = "transport.backoff.wait_ms";

/// In-operation envelope resends performed by `ClusterClient::run_op`.
pub const TRANSPORT_OP_RETRIES: &str = "transport.op.retries";

/// Outgoing frames dropped because the link was down or its breaker open.
pub const TRANSPORT_SEND_DROPPED: &str = "transport.send.dropped_link_down";

/// KV transport: successful lazy reconnections.
pub const KV_RECONNECTS: &str = "kv.reconnects";

/// KV transport circuit breaker state changes, summed over all servers.
pub const KV_BREAKER_TRANSITIONS: &str = "kv.breaker.transitions";

/// Histogram of KV backoff waits (milliseconds).
pub const KV_BACKOFF_WAIT_MS: &str = "kv.backoff.wait_ms";

/// KV exchanges that failed because the server was unreachable (distinct
/// from a reachable server answering nothing, which is Byzantine silence).
pub const KV_EXCHANGE_UNREACHABLE: &str = "kv.exchange.unreachable";

/// Payload bytes memcpy'd while opening envelopes on the wire path. The
/// zero-copy decode keeps this at 0 for every relayed frame; a regression
/// that reintroduces an owned-`Vec<u8>` payload copy shows up here (and is
/// grep-gated in `scripts/ci.sh`).
pub const WIRE_BYTES_COPIED: &str = "wire.bytes_copied";

/// Frames shed by a bounded transport channel, summed over all links and
/// policies. Per-policy breakdowns live under [`shed_counter`].
pub const CHAN_SHED: &str = "chan.shed";

/// Server hosts: connections evicted for misbehaving at the socket level
/// (idle with no traffic, or stalled so writes time out), summed over all
/// reasons. Per-reason breakdowns live under [`eviction_counter`].
pub const SERVER_EVICTIONS: &str = "server.evictions";

/// Server hosts: replicas killed and respawned by a crash/restart
/// supervisor (`TcpKvCluster::restart` and friends).
pub const SERVER_RESTARTS: &str = "server.restarts";

/// Server hosts currently running a Byzantine behavior instead of the
/// honest protocol node (a gauge; role rotation moves it up and down).
pub const SERVER_BYZ_ACTIVE: &str = "server.byz.active";

/// Histogram of frames flushed per vectored batch write on a bounded
/// outbox drain (1 = no batching happened for that flush).
pub const TRANSPORT_BATCH_FRAMES: &str = "transport.batch.frames";

/// Chaos proxy: frames forwarded untouched.
pub const CHAOS_FORWARDED: &str = "chaos.frames.forwarded";

/// Chaos proxy: frames injected with a fault, by kind
/// (`chaos.frames.dropped`, `.delayed`, `.corrupted`, `.truncated`,
/// `.killed`).
pub const CHAOS_FAULT_PREFIX: &str = "chaos.frames";

/// Per-server link health gauge name (`0` Closed/healthy, `1` HalfOpen,
/// `2` Open). `prefix` is `"transport"` or `"kv"`.
pub fn link_state_gauge(prefix: &str, server: u16) -> String {
    format!("{prefix}.link.state.s{server}")
}

/// Per-policy shed counter name (`chan.shed.block`, `chan.shed.drop_newest`,
/// `chan.shed.drop_oldest`). `label` is `ShedPolicy::label()`.
pub fn shed_counter(label: &str) -> String {
    format!("{}.{label}", CHAN_SHED)
}

/// Per-reason eviction counter name (`server.evictions.idle`,
/// `server.evictions.stall`).
pub fn eviction_counter(reason: &str) -> String {
    format!("{}.{reason}", SERVER_EVICTIONS)
}

/// Current membership epoch a server host is serving (a gauge; every
/// reconfiguration step moves it up by one).
pub const KV_EPOCH_CURRENT: &str = "kv.epoch.current";

/// Frames a server rejected because their MAC-covered config stamp did not
/// match its current epoch (each one was answered with `WrongEpoch`).
pub const KV_EPOCH_STALE_FRAMES: &str = "kv.epoch.stale_frames";

/// Client-side configuration adoptions: a `WrongEpoch` redirect gathered
/// `f + 1` distinct votes for the same `(epoch, digest)` and the client
/// switched membership mid-operation.
pub const KV_EPOCH_ADOPTIONS: &str = "kv.epoch.adoptions";

/// Reconfiguration steps (add/remove/replace, one replica each) applied by
/// cluster orchestration.
pub const KV_EPOCH_RECONFIGS: &str = "kv.epoch.reconfigs";

/// Keys state-transferred into a joining, re-placed, or restarted replica
/// before it serves its epoch.
pub const KV_TRANSFER_KEYS: &str = "kv.reconfig.transfer.keys";

/// Evidence records filed into the audit log: each is a pair of authentic
/// chain links (or one inadmissible link) that proves misbehaviour.
pub const KV_AUDIT_EVIDENCE: &str = "kv.audit.evidence";

/// Convictions reached from evidence: a replica was proven Byzantine by
/// its own MAC-chained attestations.
pub const KV_AUDIT_CONVICTIONS: &str = "kv.audit.convictions";

/// Convictions of replicas the harness knows were correct — must stay 0;
/// any increment is a soundness bug in the audit layer.
pub const KV_AUDIT_FALSE_ACCUSATIONS: &str = "kv.audit.false_accusations";

/// Replicas quarantined (demoted to read-only) after a conviction, prior
/// to their eviction via reconfiguration.
pub const KV_AUDIT_QUARANTINES: &str = "kv.audit.quarantines";

/// Per-replica suspicion gauge (`kv.audit.suspicion.s3`): circumstantial
/// signals (cross-check mismatches, dropped/forged frames) that do not by
/// themselves convict.
pub fn audit_suspicion_gauge(server: u16) -> String {
    format!("kv.audit.suspicion.s{server}")
}

/// Hottest shard id observed by a sharded client (a gauge holding the
/// `ShardId` whose op counter currently leads).
pub const KV_SHARD_HOT: &str = "kv.shard.hot";

/// Op count of the hottest shard (the gauge [`KV_SHARD_HOT`] points at).
pub const KV_SHARD_HOT_OPS: &str = "kv.shard.hot.ops";

/// Per-shard completed-operation counter (`kv.shard.g3.ops`).
pub fn shard_ops_counter(shard: u16) -> String {
    format!("kv.shard.g{shard}.ops")
}

/// Per-shard read-path counter (`kv.shard.g3.reads.fast` / `.slow`).
/// `path` is `"fast"` or `"slow"`.
pub fn shard_reads_counter(shard: u16, path: &str) -> String {
    format!("kv.shard.g{shard}.reads.{path}")
}

/// Per-shard fast-read ratio gauge in permille
/// (`kv.shard.g3.fast_ratio_permille`).
pub fn shard_fast_ratio_gauge(shard: u16) -> String {
    format!("kv.shard.g{shard}.fast_ratio_permille")
}

/// Server-side per-shard dispatch counter (`kv.shard.g3.served`): requests a
/// host actually handled for that group. Deliberately distinct from the
/// client-owned [`shard_ops_counter`] series so in-process deployments
/// (client and server sharing one registry) never double-count.
pub fn shard_served_counter(shard: u16) -> String {
    format!("kv.shard.g{shard}.served")
}

/// Server-side inbound message counter by class (`kv.recv.query_tag` …);
/// `class` is `MsgClass::as_str()`.
pub fn kv_recv_counter(class: &str) -> String {
    format!("kv.recv.{class}")
}

/// Reactor runtime: event-loop threads currently running across all
/// hosts in the process (a gauge; proves thread count is O(reactors),
/// not O(connections)).
pub const REACTOR_THREADS: &str = "reactor.threads";

/// Reactor runtime: connections currently registered across all reactor
/// event loops in the process (a gauge).
pub const REACTOR_CONNS: &str = "reactor.conns";

/// Reactor runtime: readiness events dispatched (one per ready
/// connection per poll wake, wakeup tokens excluded).
pub const REACTOR_EVENTS: &str = "reactor.events";

/// Reactor runtime: explicit cross-thread wakeups delivered to an event
/// loop (accept hand-offs and shutdown, not socket readiness).
pub const REACTOR_WAKEUPS: &str = "reactor.wakeups";

/// Reactor runtime: accepted connections handed off to a reactor by the
/// accept-sharding layer.
pub const REACTOR_HANDOFFS: &str = "reactor.accept.handoffs";

/// Adaptive outbox capacity: grow steps (capacity doubled after a window
/// with a sustained `chan.shed` rate).
pub const CHAN_ADAPTIVE_GROW: &str = "chan.adaptive.grow";

/// Adaptive outbox capacity: shrink steps (capacity halved back toward
/// its base after consecutive shed-free windows).
pub const CHAN_ADAPTIVE_SHRINK: &str = "chan.adaptive.shrink";

/// Operations head-sampled into the trace layer (root contexts created
/// with a nonzero trace id).
pub const TRACE_SAMPLED_OPS: &str = "trace.sampled.ops";

/// Span records dropped because the flight-recorder ring lapped them
/// before a dump could read them (monotone, informational).
pub const TRACE_RING_LAPPED: &str = "trace.ring.lapped";

/// Flight-recorder dumps triggered (`trace.dump.violation`,
/// `.eviction`, `.watchdog`), summed over all reasons.
pub const TRACE_DUMPS: &str = "trace.dumps";

/// Per-reason flight-recorder dump counter (`trace.dump.violation` …).
pub fn trace_dump_counter(reason: &str) -> String {
    format!("trace.dump.{reason}")
}

/// Per-phase latency histogram for sampled spans
/// (`trace.phase.rpc.us` …); `phase` is `Phase::as_str()`.
pub fn trace_phase_hist(phase: &str) -> String {
    format!("trace.phase.{phase}.us")
}

/// Slow reads attributed to one concrete cause
/// (`kv.read.slow_cause.straggler_replica` …); `cause` is
/// `SlowCause::as_str()`.
pub fn slow_cause_counter(cause: &str) -> String {
    format!("kv.read.slow_cause.{cause}")
}

/// Exemplar gauge holding the most recent trace id attributed to a cause
/// (`kv.read.slow_cause.straggler_replica.exemplar`): joins the cause
/// histogram back to a concrete span tree in the flight recorder.
pub fn slow_cause_exemplar(cause: &str) -> String {
    format!("kv.read.slow_cause.{cause}.exemplar")
}

#[cfg(test)]
mod tests {
    #[test]
    fn gauge_names_are_stable() {
        assert_eq!(
            super::link_state_gauge("transport", 3),
            "transport.link.state.s3"
        );
        assert_eq!(super::link_state_gauge("kv", 0), "kv.link.state.s0");
    }

    #[test]
    fn shed_counter_names_are_stable() {
        assert_eq!(super::shed_counter("block"), "chan.shed.block");
        assert_eq!(super::shed_counter("drop_oldest"), "chan.shed.drop_oldest");
        assert_eq!(super::WIRE_BYTES_COPIED, "wire.bytes_copied");
    }

    #[test]
    fn shard_metric_names_are_stable() {
        assert_eq!(super::shard_ops_counter(3), "kv.shard.g3.ops");
        assert_eq!(
            super::shard_reads_counter(0, "fast"),
            "kv.shard.g0.reads.fast"
        );
        assert_eq!(
            super::shard_fast_ratio_gauge(7),
            "kv.shard.g7.fast_ratio_permille"
        );
        assert_eq!(super::KV_SHARD_HOT, "kv.shard.hot");
        assert_eq!(super::KV_SHARD_HOT_OPS, "kv.shard.hot.ops");
    }

    #[test]
    fn trace_metric_names_are_stable() {
        assert_eq!(super::shard_served_counter(3), "kv.shard.g3.served");
        assert_eq!(super::kv_recv_counter("query_tag"), "kv.recv.query_tag");
        assert_eq!(super::TRACE_SAMPLED_OPS, "trace.sampled.ops");
        assert_eq!(super::TRACE_RING_LAPPED, "trace.ring.lapped");
        assert_eq!(
            super::trace_dump_counter("violation"),
            "trace.dump.violation"
        );
        assert_eq!(
            super::trace_phase_hist("mutex_wait"),
            "trace.phase.mutex_wait.us"
        );
        assert_eq!(
            super::slow_cause_counter("straggler_replica"),
            "kv.read.slow_cause.straggler_replica"
        );
        assert_eq!(
            super::slow_cause_counter("reconfig_transfer"),
            "kv.read.slow_cause.reconfig_transfer"
        );
        assert_eq!(
            super::slow_cause_exemplar("shed_outbox"),
            "kv.read.slow_cause.shed_outbox.exemplar"
        );
    }

    #[test]
    fn epoch_metric_names_are_stable() {
        assert_eq!(super::KV_EPOCH_CURRENT, "kv.epoch.current");
        assert_eq!(super::KV_EPOCH_STALE_FRAMES, "kv.epoch.stale_frames");
        assert_eq!(super::KV_EPOCH_ADOPTIONS, "kv.epoch.adoptions");
        assert_eq!(super::KV_EPOCH_RECONFIGS, "kv.epoch.reconfigs");
        assert_eq!(super::KV_TRANSFER_KEYS, "kv.reconfig.transfer.keys");
    }

    #[test]
    fn audit_metric_names_are_stable() {
        assert_eq!(super::KV_AUDIT_EVIDENCE, "kv.audit.evidence");
        assert_eq!(super::KV_AUDIT_CONVICTIONS, "kv.audit.convictions");
        assert_eq!(
            super::KV_AUDIT_FALSE_ACCUSATIONS,
            "kv.audit.false_accusations"
        );
        assert_eq!(super::KV_AUDIT_QUARANTINES, "kv.audit.quarantines");
        assert_eq!(super::audit_suspicion_gauge(3), "kv.audit.suspicion.s3");
    }

    #[test]
    fn reactor_metric_names_are_stable() {
        assert_eq!(super::REACTOR_THREADS, "reactor.threads");
        assert_eq!(super::REACTOR_CONNS, "reactor.conns");
        assert_eq!(super::REACTOR_EVENTS, "reactor.events");
        assert_eq!(super::REACTOR_WAKEUPS, "reactor.wakeups");
        assert_eq!(super::REACTOR_HANDOFFS, "reactor.accept.handoffs");
        assert_eq!(super::CHAN_ADAPTIVE_GROW, "chan.adaptive.grow");
        assert_eq!(super::CHAN_ADAPTIVE_SHRINK, "chan.adaptive.shrink");
    }

    #[test]
    fn eviction_counter_names_are_stable() {
        assert_eq!(super::eviction_counter("idle"), "server.evictions.idle");
        assert_eq!(super::eviction_counter("stall"), "server.evictions.stall");
        assert_eq!(super::SERVER_EVICTIONS, "server.evictions");
        assert_eq!(super::SERVER_RESTARTS, "server.restarts");
        assert_eq!(super::TRANSPORT_BATCH_FRAMES, "transport.batch.frames");
    }
}
