//! Span records, the lock-free flight recorder, and the slow-read
//! attributor — the process side of the causal tracing layer whose wire
//! side is [`safereg_common::trace::TraceCtx`].
//!
//! # Caller-stamped clock rule
//!
//! A [`SpanRecord`]'s `at`/`dur` fields are **always stamped by the
//! caller**: the deterministic simulator stamps virtual ticks, the TCP
//! stack stamps wall-clock microseconds. Nothing in this module reads a
//! clock, which is why identically-seeded simulator runs render
//! byte-identical span streams through the very same code path the real
//! network uses.
//!
//! # Flight recorder
//!
//! [`FlightRecorder`] is a fixed-size seqlock ring: `emit` is wait-free
//! (one `fetch_add` for a ticket plus six relaxed stores and one release
//! store), readers detect and discard slots that were mid-overwrite. The
//! process-wide ring ([`flight`]) holds the last few thousand spans and is
//! dumped as JSONL to stderr by [`dump_flight`] when something goes wrong:
//! a checker violation, a connection eviction, or a soak-watchdog trip.
//!
//! # Attribution
//!
//! [`attribute_slow_read`] maps the evidence a client gathered while
//! driving a non-fast read ([`SlowEvidence`]) onto one concrete
//! [`SlowCause`]. Causes are ordered by specificity — a retry forced by a
//! network fault outranks generic straggling — so every slow read gets
//! exactly one label and the per-cause counters partition the slow count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use safereg_common::trace::{Phase, TraceCtx};

use crate::names;

/// What a [`SpanRecord`] marks within its trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// Root: a client operation was invoked.
    Start = 0,
    /// Root: the operation completed (duration = whole op).
    End = 1,
    /// A timed phase segment ([`Phase`] names which one).
    Segment = 2,
    /// A retry pass began (`detail` = pass number).
    Retry = 3,
    /// Point annotation (breaker transition, shed, eviction…).
    Note = 4,
}

impl SpanKind {
    /// All kinds, discriminant order.
    pub const ALL: [SpanKind; 5] = [
        SpanKind::Start,
        SpanKind::End,
        SpanKind::Segment,
        SpanKind::Retry,
        SpanKind::Note,
    ];

    /// Stable name used in JSONL dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Start => "start",
            SpanKind::End => "end",
            SpanKind::Segment => "segment",
            SpanKind::Retry => "retry",
            SpanKind::Note => "note",
        }
    }

    /// Decodes a packed discriminant.
    pub fn from_u8(v: u8) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| *k as u8 == v)
    }
}

/// The concrete reason a read left the paper's fast path.
///
/// Ordered by attribution priority: when several kinds of evidence are
/// present the most specific (lowest discriminant) wins, so the per-cause
/// counters always partition the slow-read count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SlowCause {
    /// The operation straddled an epoch change: the client was redirected
    /// with `WrongEpoch`, adopted the new configuration, and re-issued.
    /// Highest priority — retries and unreachable old members during a
    /// reconfiguration are symptoms of the epoch change, not root causes.
    ReconfigTransfer = 0,
    /// The client re-drove the quorum after a network-level fault
    /// (unreachable server, chaos drop/sever, timeout).
    RetryAfterFault = 1,
    /// A bounded outbox shed frames during the operation.
    ShedOutbox = 2,
    /// A reachable replica answered with a stale or invalid value
    /// (validation failures at the protocol layer).
    ByzStaleAck = 3,
    /// A reachable replica returned no reply at all — Byzantine silence.
    ByzSilence = 4,
    /// One replica answered far slower than its peers.
    StragglerReplica = 5,
    /// The protocol simply required its second phase (insufficient
    /// witnesses on the fast round) with no fault evidence.
    SecondPhase = 6,
}

impl SlowCause {
    /// All causes, priority order (stable for schema dumps).
    pub const ALL: [SlowCause; 7] = [
        SlowCause::ReconfigTransfer,
        SlowCause::RetryAfterFault,
        SlowCause::ShedOutbox,
        SlowCause::ByzStaleAck,
        SlowCause::ByzSilence,
        SlowCause::StragglerReplica,
        SlowCause::SecondPhase,
    ];

    /// Stable snake_case name used in metric names and JSONL dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            SlowCause::ReconfigTransfer => "reconfig_transfer",
            SlowCause::RetryAfterFault => "retry_after_fault",
            SlowCause::ShedOutbox => "shed_outbox",
            SlowCause::ByzStaleAck => "byz_stale_ack",
            SlowCause::ByzSilence => "byz_silence",
            SlowCause::StragglerReplica => "straggler_replica",
            SlowCause::SecondPhase => "second_phase",
        }
    }

    /// Decodes the packed discriminant (`0` in a record means "no cause").
    pub fn from_u8(v: u8) -> Option<SlowCause> {
        SlowCause::ALL.into_iter().find(|c| *c as u8 == v)
    }
}

/// Straggler heuristic: the slowest replica answered at least this many
/// times slower than the fastest, and at least this much absolute spread.
const STRAGGLER_RATIO: u64 = 4;
const STRAGGLER_FLOOR_US: u64 = 500;

/// Evidence a client gathers while driving one read, fed to
/// [`attribute_slow_read`] when the read completes on the slow path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlowEvidence {
    /// Retry passes beyond the first quorum attempt.
    pub retry_passes: u32,
    /// Exchanges that failed at the network layer (unreachable/timeout).
    pub unreachable: u32,
    /// Reachable servers that returned zero replies (Byzantine silence).
    pub silent: u32,
    /// Stale/invalid replies the protocol layer rejected.
    pub validation_failures: u64,
    /// A bounded wire queue shed frames during the operation.
    pub shed: bool,
    /// Epoch configurations adopted mid-operation after a `WrongEpoch`
    /// redirect (each adoption forced a re-issue against new membership).
    pub reconfig: u32,
    /// Slowest single-server exchange, µs (0 = untimed).
    pub rpc_max_us: u64,
    /// Fastest single-server exchange, µs (0 = untimed).
    pub rpc_min_us: u64,
}

/// Classifies a slow read's evidence into one concrete [`SlowCause`].
///
/// Total: every evidence combination maps to exactly one cause, with
/// [`SlowCause::SecondPhase`] as the no-fault floor — the paper's honest
/// "not enough witnesses on the fast round" outcome.
pub fn attribute_slow_read(ev: &SlowEvidence) -> SlowCause {
    if ev.reconfig > 0 {
        SlowCause::ReconfigTransfer
    } else if ev.unreachable > 0 && ev.retry_passes > 0 {
        SlowCause::RetryAfterFault
    } else if ev.shed {
        SlowCause::ShedOutbox
    } else if ev.validation_failures > 0 {
        SlowCause::ByzStaleAck
    } else if ev.silent > 0 {
        SlowCause::ByzSilence
    } else if ev.rpc_min_us > 0
        && ev.rpc_max_us >= ev.rpc_min_us.saturating_mul(STRAGGLER_RATIO)
        && ev.rpc_max_us - ev.rpc_min_us >= STRAGGLER_FLOOR_US
    {
        SlowCause::StragglerReplica
    } else {
        SlowCause::SecondPhase
    }
}

/// Counts the slow read under its cause and parks its trace id in the
/// cause's exemplar gauge (joinable against a flight-recorder dump).
pub fn count_slow_cause(cause: SlowCause, trace_id: u64) {
    let reg = crate::global();
    reg.counter(&names::slow_cause_counter(cause.as_str()))
        .inc();
    if trace_id != 0 {
        reg.gauge(&names::slow_cause_exemplar(cause.as_str()))
            .set(trace_id);
    }
}

/// Identity of the process that emitted a record, packed into 32 bits.
/// `0` = unknown; otherwise a 16-bit kind tag over the 16-bit id.
pub mod node {
    use safereg_common::ids::ClientId;

    /// A server process.
    pub fn server(id: u16) -> u32 {
        0x0001_0000 | u32::from(id)
    }

    /// A client process (reader or writer).
    pub fn client(id: ClientId) -> u32 {
        match id {
            ClientId::Reader(r) => 0x0002_0000 | u32::from(r.0),
            ClientId::Writer(w) => 0x0003_0000 | u32::from(w.0),
        }
    }

    /// Renders the packed word the way `ids` Display does (`s3`/`r1`/`w2`),
    /// with `-` for unknown.
    pub fn render(word: u32) -> String {
        let id = word & 0xFFFF;
        match word >> 16 {
            0x0001 => format!("s{id}"),
            0x0002 => format!("r{id}"),
            0x0003 => format!("w{id}"),
            _ => "-".to_string(),
        }
    }
}

/// One span event: the wire context it belongs to plus what/when/where.
///
/// Packs into exactly five `u64` words ([`SpanRecord::pack`]) so the
/// flight-recorder ring can store it in atomic slots without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace id (nonzero; unsampled contexts never reach a sink).
    pub trace_id: u64,
    /// Low bits of the client's op counter (from the wire context).
    pub op_seq: u32,
    /// [`Phase`] discriminant this record describes.
    pub phase: u8,
    /// Process-boundary distance from the invoking client.
    pub hop: u8,
    /// [`SpanKind`] discriminant.
    pub kind: u8,
    /// `SlowCause as u8 + 1`, or `0` for none.
    pub cause: u8,
    /// Caller-stamped start time (virtual ticks or wall µs — see module docs).
    pub at: u64,
    /// Caller-stamped duration in the same unit (0 = point event).
    pub dur: u64,
    /// Emitting process, packed by [`node`].
    pub node: u32,
    /// Kind-specific payload (retry pass, destination server, bytes…).
    pub detail: u32,
}

impl SpanRecord {
    /// Builds a record from a sampled wire context.
    pub fn new(ctx: TraceCtx, kind: SpanKind, at: u64, dur: u64, node: u32, detail: u32) -> Self {
        SpanRecord {
            trace_id: ctx.id,
            op_seq: ctx.op_seq,
            phase: ctx.phase,
            hop: ctx.hop,
            kind: kind as u8,
            cause: 0,
            at,
            dur,
            node,
            detail,
        }
    }

    /// Attaches a slow cause (used on [`SpanKind::End`] records of slow reads).
    pub fn with_cause(mut self, cause: SlowCause) -> Self {
        self.cause = cause as u8 + 1;
        self
    }

    /// Packs into five words for an atomic ring slot.
    pub fn pack(&self) -> [u64; 5] {
        [
            self.trace_id,
            u64::from(self.op_seq)
                | u64::from(self.phase) << 32
                | u64::from(self.hop) << 40
                | u64::from(self.kind) << 48
                | u64::from(self.cause) << 56,
            self.at,
            self.dur,
            u64::from(self.node) << 32 | u64::from(self.detail),
        ]
    }

    /// Inverse of [`SpanRecord::pack`].
    pub fn unpack(w: [u64; 5]) -> Self {
        SpanRecord {
            trace_id: w[0],
            op_seq: w[1] as u32,
            phase: (w[1] >> 32) as u8,
            hop: (w[1] >> 40) as u8,
            kind: (w[1] >> 48) as u8,
            cause: (w[1] >> 56) as u8,
            at: w[2],
            dur: w[3],
            node: (w[4] >> 32) as u32,
            detail: w[4] as u32,
        }
    }

    /// Renders one stable JSONL line. Pure function of the record — the
    /// schema the CI smoke and the bench dumps grep is fixed here.
    pub fn render(&self) -> String {
        let phase = Phase::from_u8(self.phase).map_or("?", Phase::as_str);
        let kind = SpanKind::from_u8(self.kind).map_or("?", SpanKind::as_str);
        let cause = self
            .cause
            .checked_sub(1)
            .and_then(SlowCause::from_u8)
            .map_or_else(|| "null".to_string(), |c| format!("\"{}\"", c.as_str()));
        format!(
            "{{\"trace\":\"{:016x}\",\"seq\":{},\"hop\":{},\"phase\":\"{}\",\"kind\":\"{}\",\"at\":{},\"dur\":{},\"node\":\"{}\",\"cause\":{},\"detail\":{}}}",
            self.trace_id,
            self.op_seq,
            self.hop,
            phase,
            kind,
            self.at,
            self.dur,
            node::render(self.node),
            cause,
            self.detail,
        )
    }
}

/// Where span records go. Implemented by the process-wide
/// [`FlightRecorder`] and by the per-run [`SpanLog`] the simulator and
/// tests use; instrument sites only ever see the trait.
pub trait SpanSink: Send + Sync {
    /// Accepts one record. Must not block the caller meaningfully.
    fn emit(&self, rec: SpanRecord);
}

/// A growable, mutex-guarded sink: the deterministic choice for simulator
/// runs and tests, where every record must survive for later rendering.
#[derive(Default)]
pub struct SpanLog {
    records: safereg_common::sync::Mutex<Vec<SpanRecord>>,
}

impl SpanLog {
    /// An empty log.
    pub fn new() -> Self {
        SpanLog::default()
    }

    /// All records in emit order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records.lock().clone()
    }

    /// Renders every record as one JSONL line each, emit order — the
    /// byte stream compared across identically-seeded simulator runs.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.records.lock().iter() {
            out.push_str(&r.render());
            out.push('\n');
        }
        out
    }
}

impl SpanSink for SpanLog {
    fn emit(&self, rec: SpanRecord) {
        self.records.lock().push(rec);
    }
}

/// One seqlock slot: a version word plus the five packed record words.
/// Odd version = a writer is mid-store; readers retry-or-skip.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; 5],
}

/// A fixed-capacity, wait-free ring of the most recent spans.
///
/// Writers never block and never allocate: `emit` takes a global ticket
/// with one `fetch_add`, claims slot `ticket % capacity`, marks it odd,
/// stores the five words relaxed and publishes with a release store of
/// `2·ticket + 2`. A reader ([`FlightRecorder::snapshot`]) accepts a slot
/// only if the version it saw before and after reading the words is the
/// same even value, so torn writes are discarded, not misread. Two writers
/// lapping each other on the same slot is resolved by last-writer-wins —
/// acceptable for a diagnostics ring where dropping a lapped span is
/// exactly the intended behaviour (counted under
/// [`names::TRACE_RING_LAPPED`] at dump time).
pub struct FlightRecorder {
    cursor: AtomicU64,
    slots: Box<[Slot]>,
    mask: u64,
}

impl FlightRecorder {
    /// A ring holding the last `capacity` spans (rounded up to a power of
    /// two so slot indexing is a mask, not a division).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                words: [
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                ],
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        FlightRecorder {
            cursor: AtomicU64::new(0),
            slots,
            mask: cap as u64 - 1,
        }
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever emitted.
    pub fn emitted(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records overwritten before any dump could read them.
    pub fn lapped(&self) -> u64 {
        self.emitted().saturating_sub(self.slots.len() as u64)
    }

    /// Consistent view of the surviving records, oldest first. Slots a
    /// writer was overwriting during the scan are skipped.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out: Vec<(u64, SpanRecord)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue; // empty or mid-write
            }
            let words = [
                slot.words[0].load(Ordering::Relaxed),
                slot.words[1].load(Ordering::Relaxed),
                slot.words[2].load(Ordering::Relaxed),
                slot.words[3].load(Ordering::Relaxed),
                slot.words[4].load(Ordering::Relaxed),
            ];
            if slot.seq.load(Ordering::Acquire) != before {
                continue; // torn: overwritten while reading
            }
            out.push((before / 2 - 1, SpanRecord::unpack(words)));
        }
        out.sort_by_key(|(ticket, _)| *ticket);
        out.into_iter().map(|(_, r)| r).collect()
    }
}

impl SpanSink for FlightRecorder {
    fn emit(&self, rec: SpanRecord) {
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & self.mask) as usize];
        slot.seq.store(2 * ticket + 1, Ordering::Release);
        let words = rec.pack();
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(2 * ticket + 2, Ordering::Release);
    }
}

/// The process-wide flight recorder the TCP stack and clients feed.
/// Sized to hold the last few thousand spans — enough for the full span
/// trees of every in-flight op at the moment something trips.
pub fn flight() -> &'static FlightRecorder {
    static RING: OnceLock<FlightRecorder> = OnceLock::new();
    RING.get_or_init(|| FlightRecorder::new(8192))
}

/// Emits into the process-wide ring iff the context is sampled, and feeds
/// the per-phase latency histogram for [`SpanKind::Segment`] records.
/// The unsampled cost is the one `is_sampled` branch.
pub fn record_global(ctx: TraceCtx, kind: SpanKind, at: u64, dur: u64, node: u32, detail: u32) {
    if !ctx.is_sampled() {
        return;
    }
    if kind == SpanKind::Segment {
        if let Some(phase) = Phase::from_u8(ctx.phase) {
            phase_hist(phase).record(dur);
        }
    }
    flight().emit(SpanRecord::new(ctx, kind, at, dur, node, detail));
}

/// As [`record_global`] but stamps a [`SlowCause`] on the record.
pub fn record_global_end(ctx: TraceCtx, at: u64, dur: u64, node: u32, cause: Option<SlowCause>) {
    if !ctx.is_sampled() {
        return;
    }
    let mut rec = SpanRecord::new(ctx, SpanKind::End, at, dur, node, 0);
    if let Some(c) = cause {
        rec = rec.with_cause(c);
    }
    flight().emit(rec);
}

/// Cached handles to the eight per-phase histograms so sampled hot paths
/// skip the registry's name lookup.
fn phase_hist(phase: Phase) -> &'static Arc<crate::metrics::Histogram> {
    static HISTS: OnceLock<Vec<Arc<crate::metrics::Histogram>>> = OnceLock::new();
    let all = HISTS.get_or_init(|| {
        Phase::ALL
            .iter()
            .map(|p| crate::global().histogram(&names::trace_phase_hist(p.as_str())))
            .collect()
    });
    &all[phase as usize]
}

/// Upper bound on flight dumps per process — a crash loop must not drown
/// stderr in ring dumps.
const MAX_DUMPS: u64 = 16;

/// Dumps the ring to stderr as JSONL, newest state of the ring, oldest
/// record first, book-ended by `FLIGHT begin/end` marker lines that carry
/// the `reason`. Returns how many records were written; after
/// [`MAX_DUMPS`] dumps the call only counts the trigger.
///
/// Goes to **stderr** on purpose: the bench harness and CI capture stdout
/// for verdict lines and JSON artifacts, so dumps never corrupt those.
pub fn dump_flight(reason: &str) -> usize {
    let reg = crate::global();
    reg.counter(names::TRACE_DUMPS).inc();
    reg.counter(&names::trace_dump_counter(reason)).inc();
    static DUMPS: AtomicU64 = AtomicU64::new(0);
    if DUMPS.fetch_add(1, Ordering::Relaxed) >= MAX_DUMPS {
        return 0;
    }
    let ring = flight();
    reg.gauge(names::TRACE_RING_LAPPED).set(ring.lapped());
    let records = ring.snapshot();
    let mut out = String::with_capacity(records.len() * 96 + 128);
    out.push_str(&format!(
        "FLIGHT begin reason={} records={} lapped={}\n",
        reason,
        records.len(),
        ring.lapped()
    ));
    for r in &records {
        out.push_str(&r.render());
        out.push('\n');
    }
    out.push_str(&format!("FLIGHT end reason={reason}\n"));
    eprint!("{out}");
    records.len()
}

/// All records of one trace, causal order: by hop first (client before
/// server), then caller-stamped time, then emit order as tiebreak.
pub fn span_tree(records: &[SpanRecord], trace_id: u64) -> Vec<SpanRecord> {
    let mut tree: Vec<(usize, SpanRecord)> = records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.trace_id == trace_id)
        .map(|(i, r)| (i, *r))
        .collect();
    tree.sort_by_key(|(i, r)| (r.hop, r.at, *i));
    tree.into_iter().map(|(_, r)| r).collect()
}

/// Renders a span tree with two-space indentation per hop — the
/// human-facing form of a violation dump.
pub fn render_tree(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    for r in records {
        for _ in 0..r.hop {
            out.push_str("  ");
        }
        out.push_str(&r.render());
        out.push('\n');
    }
    out
}

/// Renders the full span tree of every violating operation: for each
/// violation the trace id is recomputed from the op id (possible because
/// [`TraceCtx::derive_id`] is a pure function of the
/// [`OpId`](safereg_common::msg::OpId)), so the
/// correlation needs no lookup table kept during the run. Operations whose
/// spans were never sampled (or already lapped out of the source) render an
/// explicit `(no sampled spans)` line rather than silently vanishing.
pub fn violation_trees(
    records: &[SpanRecord],
    violations: &[safereg_checker::Violation],
) -> String {
    let mut out = String::new();
    for v in violations {
        let id = TraceCtx::derive_id(&v.op);
        out.push_str(&format!(
            "VIOLATION {:?} op={} trace={:016x}: {}\n",
            v.kind, v.op, id, v.detail
        ));
        let tree = span_tree(records, id);
        if tree.is_empty() {
            out.push_str("  (no sampled spans)\n");
        } else {
            out.push_str(&render_tree(&tree));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ClientId, ReaderId};
    use safereg_common::msg::OpId;
    use safereg_common::rng::DetRng;

    fn ctx(id: u64, seq: u32, phase: Phase, hop: u8) -> TraceCtx {
        TraceCtx {
            id,
            op_seq: seq,
            phase: phase as u8,
            hop,
        }
    }

    #[test]
    fn records_pack_and_unpack_losslessly() {
        let mut rng = DetRng::seed_from(0xC0FFEE);
        for _ in 0..2000 {
            let rec = SpanRecord {
                trace_id: rng.next_u64(),
                op_seq: rng.next_u64() as u32,
                phase: (rng.next_u64() % 8) as u8,
                hop: (rng.next_u64() % 4) as u8,
                kind: (rng.next_u64() % 5) as u8,
                cause: (rng.next_u64() % 7) as u8,
                at: rng.next_u64(),
                dur: rng.next_u64(),
                node: rng.next_u64() as u32,
                detail: rng.next_u64() as u32,
            };
            assert_eq!(SpanRecord::unpack(rec.pack()), rec);
        }
    }

    #[test]
    fn attribution_priority_partitions_evidence() {
        let base = SlowEvidence::default();
        assert_eq!(attribute_slow_read(&base), SlowCause::SecondPhase);
        assert_eq!(
            attribute_slow_read(&SlowEvidence {
                reconfig: 1,
                unreachable: 1,
                retry_passes: 1,
                silent: 2,
                validation_failures: 3,
                shed: true,
                ..base
            }),
            SlowCause::ReconfigTransfer,
            "an in-flight epoch change outranks everything: the retries and \
             unreachable old members it causes are symptoms"
        );
        assert_eq!(
            attribute_slow_read(&SlowEvidence {
                unreachable: 1,
                retry_passes: 1,
                silent: 2,
                validation_failures: 3,
                shed: true,
                ..base
            }),
            SlowCause::RetryAfterFault,
            "network-fault retry outranks the rest"
        );
        assert_eq!(
            attribute_slow_read(&SlowEvidence {
                reconfig: 1,
                rpc_min_us: 100,
                rpc_max_us: 5000,
                ..base
            }),
            SlowCause::ReconfigTransfer,
            "a redirected read never falls through to straggler_replica"
        );
        assert_eq!(
            attribute_slow_read(&SlowEvidence {
                shed: true,
                validation_failures: 1,
                ..base
            }),
            SlowCause::ShedOutbox
        );
        assert_eq!(
            attribute_slow_read(&SlowEvidence {
                validation_failures: 1,
                silent: 1,
                ..base
            }),
            SlowCause::ByzStaleAck
        );
        assert_eq!(
            attribute_slow_read(&SlowEvidence { silent: 1, ..base }),
            SlowCause::ByzSilence
        );
        assert_eq!(
            attribute_slow_read(&SlowEvidence {
                rpc_min_us: 100,
                rpc_max_us: 5000,
                ..base
            }),
            SlowCause::StragglerReplica
        );
        assert_eq!(
            attribute_slow_read(&SlowEvidence {
                rpc_min_us: 100,
                rpc_max_us: 300,
                ..base
            }),
            SlowCause::SecondPhase,
            "mild spread is not a straggler"
        );
        // Unreachable without a successful retry pass is still a fault.
        assert_eq!(
            attribute_slow_read(&SlowEvidence {
                unreachable: 2,
                ..base
            }),
            SlowCause::SecondPhase,
            "unreachable with no retry pass means the quorum never needed it"
        );
    }

    #[test]
    fn ring_keeps_exactly_the_most_recent_records() {
        let ring = FlightRecorder::new(64);
        assert_eq!(ring.capacity(), 64);
        for i in 0..200u64 {
            ring.emit(SpanRecord::new(
                ctx(1, i as u32, Phase::ClientOp, 0),
                SpanKind::Note,
                i,
                0,
                0,
                0,
            ));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 64);
        assert_eq!(ring.lapped(), 200 - 64);
        // Oldest-first and exactly the last 64 emits survive.
        let seqs: Vec<u32> = snap.iter().map(|r| r.op_seq).collect();
        let expect: Vec<u32> = (136..200).collect();
        assert_eq!(seqs, expect);
    }

    #[test]
    fn ring_wraparound_property_under_random_batch_sizes() {
        let mut rng = DetRng::seed_from(0x5EED_0001);
        for round in 0..40 {
            let cap = 1usize << (1 + (rng.next_u64() % 6)); // 2..=64
            let ring = FlightRecorder::new(cap);
            let total = rng.next_u64() % 300;
            for i in 0..total {
                ring.emit(SpanRecord::new(
                    ctx(round + 1, i as u32, Phase::Rpc, 1),
                    SpanKind::Segment,
                    i,
                    i * 2,
                    node::server(3),
                    0,
                ));
            }
            let snap = ring.snapshot();
            let expect_len = total.min(cap as u64) as usize;
            assert_eq!(snap.len(), expect_len, "cap={cap} total={total}");
            let first = total - expect_len as u64;
            for (k, r) in snap.iter().enumerate() {
                assert_eq!(u64::from(r.op_seq), first + k as u64);
                assert_eq!(r.dur, r.at * 2, "payload survived the wrap");
            }
        }
    }

    #[test]
    fn concurrent_emit_never_yields_torn_records() {
        // Writers stamp word-consistent records (dur = at * 2, detail =
        // node). A torn slot that escaped the seqlock check would break
        // one of those invariants.
        let ring = Arc::new(FlightRecorder::new(128));
        let threads: Vec<_> = (0..8u32)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..5000u64 {
                        let at = u64::from(t) << 32 | i;
                        ring.emit(SpanRecord::new(
                            ctx(u64::from(t) + 1, i as u32, Phase::Dispatch, 2),
                            SpanKind::Segment,
                            at,
                            at * 2,
                            t + 1,
                            t + 1,
                        ));
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            for r in ring.snapshot() {
                assert_eq!(r.dur, r.at * 2, "torn record escaped the seqlock");
                assert_eq!(r.detail, r.node, "torn record escaped the seqlock");
            }
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.emitted(), 8 * 5000);
        assert_eq!(ring.snapshot().len(), 128);
    }

    #[test]
    fn render_is_stable_and_tree_orders_by_hop_then_time() {
        let id = TraceCtx::derive_id(&OpId::new(ReaderId(1), 7));
        let client = node::client(ClientId::Reader(ReaderId(1)));
        let records = vec![
            SpanRecord::new(
                ctx(id, 7, Phase::Dispatch, 1),
                SpanKind::Segment,
                20,
                5,
                node::server(0),
                0,
            ),
            SpanRecord::new(
                ctx(id, 7, Phase::ClientOp, 0),
                SpanKind::Start,
                10,
                0,
                client,
                0,
            ),
            SpanRecord::new(ctx(99, 0, Phase::ClientOp, 0), SpanKind::Start, 0, 0, 0, 0),
            SpanRecord::new(
                ctx(id, 7, Phase::ClientOp, 0),
                SpanKind::End,
                40,
                30,
                client,
                0,
            )
            .with_cause(SlowCause::ByzSilence),
        ];
        let tree = span_tree(&records, id);
        assert_eq!(tree.len(), 3, "foreign traces are filtered out");
        assert_eq!(tree[0].kind, SpanKind::Start as u8);
        assert_eq!(tree[1].kind, SpanKind::End as u8);
        assert_eq!(tree[2].hop, 1);
        let line = tree[1].render();
        assert!(line.contains("\"phase\":\"client_op\""), "{line}");
        assert!(line.contains("\"cause\":\"byz_silence\""), "{line}");
        assert!(line.contains(&format!("{:016x}", id)), "{line}");
        let rendered = render_tree(&tree);
        assert_eq!(rendered.lines().count(), 3);
        assert!(rendered.lines().nth(2).unwrap().starts_with("  "));
        // Rendering is a pure function: same records, same bytes.
        assert_eq!(rendered, render_tree(&span_tree(&records, id)));
    }

    #[test]
    fn violation_trees_correlate_ops_without_a_lookup_table() {
        use safereg_checker::{Violation, ViolationKind};
        let bad_op = OpId::new(ReaderId(3), 11);
        let id = TraceCtx::derive_id(&bad_op);
        let client = node::client(ClientId::Reader(ReaderId(3)));
        let records = vec![
            SpanRecord::new(
                ctx(id, 11, Phase::ClientOp, 0),
                SpanKind::Start,
                5,
                0,
                client,
                0,
            ),
            SpanRecord::new(
                ctx(id, 11, Phase::Rpc, 0),
                SpanKind::Segment,
                6,
                2,
                client,
                1,
            ),
            SpanRecord::new(ctx(777, 0, Phase::ClientOp, 0), SpanKind::Start, 0, 0, 0, 0),
        ];
        let violations = vec![
            Violation {
                op: bad_op,
                kind: ViolationKind::StaleRead,
                detail: "returned superseded value".into(),
            },
            Violation {
                op: OpId::new(ReaderId(9), 1), // never sampled
                kind: ViolationKind::StaleTag,
                detail: "old tag".into(),
            },
        ];
        let out = violation_trees(&records, &violations);
        assert!(out.contains("VIOLATION StaleRead"), "{out}");
        assert!(out.contains(&format!("{id:016x}")), "{out}");
        assert!(out.contains("\"phase\":\"rpc\""), "{out}");
        assert!(out.contains("(no sampled spans)"), "{out}");
        // Pure function of its inputs: stable across calls.
        assert_eq!(out, violation_trees(&records, &violations));
    }

    #[test]
    fn span_log_renders_in_emit_order() {
        let log = SpanLog::new();
        for i in 0..5u64 {
            log.emit(SpanRecord::new(
                ctx(1, i as u32, Phase::Rpc, 0),
                SpanKind::Note,
                i,
                0,
                0,
                0,
            ));
        }
        let jsonl = log.render_jsonl();
        assert_eq!(jsonl.lines().count(), 5);
        assert!(jsonl.lines().next().unwrap().contains("\"seq\":0"));
        assert_eq!(log.records().len(), 5);
    }

    #[test]
    fn global_helpers_respect_sampling_and_dump_renders() {
        let before = flight().emitted();
        record_global(TraceCtx::NONE, SpanKind::Note, 1, 0, 0, 0);
        record_global_end(TraceCtx::NONE, 1, 0, 0, None);
        assert_eq!(flight().emitted(), before, "unsampled must not emit");
        let c = ctx(42, 1, Phase::ClientOp, 0);
        record_global(c, SpanKind::Start, 1, 0, 0, 0);
        record_global_end(c, 5, 4, 0, Some(SlowCause::SecondPhase));
        assert!(flight().emitted() >= before + 2);
        assert!(dump_flight("test") >= 2);
        let snap = crate::global().snapshot();
        assert!(snap.counter(names::TRACE_DUMPS).unwrap_or(0) >= 1);
        assert!(
            snap.counter(&names::trace_dump_counter("test"))
                .unwrap_or(0)
                >= 1
        );
    }
}
