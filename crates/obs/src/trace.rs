//! Structured protocol events, recorder sinks and timed spans.
//!
//! Instrumented layers emit typed [`Event`]s into a pluggable
//! [`Recorder`]. Timestamps are **caller-supplied**: the simulator stamps
//! events with virtual ticks (so two runs of the same seed produce
//! identical streams), while the TCP transport stamps wall-clock
//! microseconds. The recorder never reads a clock itself — that is what
//! keeps the deterministic and real runtimes on one code path.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use safereg_common::history::ReadPath;
use safereg_common::msg::{ClientToServer, Message, OpId, PeerMessage, ServerToClient};

use crate::metrics::Histogram;

/// Fine-grained message classification: one label per wire message type,
/// used for per-type send/receive counters (`*.sent.<class>` and
/// friends). Coarser than matching on payload contents, finer than the
/// simulator's scheduling-oriented `MsgKind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgClass {
    /// `QUERY-TAG` (write phase one).
    QueryTag,
    /// `PUT-DATA` (write phase two).
    PutData,
    /// `QUERY-DATA` (BSR/BCSR one-shot read).
    QueryData,
    /// BSR-H delta-history query.
    QueryHistory,
    /// BSR-2P phase-one tag-list query.
    QueryTagList,
    /// BSR-2P phase-two value fetch.
    QueryValueAt,
    /// RB-baseline subscribing read.
    QueryDataSub,
    /// RB-baseline read completion notice.
    ReadComplete,
    /// Reply to `QUERY-TAG`.
    TagResp,
    /// `PUT-DATA` acknowledgement.
    PutAck,
    /// Reply to `QUERY-DATA`.
    DataResp,
    /// Reply to a history query.
    HistoryResp,
    /// Reply to a tag-list query.
    TagListResp,
    /// Reply to a value fetch.
    ValueAtResp,
    /// Epoch redirect: the frame's config stamp was stale.
    WrongEpoch,
    /// Bracha `ECHO` (RB baseline, server-to-server).
    RbEcho,
    /// Bracha `READY` (RB baseline, server-to-server).
    RbReady,
}

impl MsgClass {
    /// Every class, in declaration order — for consumers that pre-register
    /// per-class metric series so dumps keep one schema across runs.
    pub const ALL: [MsgClass; 17] = [
        MsgClass::QueryTag,
        MsgClass::PutData,
        MsgClass::QueryData,
        MsgClass::QueryHistory,
        MsgClass::QueryTagList,
        MsgClass::QueryValueAt,
        MsgClass::QueryDataSub,
        MsgClass::ReadComplete,
        MsgClass::TagResp,
        MsgClass::PutAck,
        MsgClass::DataResp,
        MsgClass::HistoryResp,
        MsgClass::TagListResp,
        MsgClass::ValueAtResp,
        MsgClass::WrongEpoch,
        MsgClass::RbEcho,
        MsgClass::RbReady,
    ];

    /// Classifies any wire message.
    pub fn of(msg: &Message) -> MsgClass {
        match msg {
            Message::ToServer(m) => match m {
                ClientToServer::QueryTag { .. } => MsgClass::QueryTag,
                ClientToServer::PutData { .. } => MsgClass::PutData,
                ClientToServer::QueryData { .. } => MsgClass::QueryData,
                ClientToServer::QueryHistory { .. } => MsgClass::QueryHistory,
                ClientToServer::QueryTagList { .. } => MsgClass::QueryTagList,
                ClientToServer::QueryValueAt { .. } => MsgClass::QueryValueAt,
                ClientToServer::QueryDataSub { .. } => MsgClass::QueryDataSub,
                ClientToServer::ReadComplete { .. } => MsgClass::ReadComplete,
            },
            Message::ToClient(m) => match m {
                ServerToClient::TagResp { .. } => MsgClass::TagResp,
                ServerToClient::PutAck { .. } => MsgClass::PutAck,
                ServerToClient::DataResp { .. } => MsgClass::DataResp,
                ServerToClient::HistoryResp { .. } => MsgClass::HistoryResp,
                ServerToClient::TagListResp { .. } => MsgClass::TagListResp,
                ServerToClient::ValueAtResp { .. } => MsgClass::ValueAtResp,
                ServerToClient::WrongEpoch { .. } => MsgClass::WrongEpoch,
            },
            Message::Peer(p) => match p {
                PeerMessage::RbEcho { .. } => MsgClass::RbEcho,
                PeerMessage::RbReady { .. } => MsgClass::RbReady,
            },
        }
    }

    /// Stable snake-case label used in metric names.
    pub fn as_str(&self) -> &'static str {
        match self {
            MsgClass::QueryTag => "query_tag",
            MsgClass::PutData => "put_data",
            MsgClass::QueryData => "query_data",
            MsgClass::QueryHistory => "query_history",
            MsgClass::QueryTagList => "query_tag_list",
            MsgClass::QueryValueAt => "query_value_at",
            MsgClass::QueryDataSub => "query_data_sub",
            MsgClass::ReadComplete => "read_complete",
            MsgClass::TagResp => "tag_resp",
            MsgClass::PutAck => "put_ack",
            MsgClass::DataResp => "data_resp",
            MsgClass::HistoryResp => "history_resp",
            MsgClass::TagListResp => "tag_list_resp",
            MsgClass::ValueAtResp => "value_at_resp",
            MsgClass::WrongEpoch => "wrong_epoch",
            MsgClass::RbEcho => "rb_echo",
            MsgClass::RbReady => "rb_ready",
        }
    }
}

impl std::fmt::Display for MsgClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What happened, without a timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A client operation was invoked.
    OpInvoked {
        /// The operation.
        op: OpId,
        /// `true` for writes.
        write: bool,
    },
    /// A client operation completed.
    OpCompleted {
        /// The operation.
        op: OpId,
        /// Round trips it used (Definition 3).
        rounds: u32,
        /// Fast/slow classification; `None` for writes.
        path: Option<ReadPath>,
        /// Witness/validation failures it observed.
        validation_failures: u32,
    },
    /// A message entered the network.
    MsgSent {
        /// Its wire class.
        class: MsgClass,
        /// Its encoded size.
        bytes: u64,
    },
    /// A message was delivered after being held past the run's horizon
    /// (or otherwise arrived too late to influence its operation).
    MsgLate {
        /// Its wire class.
        class: MsgClass,
    },
    /// A transport connection was established.
    ConnOpened,
    /// A transport connection was torn down.
    ConnClosed,
    /// A peer failed transport authentication.
    AuthFailed,
}

/// One recorded event: a caller-supplied timestamp plus what happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Virtual ticks (simulator) or wall-clock microseconds (TCP).
    pub at: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Microseconds since the Unix epoch — the timestamp domain the TCP
/// transport stamps events with (the simulator uses virtual ticks
/// instead, keeping its event streams replay-identical).
pub fn wall_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// A sink for [`Event`]s.
///
/// Implementations must be cheap and non-blocking — they run on protocol
/// hot paths. The simulator installs a [`RingRecorder`] per run; real
/// deployments may use [`NullRecorder`] and rely on metrics alone.
pub trait Recorder: Send + Sync {
    /// Accepts one event.
    fn record(&self, event: Event);
}

/// Discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: Event) {}
}

/// A bounded in-memory event buffer: keeps the most recent `capacity`
/// events and counts how many were evicted.
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    events: safereg_common::sync::Mutex<VecDeque<Event>>,
    evicted: AtomicU64,
}

impl RingRecorder {
    /// Creates a ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            capacity: capacity.max(1),
            events: safereg_common::sync::Mutex::new(VecDeque::new()),
            evicted: AtomicU64::new(0),
        }
    }

    /// A copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().iter().cloned().collect()
    }

    /// Removes and returns the buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.events.lock().drain(..).collect()
    }

    /// How many events were evicted to make room.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

impl Recorder for RingRecorder {
    fn record(&self, event: Event) {
        let mut events = self.events.lock();
        if events.len() == self.capacity {
            events.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }
}

/// A wall-clock timed scope: records elapsed microseconds into a histogram
/// when dropped. For virtual-time scopes the simulator computes durations
/// itself and calls [`Histogram::record`] directly.
#[derive(Debug)]
pub struct Span {
    hist: Arc<Histogram>,
    start: std::time::Instant,
}

impl Span {
    /// Starts timing into `hist`.
    pub fn start(hist: Arc<Histogram>) -> Self {
        Span {
            hist,
            start: std::time::Instant::now(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_micros() as u64);
    }
}

/// Times the enclosing scope into `registry`'s histogram `name`
/// (wall-clock microseconds): `let _guard = span!(reg, "frame.seal_us");`.
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:expr) => {
        $crate::trace::Span::start($registry.histogram($name))
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ClientId, ReaderId, WriterId};
    use safereg_common::msg::Payload;
    use safereg_common::tag::Tag;
    use safereg_common::value::Value;

    #[test]
    fn msg_class_covers_every_wire_shape() {
        let op = OpId::new(WriterId(0), 1);
        let cases: Vec<(Message, MsgClass, &str)> = vec![
            (
                ClientToServer::QueryTag { op }.into(),
                MsgClass::QueryTag,
                "query_tag",
            ),
            (
                ClientToServer::PutData {
                    op,
                    tag: Tag::ZERO,
                    payload: Payload::Full(Value::from("v")),
                }
                .into(),
                MsgClass::PutData,
                "put_data",
            ),
            (
                ClientToServer::QueryHistory {
                    op,
                    above: Tag::ZERO,
                }
                .into(),
                MsgClass::QueryHistory,
                "query_history",
            ),
            (
                ServerToClient::PutAck { op, tag: Tag::ZERO }.into(),
                MsgClass::PutAck,
                "put_ack",
            ),
            (
                PeerMessage::RbEcho {
                    bid: safereg_common::msg::BroadcastId {
                        origin: ClientId::Writer(WriterId(0)),
                        seq: 1,
                    },
                    tag: Tag::ZERO,
                    payload: Payload::Full(Value::from("v")),
                }
                .into(),
                MsgClass::RbEcho,
                "rb_echo",
            ),
        ];
        for (msg, class, label) in cases {
            assert_eq!(MsgClass::of(&msg), class);
            assert_eq!(class.as_str(), label);
        }
    }

    #[test]
    fn ring_recorder_keeps_most_recent() {
        let ring = RingRecorder::new(2);
        for i in 0..5u64 {
            ring.record(Event {
                at: i,
                kind: EventKind::ConnOpened,
            });
        }
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!((events[0].at, events[1].at), (3, 4));
        assert_eq!(ring.evicted(), 3);
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.events().is_empty());
    }

    #[test]
    fn ring_recorder_wraparound_property_under_random_shapes() {
        // Property loop: for random capacities and batch sizes, the ring
        // always keeps exactly the newest min(total, capacity) events in
        // order and accounts every eviction.
        let mut rng = safereg_common::rng::DetRng::seed_from(0x0B5E_7261_CE01);
        for _ in 0..50 {
            let capacity = 1 + (rng.next_u64() % 33) as usize;
            let total = rng.next_u64() % 400;
            let ring = RingRecorder::new(capacity);
            for at in 0..total {
                ring.record(Event {
                    at,
                    kind: EventKind::ConnOpened,
                });
            }
            let events = ring.events();
            let kept = total.min(capacity as u64);
            assert_eq!(events.len() as u64, kept, "cap {capacity} total {total}");
            assert_eq!(ring.evicted(), total - kept);
            for (i, e) in events.iter().enumerate() {
                assert_eq!(e.at, total - kept + i as u64, "oldest-first order");
            }
        }
    }

    #[test]
    fn ring_recorder_concurrent_emit_loses_nothing_it_should_keep() {
        // Hammer one ring from several threads; afterwards the buffered
        // count plus the evictions must equal the total emitted, and every
        // surviving event is intact (its `at` encodes emitter * 10_000 +
        // sequence, so torn or duplicated entries would show up).
        let threads = 4usize;
        let per_thread = 1_000u64;
        let ring = std::sync::Arc::new(RingRecorder::new(64));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        ring.record(Event {
                            at: t as u64 * 10_000 + i,
                            kind: EventKind::ConnOpened,
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let events = ring.events();
        assert_eq!(events.len(), 64, "full ring stays at capacity");
        assert_eq!(
            events.len() as u64 + ring.evicted(),
            threads as u64 * per_thread,
            "every emit is either buffered or counted as evicted"
        );
        for e in &events {
            let (t, i) = (e.at / 10_000, e.at % 10_000);
            assert!(t < threads as u64 && i < per_thread, "intact event {e:?}");
        }
        // Per-thread subsequences survive in emission order.
        for t in 0..threads as u64 {
            let seqs: Vec<u64> = events
                .iter()
                .filter(|e| e.at / 10_000 == t)
                .map(|e| e.at % 10_000)
                .collect();
            assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "thread {t} order: {seqs:?}"
            );
        }
    }

    #[test]
    fn span_records_into_histogram() {
        let reg = crate::metrics::Registry::new();
        {
            let _guard = span!(reg, "scope_us");
        }
        assert_eq!(reg.histogram("scope_us").count(), 1);
    }

    #[test]
    fn op_events_carry_the_read_path() {
        let e = Event {
            at: 10,
            kind: EventKind::OpCompleted {
                op: OpId::new(ReaderId(1), 1),
                rounds: 1,
                path: Some(ReadPath::Fast),
                validation_failures: 0,
            },
        };
        assert_eq!(e.clone(), e);
    }
}
