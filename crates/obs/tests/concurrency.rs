//! Sharded-counter and histogram behavior under real thread contention.

use std::sync::Arc;

use safereg_obs::metrics::Registry;

#[test]
fn counter_total_is_exact_under_contention() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 100_000;

    let reg = Arc::new(Registry::new());
    let counter = reg.counter("contended.counter");
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    counter.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
    assert_eq!(
        reg.snapshot().counter("contended.counter"),
        Some(THREADS as u64 * PER_THREAD)
    );
}

#[test]
fn histogram_count_is_exact_under_contention() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 50_000;

    let reg = Arc::new(Registry::new());
    let hist = reg.histogram("contended.hist");
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    hist.record(t * PER_THREAD + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    assert_eq!(snap.min, 0);
    assert_eq!(snap.max, THREADS * PER_THREAD - 1);
    let bucket_total: u64 = snap.buckets.iter().map(|(_, c)| c).sum();
    assert_eq!(bucket_total, snap.count, "no sample lost a bucket");
}

#[test]
fn registry_get_or_create_races_to_one_instrument() {
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                for _ in 0..1_000 {
                    reg.counter("raced").inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(reg.snapshot().counter("raced"), Some(8_000));
}
