//! Histogram correctness against a DetRng-driven reference sort.
//!
//! The bucket mapping `v → bucket_upper_bound(bucket_of(v))` is monotone
//! non-decreasing, so the histogram's nearest-rank percentile must equal
//! the representative of the *exact* percentile sample — not merely
//! approximate it. These tests pin that equality across random sample
//! sets spanning many orders of magnitude.

use safereg_common::rng::DetRng;
use safereg_obs::metrics::{bucket_of, bucket_upper_bound, Histogram};

/// Exact nearest-rank percentile over a sorted slice.
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let n = sorted.len();
    let idx = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
    sorted[idx - 1]
}

fn check_against_reference(samples: Vec<u64>) {
    let hist = Histogram::new();
    for &v in &samples {
        hist.record(v);
    }
    let mut sorted = samples;
    sorted.sort_unstable();
    let summary = hist.summary().unwrap();

    assert_eq!(summary.count, sorted.len());
    assert_eq!(summary.min, sorted[0], "min is exact");
    assert_eq!(summary.max, *sorted.last().unwrap(), "max is exact");
    let exact_mean = sorted.iter().map(|&v| v as f64).sum::<f64>() / sorted.len() as f64;
    assert!(
        (summary.mean - exact_mean).abs() < 1e-6 * exact_mean.max(1.0),
        "mean uses the exact sum"
    );

    for (p, got) in [
        (50.0, summary.p50),
        (90.0, summary.p90),
        (99.0, summary.p99),
        (99.9, summary.p999),
    ] {
        let want = bucket_upper_bound(bucket_of(exact_percentile(&sorted, p)));
        assert_eq!(
            got, want,
            "p{p}: histogram percentile must be the bucket representative \
             of the exact percentile"
        );
    }
}

#[test]
fn uniform_samples_match_reference() {
    let mut rng = DetRng::seed_from(0xB0B5);
    let samples: Vec<u64> = (0..10_000).map(|_| rng.range_u64(0..1 << 20)).collect();
    check_against_reference(samples);
}

#[test]
fn wide_magnitude_samples_match_reference() {
    // Latencies spanning ticks to "held past the horizon": each sample's
    // magnitude is itself random, exercising every octave group.
    let mut rng = DetRng::seed_from(0x5EED);
    let samples: Vec<u64> = (0..10_000)
        .map(|_| {
            let bits = rng.range_u64(1..41);
            rng.range_u64(0..1 << bits)
        })
        .collect();
    check_against_reference(samples);
}

#[test]
fn small_exact_samples_match_reference() {
    // Values 0..=15 have exact buckets, so every statistic is exact.
    let mut rng = DetRng::seed_from(7);
    let samples: Vec<u64> = (0..997).map(|_| rng.range_u64(0..16)).collect();
    let hist = Histogram::new();
    for &v in &samples {
        hist.record(v);
    }
    let mut sorted = samples;
    sorted.sort_unstable();
    let summary = hist.summary().unwrap();
    assert_eq!(summary.p50, exact_percentile(&sorted, 50.0));
    assert_eq!(summary.p99, exact_percentile(&sorted, 99.0));
    assert_eq!(summary.p999, exact_percentile(&sorted, 99.9));
}

#[test]
fn representative_mapping_is_monotone() {
    // Monotonicity is what makes the percentile equality above hold; check
    // it directly over random pairs.
    let mut rng = DetRng::seed_from(42);
    for _ in 0..50_000 {
        let a = rng.range_u64(0..u64::MAX);
        let b = rng.range_u64(0..u64::MAX);
        let (lo, hi) = (a.min(b), a.max(b));
        assert!(
            bucket_upper_bound(bucket_of(lo)) <= bucket_upper_bound(bucket_of(hi)),
            "mapping not monotone at ({lo}, {hi})"
        );
    }
}
