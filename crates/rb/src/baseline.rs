//! The RB-based baseline register (Kanjani et al. style, `n ≥ 3f + 1`).
//!
//! Writers run the same two-phase write as BSR (the `get-tag` phase and a
//! `PUT-DATA` fan-out), but servers **relay** the `put-data` through
//! [Bracha reliable broadcast](crate::bracha) before storing and
//! acknowledging. The RB's all-or-none property is what lets the register
//! get away with only `3f + 1` servers — and what costs every write the
//! extra `ECHO → READY` message delays the paper counts as the 1.5-round
//! blow-up (§I-B).
//!
//! Readers use the *relay/subscription* technique: a `QueryDataSub` returns
//! the server's full delivered history and registers the reader; every
//! later RB delivery is pushed to registered readers until the reader has
//! seen `n − f` servers respond and some `(tag, value)` pair carries
//! `f + 1` witnesses, at which point it returns the highest such pair and
//! unsubscribes. Termination relies on RB: a pair delivered anywhere
//! correct is eventually delivered (and pushed) everywhere correct —
//! exactly the crutch the paper's one-shot reads do without.

use std::collections::{BTreeMap, BTreeSet};

use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ClientId, ReaderId, ServerId, WriterId};
use safereg_common::msg::{
    BroadcastId, ClientToServer, Envelope, Message, OpId, Payload, ServerToClient,
};
use safereg_common::tag::Tag;
use safereg_common::value::Value;
use safereg_core::op::{ClientOp, OpOutput};
use safereg_core::write::WriteOp;

use crate::bracha::Bracha;

/// A baseline server: RB layer + delivered-value store + reader relay.
#[derive(Debug, Clone)]
pub struct BaselineServer {
    id: ServerId,
    rb: Bracha,
    /// Delivered `(tag, payload)` pairs (the server's history `L`).
    log: BTreeMap<Tag, Payload>,
    /// Writers awaiting an ack, keyed by broadcast instance.
    pending_acks: BTreeMap<BroadcastId, OpId>,
    /// Readers subscribed for relayed deliveries.
    subscribers: BTreeMap<ClientId, OpId>,
    /// Highest completed read sequence per client — guards against a
    /// reordered `QueryDataSub` arriving after its own `ReadComplete` and
    /// resurrecting a dead subscription.
    completed_reads: BTreeMap<ClientId, u64>,
}

impl BaselineServer {
    /// Creates a baseline server holding `(t_0, v_0)`.
    pub fn new(id: ServerId, cfg: QuorumConfig) -> Self {
        let mut log = BTreeMap::new();
        log.insert(Tag::ZERO, Payload::Full(Value::initial()));
        BaselineServer {
            id,
            rb: Bracha::new(id, cfg),
            log,
            pending_acks: BTreeMap::new(),
            subscribers: BTreeMap::new(),
            completed_reads: BTreeMap::new(),
        }
    }

    /// This server's identifier.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The highest delivered tag.
    pub fn max_tag(&self) -> Tag {
        *self.log.keys().next_back().expect("log holds (t0, v0)")
    }

    /// Number of delivered pairs.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Handles any message addressed to this server (client requests and
    /// peer RB traffic), returning envelopes to send.
    pub fn handle(&mut self, src: safereg_common::ids::NodeId, msg: &Message) -> Vec<Envelope> {
        match msg {
            Message::ToServer(m) => {
                let from = match src.as_client() {
                    Some(c) => c,
                    None => return Vec::new(), // servers do not send client requests
                };
                self.on_client(from, m)
            }
            Message::Peer(m) => {
                let from = match src.as_server() {
                    Some(s) => s,
                    None => return Vec::new(), // clients do not send peer traffic
                };
                let step = self.rb.on_peer(from, m);
                let mut out = step.outgoing;
                if let Some((bid, tag, payload)) = step.delivered {
                    out.extend(self.deliver(bid, tag, payload));
                }
                out
            }
            Message::ToClient(_) => Vec::new(),
        }
    }

    fn on_client(&mut self, from: ClientId, msg: &ClientToServer) -> Vec<Envelope> {
        match msg {
            // get-tag behaves exactly as in BSR.
            ClientToServer::QueryTag { op } => vec![Envelope::to_client(
                self.id,
                from,
                ServerToClient::TagResp {
                    op: *op,
                    tag: self.max_tag(),
                },
            )],
            // put-data is relayed through RB; the ack happens at delivery.
            ClientToServer::PutData { op, tag, payload } => {
                let bid = BroadcastId {
                    origin: op.client,
                    seq: op.seq,
                };
                self.pending_acks.insert(bid, *op);
                let step = self.rb.on_broadcast(bid, *tag, payload.clone());
                let mut out = step.outgoing;
                if let Some((b, t, p)) = step.delivered {
                    out.extend(self.deliver(b, t, p));
                }
                out
            }
            // Subscribe: full history now, pushes later.
            ClientToServer::QueryDataSub { op } => {
                if self.completed_reads.get(&from).copied().unwrap_or(0) < op.seq {
                    self.subscribers.insert(from, *op);
                }
                let entries: Vec<(Tag, Payload)> =
                    self.log.iter().map(|(t, p)| (*t, p.clone())).collect();
                vec![Envelope::to_client(
                    self.id,
                    from,
                    ServerToClient::HistoryResp { op: *op, entries },
                )]
            }
            ClientToServer::ReadComplete { op } => {
                let done = self.completed_reads.entry(from).or_insert(0);
                *done = (*done).max(op.seq);
                if self
                    .subscribers
                    .get(&from)
                    .is_some_and(|sub| sub.seq <= op.seq)
                {
                    self.subscribers.remove(&from);
                }
                Vec::new()
            }
            // Plain one-shot queries still work (used for comparison runs).
            ClientToServer::QueryData { op } => {
                let (tag, payload) = self.log.iter().next_back().expect("log non-empty");
                vec![Envelope::to_client(
                    self.id,
                    from,
                    ServerToClient::DataResp {
                        op: *op,
                        tag: *tag,
                        payload: payload.clone(),
                    },
                )]
            }
            _ => Vec::new(),
        }
    }

    /// An RB delivery: store, ack the writer, relay to subscribers.
    fn deliver(&mut self, bid: BroadcastId, tag: Tag, payload: Payload) -> Vec<Envelope> {
        self.log.entry(tag).or_insert_with(|| payload.clone());
        let mut out = Vec::new();
        if let Some(op) = self.pending_acks.remove(&bid) {
            out.push(Envelope::to_client(
                self.id,
                op.client,
                ServerToClient::PutAck { op, tag },
            ));
        } else if let ClientId::Writer(_) = bid.origin {
            // Delivery can precede the writer's own PUT-DATA at this
            // server (the relay outran it); ack the writer anyway so it
            // never waits on a message the RB already superseded.
            out.push(Envelope::to_client(
                self.id,
                bid.origin,
                ServerToClient::PutAck {
                    op: OpId {
                        client: bid.origin,
                        seq: bid.seq,
                    },
                    tag,
                },
            ));
        }
        for (reader, op) in &self.subscribers {
            out.push(Envelope::to_client(
                self.id,
                *reader,
                ServerToClient::DataResp {
                    op: *op,
                    tag,
                    payload: payload.clone(),
                },
            ));
        }
        out
    }
}

/// A baseline writer: the two-phase write of Fig. 1 against relay servers.
///
/// The operation type is [`WriteOp`] itself — only the servers differ.
#[derive(Debug, Clone)]
pub struct BaselineWriter {
    id: WriterId,
    cfg: QuorumConfig,
    seq: u64,
}

impl BaselineWriter {
    /// Creates a baseline writer.
    pub fn new(id: WriterId, cfg: QuorumConfig) -> Self {
        BaselineWriter { id, cfg, seq: 0 }
    }

    /// This writer's identifier.
    pub fn id(&self) -> WriterId {
        self.id
    }

    /// Mints the next write operation.
    pub fn write(&mut self, value: Value) -> WriteOp {
        self.seq += 1;
        WriteOp::replicated(self.id, self.seq, self.cfg, value)
    }
}

/// A baseline read operation: subscribe, accumulate witnesses, return the
/// highest pair with `f + 1` of them once `n − f` servers have responded.
#[derive(Debug)]
pub struct BaselineReadOp {
    reader: ReaderId,
    op: OpId,
    cfg: QuorumConfig,
    /// Pairs each server has vouched for (initial history + pushes).
    reports: BTreeMap<ServerId, BTreeSet<(Tag, Value)>>,
    result: Option<OpOutput>,
    rounds: u32,
}

impl BaselineReadOp {
    /// Creates a subscribing read.
    pub fn new(reader: ReaderId, seq: u64, cfg: QuorumConfig) -> Self {
        BaselineReadOp {
            reader,
            op: OpId::new(reader, seq),
            cfg,
            reports: BTreeMap::new(),
            result: None,
            rounds: 0,
        }
    }

    fn client(&self) -> ClientId {
        ClientId::Reader(self.reader)
    }

    fn try_conclude(&mut self) -> Vec<Envelope> {
        if self.reports.len() < self.cfg.response_quorum() {
            return Vec::new();
        }
        let mut witnesses: BTreeMap<&(Tag, Value), usize> = BTreeMap::new();
        for set in self.reports.values() {
            for pair in set {
                *witnesses.entry(pair).or_insert(0) += 1;
            }
        }
        let threshold = self.cfg.witness_threshold();
        let best = witnesses
            .iter()
            .rev()
            .find(|(_, c)| **c >= threshold)
            .map(|(pair, _)| (*pair).clone());
        match best {
            Some((tag, value)) => {
                self.result = Some(OpOutput::Read { value, tag });
                // Unsubscribe everywhere.
                self.cfg
                    .servers()
                    .map(|sid| {
                        Envelope::to_server(
                            self.client(),
                            sid,
                            ClientToServer::ReadComplete { op: self.op },
                        )
                    })
                    .collect()
            }
            // Not enough agreement yet: keep waiting for relayed pushes
            // (RB guarantees they come).
            None => Vec::new(),
        }
    }
}

impl ClientOp for BaselineReadOp {
    fn op_id(&self) -> OpId {
        self.op
    }

    fn start(&mut self) -> Vec<Envelope> {
        self.rounds = 1;
        self.cfg
            .servers()
            .map(|sid| {
                Envelope::to_server(
                    self.client(),
                    sid,
                    ClientToServer::QueryDataSub { op: self.op },
                )
            })
            .collect()
    }

    fn on_message(&mut self, from: ServerId, msg: &ServerToClient) -> Vec<Envelope> {
        if self.result.is_some() || msg.op() != self.op {
            return Vec::new();
        }
        match msg {
            ServerToClient::HistoryResp { entries, .. } => {
                let set = self.reports.entry(from).or_default();
                for (t, p) in entries {
                    if let Some(v) = p.as_full() {
                        set.insert((*t, v.clone()));
                    }
                }
                self.try_conclude()
            }
            ServerToClient::DataResp { tag, payload, .. } => {
                if let Some(v) = payload.as_full() {
                    self.reports
                        .entry(from)
                        .or_default()
                        .insert((*tag, v.clone()));
                }
                self.try_conclude()
            }
            _ => Vec::new(),
        }
    }

    fn output(&self) -> Option<OpOutput> {
        self.result.clone()
    }

    fn rounds(&self) -> u32 {
        self.rounds
    }

    fn is_write(&self) -> bool {
        false
    }
}

/// A baseline reader client minting subscribing reads.
#[derive(Debug, Clone)]
pub struct BaselineReader {
    id: ReaderId,
    cfg: QuorumConfig,
    seq: u64,
}

impl BaselineReader {
    /// Creates a baseline reader.
    pub fn new(id: ReaderId, cfg: QuorumConfig) -> Self {
        BaselineReader { id, cfg, seq: 0 }
    }

    /// This reader's identifier.
    pub fn id(&self) -> ReaderId {
        self.id
    }

    /// Mints the next read operation.
    pub fn read(&mut self) -> BaselineReadOp {
        self.seq += 1;
        BaselineReadOp::new(self.id, self.seq, self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::NodeId;

    fn cfg() -> QuorumConfig {
        QuorumConfig::minimal_rb(1).unwrap() // n = 4, f = 1
    }

    /// Synchronous mini-runtime: delivers every envelope immediately,
    /// optionally dropping all traffic from `silent` servers.
    fn run(
        servers: &mut BTreeMap<ServerId, BaselineServer>,
        op: &mut dyn ClientOp,
        silent: &[u16],
    ) {
        let mut queue = op.start();
        let mut guard = 0;
        while let Some(env) = queue.pop() {
            guard += 1;
            assert!(guard < 100_000, "runaway message loop");
            if let Some(s) = env.src.as_server() {
                if silent.contains(&s.0) {
                    continue;
                }
            }
            match env.dst {
                NodeId::Server(sid) => {
                    if silent.contains(&sid.0) {
                        continue; // silent server also ignores inputs
                    }
                    let out = servers.get_mut(&sid).unwrap().handle(env.src, &env.msg);
                    queue.extend(out);
                }
                NodeId::Client(_) => {
                    if let Message::ToClient(m) = &env.msg {
                        let sid = env.src.as_server().unwrap();
                        queue.extend(op.on_message(sid, m));
                    }
                }
            }
        }
    }

    fn cluster() -> BTreeMap<ServerId, BaselineServer> {
        cfg()
            .servers()
            .map(|s| (s, BaselineServer::new(s, cfg())))
            .collect()
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut servers = cluster();
        let mut w = BaselineWriter::new(WriterId(0), cfg());
        let mut wop = w.write(Value::from("rb-value"));
        run(&mut servers, &mut wop, &[]);
        let tag = match wop.output().expect("write completes") {
            OpOutput::Written { tag } => tag,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(tag, Tag::new(1, WriterId(0)));
        // RB delivered everywhere.
        for s in servers.values() {
            assert_eq!(s.max_tag(), tag);
        }

        let mut r = BaselineReader::new(ReaderId(0), cfg());
        let mut rop = r.read();
        run(&mut servers, &mut rop, &[]);
        let out = rop.output().expect("read completes");
        assert_eq!(out.read_value().unwrap().as_bytes(), b"rb-value");
    }

    #[test]
    fn tolerates_f_silent_servers_at_3f_plus_1() {
        let mut servers = cluster();
        let mut w = BaselineWriter::new(WriterId(0), cfg());
        let mut wop = w.write(Value::from("v"));
        run(&mut servers, &mut wop, &[3]);
        assert!(wop.output().is_some(), "write lives with n - f = 3 servers");

        let mut r = BaselineReader::new(ReaderId(0), cfg());
        let mut rop = r.read();
        run(&mut servers, &mut rop, &[3]);
        let out = rop.output().expect("read lives");
        assert_eq!(out.read_value().unwrap().as_bytes(), b"v");
    }

    #[test]
    fn relay_completes_reads_that_start_mid_write() {
        // The reader subscribes before the write reaches every server; the
        // relay pushes the delivery to the subscribed reader.
        let mut servers = cluster();
        let mut r = BaselineReader::new(ReaderId(0), cfg());
        let mut rop = r.read();
        // Subscribe only (servers all at t0, so the read completes with v0
        // immediately — 4 histories all vouch t0).
        run(&mut servers, &mut rop, &[]);
        let out = rop.output().unwrap();
        assert!(out.read_value().unwrap().is_initial());

        // Now a second read subscribes, then a write lands; the read's
        // witnesses update via pushes.
        let mut rop2 = r.read();
        let mut queue = rop2.start();
        // Deliver the subscriptions first (reader now registered).
        while let Some(env) = queue.pop() {
            if let NodeId::Server(sid) = env.dst {
                let out = servers.get_mut(&sid).unwrap().handle(env.src, &env.msg);
                // Hold the server→client responses: simulate slow replies.
                for e in out {
                    if let Message::ToClient(m) = &e.msg {
                        rop2.on_message(e.src.as_server().unwrap(), m);
                    }
                }
            }
        }
        // rop2 returned v0 already (all four said t0). That's fine: it was
        // not concurrent with any write. Run a write and a third read to
        // see a pushed value win.
        let mut w = BaselineWriter::new(WriterId(0), cfg());
        let mut wop = w.write(Value::from("pushed"));
        run(&mut servers, &mut wop, &[]);
        let mut rop3 = r.read();
        run(&mut servers, &mut rop3, &[]);
        assert_eq!(
            rop3.output().unwrap().read_value().unwrap().as_bytes(),
            b"pushed"
        );
    }

    #[test]
    fn unsubscribe_stops_pushes() {
        let mut servers = cluster();
        let mut r = BaselineReader::new(ReaderId(0), cfg());
        let mut rop = r.read();
        run(&mut servers, &mut rop, &[]);
        assert!(rop.output().is_some());
        // After ReadComplete the servers dropped the subscription.
        let mut w = BaselineWriter::new(WriterId(0), cfg());
        let mut wop = w.write(Value::from("later"));
        let mut queue = wop.start();
        let mut pushed_to_reader = 0;
        while let Some(env) = queue.pop() {
            match env.dst {
                NodeId::Server(sid) => {
                    queue.extend(servers.get_mut(&sid).unwrap().handle(env.src, &env.msg));
                }
                NodeId::Client(ClientId::Reader(_)) => pushed_to_reader += 1,
                NodeId::Client(ClientId::Writer(_)) => {
                    if let Message::ToClient(m) = &env.msg {
                        queue.extend(wop.on_message(env.src.as_server().unwrap(), m));
                    }
                }
            }
        }
        assert_eq!(pushed_to_reader, 0, "no subscriber, no pushes");
    }

    #[test]
    fn get_tag_tracks_delivered_maximum() {
        let mut servers = cluster();
        let mut w = BaselineWriter::new(WriterId(0), cfg());
        let mut wop = w.write(Value::from("a"));
        run(&mut servers, &mut wop, &[]);
        let mut wop2 = w.write(Value::from("b"));
        run(&mut servers, &mut wop2, &[]);
        assert_eq!(
            wop2.output().unwrap().tag(),
            Tag::new(2, WriterId(0)),
            "second write sees the first's tag via get-tag"
        );
    }
}
