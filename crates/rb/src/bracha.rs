//! Bracha reliable broadcast among servers.
//!
//! Classic asynchronous reliable broadcast (Bracha 1987) adapted to the
//! register setting: the "send" step is the writer's `PUT-DATA` arriving at
//! a server, after which servers exchange `ECHO` and `READY` messages. For
//! `n ≥ 3f + 1` it guarantees, for each broadcast instance:
//!
//! * **Validity** — if the (correct) writer's payload reaches the servers,
//!   every correct server eventually delivers it.
//! * **Agreement / all-or-none** — if any correct server delivers `(t, v)`,
//!   every correct server eventually delivers `(t, v)` and no correct
//!   server delivers anything else.
//!
//! Thresholds: echo-quorum `⌈(n+f+1)/2⌉` (two echo quorums intersect in a
//! correct server), ready amplification at `f + 1`, delivery at `2f + 1`.
//!
//! This is exactly the primitive whose 1.5-round cost the paper's protocols
//! avoid (§I-B): counting one-way hops, `PUT-DATA → ECHO → READY` is three
//! hops before delivery where BSR needs one.

use std::collections::{BTreeMap, BTreeSet};

use safereg_common::config::QuorumConfig;
use safereg_common::ids::ServerId;
use safereg_common::msg::{BroadcastId, Envelope, Payload, PeerMessage};
use safereg_common::tag::Tag;

/// One payload under broadcast, as keyed by the vote sets.
type Item = (Tag, Payload);

/// Per-instance vote state.
#[derive(Debug, Clone, Default)]
struct Instance {
    /// Whether this server has sent its `ECHO` (at most one per instance).
    echoed: bool,
    /// Whether this server has sent its `READY` (at most one per instance).
    ready_sent: bool,
    /// Echo votes per item.
    echoes: BTreeMap<Item, BTreeSet<ServerId>>,
    /// Ready votes per item.
    readies: BTreeMap<Item, BTreeSet<ServerId>>,
    /// Set once the instance delivered (delivery is final).
    delivered: Option<Item>,
}

/// What one protocol step produced: messages to send to peers, and possibly
/// a delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RbStep {
    /// Peer messages to send (already enveloped).
    pub outgoing: Vec<Envelope>,
    /// The delivered `(tag, payload)`, the first time the instance delivers.
    pub delivered: Option<(BroadcastId, Tag, Payload)>,
}

impl RbStep {
    fn quiet() -> Self {
        RbStep {
            outgoing: Vec::new(),
            delivered: None,
        }
    }
}

/// The Bracha reliable-broadcast layer of one server.
///
/// # Examples
///
/// ```
/// use safereg_common::{config::QuorumConfig, ids::{ServerId, WriterId, ClientId},
///                      msg::{BroadcastId, Payload}, tag::Tag, value::Value};
/// use safereg_rb::bracha::Bracha;
///
/// let cfg = QuorumConfig::minimal_rb(1)?; // n = 4, f = 1
/// let mut rb = Bracha::new(ServerId(0), cfg);
/// let bid = BroadcastId { origin: ClientId::Writer(WriterId(0)), seq: 1 };
/// let step = rb.on_broadcast(bid, Tag::new(1, WriterId(0)), Payload::Full(Value::from("v")));
/// assert_eq!(step.outgoing.len(), 4, "ECHO to every server (including self-loop)");
/// # Ok::<(), safereg_common::config::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Bracha {
    me: ServerId,
    cfg: QuorumConfig,
    instances: BTreeMap<BroadcastId, Instance>,
}

impl Bracha {
    /// Creates the RB layer for server `me`.
    pub fn new(me: ServerId, cfg: QuorumConfig) -> Self {
        Bracha {
            me,
            cfg,
            instances: BTreeMap::new(),
        }
    }

    /// Handles the writer's payload arriving at this server (the broadcast
    /// "send" step): echo it to all servers, once.
    pub fn on_broadcast(&mut self, bid: BroadcastId, tag: Tag, payload: Payload) -> RbStep {
        let inst = self.instances.entry(bid).or_default();
        if inst.echoed || inst.delivered.is_some() {
            return RbStep::quiet();
        }
        inst.echoed = true;
        RbStep {
            outgoing: self.to_all_servers(PeerMessage::RbEcho { bid, tag, payload }),
            delivered: None,
        }
    }

    /// Handles an `ECHO`/`READY` from a peer server.
    pub fn on_peer(&mut self, from: ServerId, msg: &PeerMessage) -> RbStep {
        match msg {
            PeerMessage::RbEcho { bid, tag, payload } => {
                self.record_echo(*bid, from, (*tag, payload.clone()))
            }
            PeerMessage::RbReady { bid, tag, payload } => {
                self.record_ready(*bid, from, (*tag, payload.clone()))
            }
        }
    }

    fn record_echo(&mut self, bid: BroadcastId, from: ServerId, item: Item) -> RbStep {
        let echo_quorum = self.cfg.rb_echo_threshold();
        let inst = self.instances.entry(bid).or_default();
        if inst.delivered.is_some() {
            return RbStep::quiet();
        }
        inst.echoes.entry(item.clone()).or_default().insert(from);
        let send_ready = !inst.ready_sent && inst.echoes[&item].len() >= echo_quorum;
        if send_ready {
            inst.ready_sent = true;
            let (tag, payload) = item;
            return RbStep {
                outgoing: self.to_all_servers(PeerMessage::RbReady { bid, tag, payload }),
                delivered: None,
            };
        }
        RbStep::quiet()
    }

    fn record_ready(&mut self, bid: BroadcastId, from: ServerId, item: Item) -> RbStep {
        let amplify = self.cfg.rb_ready_amplify();
        let deliver_at = self.cfg.rb_deliver_threshold();
        let inst = self.instances.entry(bid).or_default();
        if inst.delivered.is_some() {
            return RbStep::quiet();
        }
        inst.readies.entry(item.clone()).or_default().insert(from);
        let count = inst.readies[&item].len();

        let mut outgoing = Vec::new();
        if !inst.ready_sent && count >= amplify {
            // Ready amplification: f + 1 READYs imply a correct server is
            // ready, so it is safe to join without having echoed.
            inst.ready_sent = true;
            let (tag, payload) = item.clone();
            outgoing = self.to_all_servers(PeerMessage::RbReady { bid, tag, payload });
        }
        let mut delivered = None;
        // Re-borrow (to_all_servers used &self).
        let inst = self.instances.get_mut(&bid).expect("instance exists");
        if inst.readies[&item].len() >= deliver_at {
            inst.delivered = Some(item.clone());
            let (tag, payload) = item;
            delivered = Some((bid, tag, payload));
        }
        RbStep {
            outgoing,
            delivered,
        }
    }

    fn to_all_servers(&self, msg: PeerMessage) -> Vec<Envelope> {
        self.cfg
            .servers()
            .map(|sid| Envelope::new(self.me, sid, msg.clone()))
            .collect()
    }

    /// Whether the given instance has delivered at this server.
    pub fn delivered(&self, bid: &BroadcastId) -> Option<&(Tag, Payload)> {
        self.instances.get(bid).and_then(|i| i.delivered.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ClientId, WriterId};
    use safereg_common::msg::Message;
    use safereg_common::value::Value;

    fn cfg() -> QuorumConfig {
        QuorumConfig::minimal_rb(1).unwrap() // n = 4, f = 1
    }

    fn bid() -> BroadcastId {
        BroadcastId {
            origin: ClientId::Writer(WriterId(0)),
            seq: 1,
        }
    }

    fn item() -> (Tag, Payload) {
        (Tag::new(1, WriterId(0)), Payload::Full(Value::from("v")))
    }

    /// Runs a full cluster of Bracha layers to completion, delivering all
    /// peer messages, returning who delivered what.
    fn run_cluster(initial_receivers: &[u16], faulty_silent: &[u16]) -> BTreeMap<ServerId, Item> {
        let cfg = cfg();
        let mut layers: BTreeMap<ServerId, Bracha> =
            cfg.servers().map(|s| (s, Bracha::new(s, cfg))).collect();
        let (tag, payload) = item();
        let mut queue: Vec<Envelope> = Vec::new();
        for r in initial_receivers {
            let step =
                layers
                    .get_mut(&ServerId(*r))
                    .unwrap()
                    .on_broadcast(bid(), tag, payload.clone());
            queue.extend(step.outgoing);
        }
        let mut delivered = BTreeMap::new();
        while let Some(env) = queue.pop() {
            let src = env.src.as_server().unwrap();
            if faulty_silent.contains(&src.0) {
                continue; // silent Byzantine server: its messages are lost
            }
            let dst = env.dst.as_server().unwrap();
            let msg = match &env.msg {
                Message::Peer(m) => m.clone(),
                other => panic!("unexpected {other:?}"),
            };
            let step = layers.get_mut(&dst).unwrap().on_peer(src, &msg);
            queue.extend(step.outgoing);
            if let Some((b, t, p)) = step.delivered {
                assert_eq!(b, bid());
                delivered.insert(dst, (t, p));
            }
        }
        delivered
    }

    #[test]
    fn all_correct_servers_deliver_when_all_receive() {
        let delivered = run_cluster(&[0, 1, 2, 3], &[]);
        assert_eq!(delivered.len(), 4);
        assert!(delivered.values().all(|i| *i == item()));
    }

    #[test]
    fn delivery_survives_one_silent_server() {
        // Server 3 is Byzantine-silent: never echoes or readies.
        let delivered = run_cluster(&[0, 1, 2, 3], &[3]);
        let correct: Vec<_> = delivered.keys().filter(|s| s.0 != 3).collect();
        assert_eq!(correct.len(), 3, "all correct servers deliver");
    }

    #[test]
    fn all_or_none_when_sender_reaches_only_some() {
        // The writer's PUT-DATA reaches only 3 of 4 servers (it crashed);
        // RB still spreads the value to everyone correct.
        let delivered = run_cluster(&[0, 1, 2], &[]);
        assert_eq!(delivered.len(), 4, "the 4th server delivers via echo/ready");
    }

    #[test]
    fn too_few_initial_receivers_deliver_nothing() {
        // Echo quorum is ⌈(4+1+1)/2⌉ = 3; with only 2 echoes nothing
        // proceeds — none deliver (the "none" side of all-or-none).
        let delivered = run_cluster(&[0, 1], &[]);
        assert!(delivered.is_empty());
    }

    #[test]
    fn duplicate_broadcast_and_votes_are_idempotent() {
        let cfgv = cfg();
        let mut rb = Bracha::new(ServerId(0), cfgv);
        let (tag, payload) = item();
        let first = rb.on_broadcast(bid(), tag, payload.clone());
        assert_eq!(first.outgoing.len(), 4);
        let second = rb.on_broadcast(bid(), tag, payload.clone());
        assert!(second.outgoing.is_empty(), "echo sent at most once");

        // The same READY from the same peer counts once.
        let ready = PeerMessage::RbReady {
            bid: bid(),
            tag,
            payload: payload.clone(),
        };
        rb.on_peer(ServerId(1), &ready);
        rb.on_peer(ServerId(1), &ready);
        assert!(
            rb.delivered(&bid()).is_none(),
            "one distinct READY cannot deliver"
        );
    }

    #[test]
    fn ready_amplification_at_f_plus_one() {
        let cfgv = cfg();
        let mut rb = Bracha::new(ServerId(0), cfgv);
        let (tag, payload) = item();
        let ready1 = rb.on_peer(
            ServerId(1),
            &PeerMessage::RbReady {
                bid: bid(),
                tag,
                payload: payload.clone(),
            },
        );
        assert!(
            ready1.outgoing.is_empty(),
            "one READY (≤ f) does not amplify"
        );
        let ready2 = rb.on_peer(
            ServerId(2),
            &PeerMessage::RbReady {
                bid: bid(),
                tag,
                payload: payload.clone(),
            },
        );
        assert_eq!(ready2.outgoing.len(), 4, "f + 1 READYs amplify");
    }

    #[test]
    fn equivocating_echoes_cannot_reach_two_quorums() {
        // n = 4, f = 1: echo quorum is 3. A Byzantine writer sends item A to
        // two servers and item B to the other two; neither reaches 3 echoes,
        // so no correct server delivers anything (agreement preserved).
        let cfgv = cfg();
        let mut layers: BTreeMap<ServerId, Bracha> =
            cfgv.servers().map(|s| (s, Bracha::new(s, cfgv))).collect();
        let item_a = (Tag::new(1, WriterId(0)), Payload::Full(Value::from("A")));
        let item_b = (Tag::new(1, WriterId(0)), Payload::Full(Value::from("B")));
        let mut queue = Vec::new();
        for s in [0u16, 1] {
            let step = layers.get_mut(&ServerId(s)).unwrap().on_broadcast(
                bid(),
                item_a.0,
                item_a.1.clone(),
            );
            queue.extend(step.outgoing);
        }
        for s in [2u16, 3] {
            let step = layers.get_mut(&ServerId(s)).unwrap().on_broadcast(
                bid(),
                item_b.0,
                item_b.1.clone(),
            );
            queue.extend(step.outgoing);
        }
        let mut delivered = 0;
        while let Some(env) = queue.pop() {
            let src = env.src.as_server().unwrap();
            let dst = env.dst.as_server().unwrap();
            if let Message::Peer(m) = &env.msg {
                let step = layers.get_mut(&dst).unwrap().on_peer(src, m);
                queue.extend(step.outgoing);
                delivered += usize::from(step.delivered.is_some());
            }
        }
        assert_eq!(delivered, 0, "split echoes never deliver");
    }
}
