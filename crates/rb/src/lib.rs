//! The reliable-broadcast baseline the paper compares against.
//!
//! §I-B and §VI: prior Byzantine register emulations (e.g. Kanjani et al.
//! \[15\]) assume a *reliable broadcast* (RB) primitive with the "eventual
//! all-or-none" property and need only `n ≥ 3f + 1` servers — but every RB
//! costs 1.5 rounds of extra delay, which is exactly the overhead the
//! paper's protocols remove. To measure that trade-off, this crate
//! implements:
//!
//! * [`bracha`] — Bracha's reliable broadcast (echo/ready with `⌈(n+f+1)/2⌉`
//!   and `f+1`/`2f+1` thresholds) run among the servers,
//! * [`baseline`] — a regular register in the style of \[15\]: writers use
//!   the same two-phase write as BSR but servers *relay* the `put-data`
//!   through RB before storing and acknowledging, and readers subscribe so
//!   servers push every delivered write until the read has `f + 1`
//!   witnesses for some pair (the *relay* technique).
//!
//! The baseline tolerates `n ≥ 3f + 1` — fewer servers than BSR's
//! `4f + 1` — at the price of server-to-server communication and RB's
//! extra message delays (experiments E1–E3).

pub mod baseline;
pub mod bracha;

pub use baseline::{BaselineReadOp, BaselineReader, BaselineServer, BaselineWriter};
pub use bracha::{Bracha, RbStep};
