//! Property-based tests for Bracha reliable broadcast: agreement and
//! totality under random delivery orders, random initial receiver sets and
//! a silent Byzantine server.
//!
//! The always-on suite enumerates every `(receiver set, silent server)`
//! combination — the discrete space is only 16 × 5 points — under
//! [`DetRng`]-chosen delivery orders; the original sampled proptest suite
//! sits behind the off-by-default `proptests` feature.

use std::collections::BTreeMap;

use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ClientId, ServerId, WriterId};
use safereg_common::msg::{BroadcastId, Envelope, Message, Payload};
use safereg_common::rng::DetRng;
use safereg_common::tag::Tag;
use safereg_common::value::Value;
use safereg_rb::bracha::Bracha;

/// Runs a full RB exchange with randomized delivery order.
/// Returns which servers delivered what.
fn run_randomized(
    cfg: QuorumConfig,
    initial_receivers: &[u16],
    silent: Option<u16>,
    order_seed: u64,
) -> BTreeMap<ServerId, (Tag, Payload)> {
    let mut rng = DetRng::seed_from(order_seed);
    let mut layers: BTreeMap<ServerId, Bracha> =
        cfg.servers().map(|s| (s, Bracha::new(s, cfg))).collect();
    let bid = BroadcastId {
        origin: ClientId::Writer(WriterId(0)),
        seq: 1,
    };
    let item = (
        Tag::new(1, WriterId(0)),
        Payload::Full(Value::from("rb payload")),
    );

    let mut queue: Vec<Envelope> = Vec::new();
    let mut delivered = BTreeMap::new();
    for r in initial_receivers {
        if Some(*r) == silent {
            continue; // a silent server swallows its broadcast receipt too
        }
        let step = layers
            .get_mut(&ServerId(*r))
            .unwrap()
            .on_broadcast(bid, item.0, item.1.clone());
        queue.extend(step.outgoing);
    }
    let mut guard = 0;
    while !queue.is_empty() {
        guard += 1;
        assert!(guard < 100_000, "runaway broadcast");
        let idx = rng.index(queue.len());
        let env = queue.swap_remove(idx);
        let src = env.src.as_server().unwrap();
        if Some(src.0) == silent {
            continue; // messages from the silent server are never sent
        }
        let dst = env.dst.as_server().unwrap();
        if Some(dst.0) == silent {
            continue; // and it ignores its inputs
        }
        if let Message::Peer(m) = &env.msg {
            let step = layers.get_mut(&dst).unwrap().on_peer(src, m);
            queue.extend(step.outgoing);
            if let Some((b, t, p)) = step.delivered {
                assert_eq!(b, bid);
                delivered.insert(dst, (t, p));
            }
        }
    }
    delivered
}

#[test]
fn agreement_and_totality_hold_under_any_order() {
    let mut rng = DetRng::seed_from(0xB2_AC4A);
    // Exhaust the discrete adversary choices; randomize only the order.
    for receiver_mask in 0u8..16 {
        for silent_pick in [None, Some(0u16), Some(1), Some(2), Some(3)] {
            for _ in 0..3 {
                let order = rng.next_u64();
                let cfg = QuorumConfig::minimal_rb(1).unwrap(); // n = 4, f = 1
                let receivers: Vec<u16> = (0..4u16)
                    .filter(|i| receiver_mask & (1 << i) != 0)
                    .collect();
                let delivered = run_randomized(cfg, &receivers, silent_pick, order);

                // Agreement: every deliverer delivered the same item.
                let mut items: Vec<&(Tag, Payload)> = delivered.values().collect();
                items.dedup();
                assert!(items.len() <= 1, "two different items delivered");

                // Totality (all-or-none): if any *correct* server delivered,
                // every correct server delivered.
                let correct: Vec<ServerId> =
                    cfg.servers().filter(|s| Some(s.0) != silent_pick).collect();
                let correct_deliverers =
                    correct.iter().filter(|s| delivered.contains_key(s)).count();
                assert!(
                    correct_deliverers == 0 || correct_deliverers == correct.len(),
                    "partial delivery: {}/{} correct servers",
                    correct_deliverers,
                    correct.len()
                );

                // Validity: if the writer's payload reached every correct
                // server and nobody is silent, everyone delivers.
                if silent_pick.is_none() && receivers.len() == 4 {
                    assert_eq!(delivered.len(), 4);
                }
            }
        }
    }
}

/// Original proptest suite; requires re-adding `proptest` as a
/// dev-dependency (see the `proptests` feature note in Cargo.toml).
#[cfg(feature = "proptests")]
mod proptest_suite {
    use proptest::prelude::*;
    use safereg_common::config::QuorumConfig;
    use safereg_common::ids::ServerId;
    use safereg_common::msg::Payload;
    use safereg_common::tag::Tag;

    use super::run_randomized;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        #[test]
        fn agreement_and_totality_hold_under_any_order(
            order in any::<u64>(),
            receiver_mask in 0u8..16,
            silent_pick in proptest::option::of(0u16..4),
        ) {
            let cfg = QuorumConfig::minimal_rb(1).unwrap(); // n = 4, f = 1
            let receivers: Vec<u16> =
                (0..4u16).filter(|i| receiver_mask & (1 << i) != 0).collect();
            let delivered = run_randomized(cfg, &receivers, silent_pick, order);

            let mut items: Vec<&(Tag, Payload)> = delivered.values().collect();
            items.dedup();
            prop_assert!(items.len() <= 1, "two different items delivered");

            let correct: Vec<ServerId> = cfg
                .servers()
                .filter(|s| Some(s.0) != silent_pick)
                .collect();
            let correct_deliverers =
                correct.iter().filter(|s| delivered.contains_key(s)).count();
            prop_assert!(
                correct_deliverers == 0 || correct_deliverers == correct.len(),
                "partial delivery: {}/{} correct servers",
                correct_deliverers,
                correct.len()
            );

            if silent_pick.is_none() && receivers.len() == 4 {
                prop_assert_eq!(delivered.len(), 4);
            }
        }
    }
}
