//! Server behaviors under simulation.
//!
//! The [`ServerBehavior`] trait and the protocol-level bestiary (correct,
//! silent, stale, fabricating, equivocating, …) live in
//! [`safereg_core::behavior`] so the live TCP hosts can run the same
//! adversaries; this module re-exports them under their historical simnet
//! paths and adds [`CorrectBaseline`], the RB-baseline wrapper that only
//! the simulator needs (it pulls in `safereg-rb`, which core does not
//! depend on).
//!
//! `SimTime` is a plain `u64`, so the simulator's virtual clock satisfies
//! the trait's opaque monotone `now` directly.

pub use safereg_core::behavior::{
    AckForger, ByzRole, Correct, CrashAt, DownBetween, Equivocator, Fabricator, FixedResponder,
    ServerBehavior, Silent, StaleReplier,
};

use safereg_common::msg::Envelope;
use safereg_common::rng::DetRng;
use safereg_rb::baseline::BaselineServer;

use crate::event::SimTime;

/// A correct RB-baseline server (relay + Bracha).
#[derive(Debug)]
pub struct CorrectBaseline {
    server: BaselineServer,
}

impl CorrectBaseline {
    /// Wraps a baseline server.
    pub fn new(server: BaselineServer) -> Self {
        CorrectBaseline { server }
    }
}

impl ServerBehavior for CorrectBaseline {
    fn id(&self) -> safereg_common::ids::ServerId {
        self.server.id()
    }

    fn on_envelope(&mut self, _now: SimTime, env: &Envelope, _rng: &mut DetRng) -> Vec<Envelope> {
        self.server.handle(env.src, &env.msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::config::QuorumConfig;
    use safereg_common::ids::{ClientId, ReaderId, ServerId, WriterId};
    use safereg_common::msg::{ClientToServer, Message, OpId, Payload, ServerToClient};
    use safereg_common::tag::Tag;
    use safereg_common::value::Value;
    use safereg_core::server::ServerNode;

    fn cfg() -> QuorumConfig {
        QuorumConfig::minimal_bsr(1).unwrap()
    }

    fn put_env(s: u16, num: u64, val: &str) -> Envelope {
        Envelope::to_server(
            ClientId::Writer(WriterId(1)),
            ServerId(s),
            ClientToServer::PutData {
                op: OpId::new(WriterId(1), num),
                tag: Tag::new(num, WriterId(1)),
                payload: Payload::Full(Value::from(val)),
            },
        )
    }

    fn query_env(s: u16) -> Envelope {
        Envelope::to_server(
            ClientId::Reader(ReaderId(0)),
            ServerId(s),
            ClientToServer::QueryData {
                op: OpId::new(ReaderId(0), 1),
            },
        )
    }

    fn data_resp_of(out: &[Envelope]) -> (Tag, Value) {
        match &out[0].msg {
            Message::ToClient(ServerToClient::DataResp { tag, payload, .. }) => {
                (*tag, payload.as_full().unwrap().clone())
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn correct_behavior_relays_node_responses() {
        let mut rng = DetRng::seed_from(0);
        let mut b = Correct::new(ServerNode::new_replicated(ServerId(0), cfg()));
        assert_eq!(b.on_envelope(0, &put_env(0, 1, "x"), &mut rng).len(), 1);
        let (tag, v) = data_resp_of(&b.on_envelope(1, &query_env(0), &mut rng));
        assert_eq!(tag, Tag::new(1, WriterId(1)));
        assert_eq!(v.as_bytes(), b"x");
    }

    #[test]
    fn silent_says_nothing() {
        let mut rng = DetRng::seed_from(0);
        let mut b = Silent::new(ServerId(2));
        assert!(b.on_envelope(0, &put_env(2, 1, "x"), &mut rng).is_empty());
        assert!(b.on_envelope(0, &query_env(2), &mut rng).is_empty());
        assert_eq!(b.id(), ServerId(2));
    }

    #[test]
    fn crash_at_stops_responding_at_the_deadline() {
        let mut rng = DetRng::seed_from(0);
        let inner = Box::new(Correct::new(ServerNode::new_replicated(ServerId(0), cfg())));
        let mut b = CrashAt::new(inner, 100);
        assert_eq!(b.on_envelope(99, &query_env(0), &mut rng).len(), 1);
        assert!(b.on_envelope(100, &query_env(0), &mut rng).is_empty());
    }

    #[test]
    fn stale_replier_serves_old_entries() {
        let mut rng = DetRng::seed_from(0);
        let mut b = StaleReplier::new(ServerNode::new_replicated(ServerId(0), cfg()), 1);
        b.on_envelope(0, &put_env(0, 1, "v1"), &mut rng);
        b.on_envelope(1, &put_env(0, 2, "v2"), &mut rng);
        let (tag, v) = data_resp_of(&b.on_envelope(2, &query_env(0), &mut rng));
        assert_eq!(tag, Tag::new(1, WriterId(1)), "lags one entry behind");
        assert_eq!(v.as_bytes(), b"v1");
    }

    #[test]
    fn fabricator_forges_but_acks() {
        let mut rng = DetRng::seed_from(0);
        let mut b = Fabricator::new(ServerId(1), 42);
        let acks = b.on_envelope(0, &put_env(1, 1, "real"), &mut rng);
        assert!(matches!(
            &acks[0].msg,
            Message::ToClient(ServerToClient::PutAck { .. })
        ));
        let (tag, v) = data_resp_of(&b.on_envelope(1, &query_env(1), &mut rng));
        assert!(tag.num >= 1_000_000, "forged tag");
        assert_ne!(v.as_bytes(), b"real");
    }

    #[test]
    fn equivocator_tells_each_reader_a_different_story() {
        let mut rng = DetRng::seed_from(0);
        let mut b = Equivocator::new(ServerNode::new_replicated(ServerId(0), cfg()));
        let q0 = Envelope::to_server(
            ClientId::Reader(ReaderId(0)),
            ServerId(0),
            ClientToServer::QueryData {
                op: OpId::new(ReaderId(0), 1),
            },
        );
        let q1 = Envelope::to_server(
            ClientId::Reader(ReaderId(1)),
            ServerId(0),
            ClientToServer::QueryData {
                op: OpId::new(ReaderId(1), 1),
            },
        );
        let (_, v0) = data_resp_of(&b.on_envelope(0, &q0, &mut rng));
        let (_, v1) = data_resp_of(&b.on_envelope(0, &q1, &mut rng));
        assert_ne!(v0, v1);
    }

    #[test]
    fn ack_forger_acks_but_never_stores() {
        let mut rng = DetRng::seed_from(0);
        let mut b = AckForger::new(ServerId(0), cfg());
        let acks = b.on_envelope(0, &put_env(0, 5, "gone"), &mut rng);
        assert!(matches!(
            &acks[0].msg,
            Message::ToClient(ServerToClient::PutAck { .. })
        ));
        let (tag, v) = data_resp_of(&b.on_envelope(1, &query_env(0), &mut rng));
        assert_eq!(tag, Tag::ZERO);
        assert!(v.is_initial());
    }
}
