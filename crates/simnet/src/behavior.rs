//! Server behaviors: correct replicas and a bestiary of Byzantine
//! strategies.
//!
//! A [`ServerBehavior`] receives every envelope addressed to its server and
//! returns the envelopes the server emits. Correct behaviors wrap the real
//! protocol state machines; Byzantine ones deviate in the ways the paper's
//! adversary is allowed to (§II-A): wrong values, wrong timestamps, no
//! replies, multiple replies — but they can never forge *another* server's
//! messages (the channels are authenticated).

use safereg_common::ids::{ClientId, NodeId, ServerId};
use safereg_common::msg::{ClientToServer, Envelope, Message, Payload, ServerToClient};
use safereg_common::rng::DetRng;
use safereg_common::tag::Tag;
use safereg_common::value::Value;
use safereg_core::server::ServerNode;
use safereg_rb::baseline::BaselineServer;

use crate::event::SimTime;

/// A server's behavior under simulation.
pub trait ServerBehavior: Send {
    /// The server this behavior plays.
    fn id(&self) -> ServerId;

    /// Handles one delivered envelope, returning envelopes to send.
    fn on_envelope(&mut self, now: SimTime, env: &Envelope, rng: &mut DetRng) -> Vec<Envelope>;

    /// Payload bytes this server currently stores (E4's storage metric);
    /// behaviors without real storage report 0.
    fn storage_bytes(&self) -> usize {
        0
    }
}

/// A correct server running [`ServerNode`] (BSR/BCSR/variants).
#[derive(Debug)]
pub struct Correct {
    node: ServerNode,
}

impl Correct {
    /// Wraps a protocol server node.
    pub fn new(node: ServerNode) -> Self {
        Correct { node }
    }
}

impl ServerBehavior for Correct {
    fn id(&self) -> ServerId {
        self.node.id()
    }

    fn on_envelope(&mut self, _now: SimTime, env: &Envelope, _rng: &mut DetRng) -> Vec<Envelope> {
        let (from, msg) = match (&env.src, &env.msg) {
            (NodeId::Client(c), Message::ToServer(m)) => (*c, m),
            _ => return Vec::new(),
        };
        self.node
            .handle(from, msg)
            .into_iter()
            .map(|resp| Envelope::to_client(self.node.id(), from, resp))
            .collect()
    }

    fn storage_bytes(&self) -> usize {
        self.node.storage_bytes()
    }
}

/// A correct RB-baseline server (relay + Bracha).
#[derive(Debug)]
pub struct CorrectBaseline {
    server: BaselineServer,
}

impl CorrectBaseline {
    /// Wraps a baseline server.
    pub fn new(server: BaselineServer) -> Self {
        CorrectBaseline { server }
    }
}

impl ServerBehavior for CorrectBaseline {
    fn id(&self) -> ServerId {
        self.server.id()
    }

    fn on_envelope(&mut self, _now: SimTime, env: &Envelope, _rng: &mut DetRng) -> Vec<Envelope> {
        self.server.handle(env.src, &env.msg)
    }
}

/// Byzantine: never responds to anything.
#[derive(Debug)]
pub struct Silent {
    id: ServerId,
}

impl Silent {
    /// A server that is silent from the start.
    pub fn new(id: ServerId) -> Self {
        Silent { id }
    }
}

impl ServerBehavior for Silent {
    fn id(&self) -> ServerId {
        self.id
    }

    fn on_envelope(&mut self, _now: SimTime, _env: &Envelope, _rng: &mut DetRng) -> Vec<Envelope> {
        Vec::new()
    }
}

/// Crash fault: correct until `crash_at`, silent afterwards.
pub struct CrashAt {
    inner: Box<dyn ServerBehavior>,
    crash_at: SimTime,
}

impl CrashAt {
    /// Wraps a behavior that dies at `crash_at`.
    pub fn new(inner: Box<dyn ServerBehavior>, crash_at: SimTime) -> Self {
        CrashAt { inner, crash_at }
    }
}

impl ServerBehavior for CrashAt {
    fn id(&self) -> ServerId {
        self.inner.id()
    }

    fn on_envelope(&mut self, now: SimTime, env: &Envelope, rng: &mut DetRng) -> Vec<Envelope> {
        if now >= self.crash_at {
            return Vec::new();
        }
        self.inner.on_envelope(now, env, rng)
    }
}

/// Crash-recovery fault: silent during `[down_from, down_to)`, correct
/// otherwise. Messages delivered while down are lost to this server (its
/// channel endpoint is dead), which a recovered replica experiences as a
/// gap in its log — the quorum logic masks it as long as at most `f`
/// servers are down at once.
pub struct DownBetween {
    inner: Box<dyn ServerBehavior>,
    down_from: SimTime,
    down_to: SimTime,
}

impl DownBetween {
    /// Wraps a behavior that is unavailable during `[down_from, down_to)`.
    pub fn new(inner: Box<dyn ServerBehavior>, down_from: SimTime, down_to: SimTime) -> Self {
        DownBetween {
            inner,
            down_from,
            down_to,
        }
    }
}

impl ServerBehavior for DownBetween {
    fn id(&self) -> ServerId {
        self.inner.id()
    }

    fn on_envelope(&mut self, now: SimTime, env: &Envelope, rng: &mut DetRng) -> Vec<Envelope> {
        if (self.down_from..self.down_to).contains(&now) {
            return Vec::new();
        }
        self.inner.on_envelope(now, env, rng)
    }

    fn storage_bytes(&self) -> usize {
        self.inner.storage_bytes()
    }
}

/// Byzantine: acknowledges writes without storing them, so reads see stale
/// state; it also answers reads from the pre-attack state.
///
/// With `lag = 0` the server simply never applies any write (it always
/// answers from `(t_0, v_0)`); with `lag = k` it answers from the entry `k`
/// positions below its maximum — the strategy the Theorem 5 replay uses to
/// resurrect an overwritten value.
#[derive(Debug)]
pub struct StaleReplier {
    node: ServerNode,
    lag: usize,
}

impl StaleReplier {
    /// Creates a stale replier with the given lag.
    pub fn new(node: ServerNode, lag: usize) -> Self {
        StaleReplier { node, lag }
    }
}

impl ServerBehavior for StaleReplier {
    fn id(&self) -> ServerId {
        self.node.id()
    }

    fn on_envelope(&mut self, _now: SimTime, env: &Envelope, _rng: &mut DetRng) -> Vec<Envelope> {
        let (from, msg) = match (&env.src, &env.msg) {
            (NodeId::Client(c), Message::ToServer(m)) => (*c, m),
            _ => return Vec::new(),
        };
        match msg {
            // Maintain the log correctly (so the lagged entry exists), ack
            // normally — the lie is in the read path.
            ClientToServer::PutData { .. } | ClientToServer::QueryTag { .. } => self
                .node
                .handle(from, msg)
                .into_iter()
                .map(|r| Envelope::to_client(self.node.id(), from, r))
                .collect(),
            ClientToServer::QueryData { op } => {
                // Answer with a stale pair: use the full history to find
                // the entry `lag` below the max.
                let hist = self.node.handle(
                    from,
                    &ClientToServer::QueryHistory {
                        op: *op,
                        above: Tag::ZERO,
                    },
                );
                let entries = match hist.into_iter().next() {
                    Some(ServerToClient::HistoryResp { entries, .. }) if !entries.is_empty() => {
                        entries
                    }
                    _ => return Vec::new(),
                };
                let idx = entries.len().saturating_sub(1 + self.lag);
                let (tag, payload) = entries[idx].clone();
                vec![Envelope::to_client(
                    self.node.id(),
                    from,
                    ServerToClient::DataResp {
                        op: *op,
                        tag,
                        payload,
                    },
                )]
            }
            // For history-style queries, truncate the newest `lag` entries.
            ClientToServer::QueryHistory { .. }
            | ClientToServer::QueryTagList { .. }
            | ClientToServer::QueryValueAt { .. } => {
                let out = self.node.handle(from, msg);
                out.into_iter()
                    .map(|r| {
                        let r = match r {
                            ServerToClient::HistoryResp { op, mut entries } => {
                                entries.truncate(entries.len().saturating_sub(self.lag));
                                ServerToClient::HistoryResp { op, entries }
                            }
                            ServerToClient::TagListResp { op, mut tags } => {
                                tags.truncate(tags.len().saturating_sub(self.lag));
                                ServerToClient::TagListResp { op, tags }
                            }
                            other => other,
                        };
                        Envelope::to_client(self.node.id(), from, r)
                    })
                    .collect()
            }
            _ => Vec::new(),
        }
    }
}

/// Byzantine: responds to reads with fabricated values and huge tags, and
/// to `get-tag` queries with inflated tags (the attack ablation A2 guards
/// against); acks writes without storing.
#[derive(Debug)]
pub struct Fabricator {
    id: ServerId,
    rng: DetRng,
}

impl Fabricator {
    /// Creates a fabricator with its own random stream.
    pub fn new(id: ServerId, seed: u64) -> Self {
        Fabricator {
            id,
            rng: DetRng::seed_from(seed),
        }
    }

    fn forged_pair(&mut self) -> (Tag, Payload) {
        let tag = Tag::new(
            self.rng.range_u64(1_000_000..2_000_000),
            safereg_common::ids::WriterId(9999),
        );
        let mut bytes = vec![0u8; 8];
        self.rng.fill_bytes(&mut bytes);
        (tag, Payload::Full(Value::from(bytes)))
    }
}

impl ServerBehavior for Fabricator {
    fn id(&self) -> ServerId {
        self.id
    }

    fn on_envelope(&mut self, _now: SimTime, env: &Envelope, _rng: &mut DetRng) -> Vec<Envelope> {
        let (from, msg) = match (&env.src, &env.msg) {
            (NodeId::Client(c), Message::ToServer(m)) => (*c, m),
            _ => return Vec::new(),
        };
        let op = msg.op();
        let resp = match msg {
            ClientToServer::QueryTag { .. } => {
                let (tag, _) = self.forged_pair();
                ServerToClient::TagResp { op, tag }
            }
            ClientToServer::PutData { tag, .. } => ServerToClient::PutAck { op, tag: *tag },
            ClientToServer::QueryData { .. } => {
                let (tag, payload) = self.forged_pair();
                ServerToClient::DataResp { op, tag, payload }
            }
            ClientToServer::QueryHistory { .. } => {
                let (tag, payload) = self.forged_pair();
                ServerToClient::HistoryResp {
                    op,
                    entries: vec![(tag, payload)],
                }
            }
            ClientToServer::QueryTagList { .. } => {
                let (tag, _) = self.forged_pair();
                ServerToClient::TagListResp {
                    op,
                    tags: vec![tag],
                }
            }
            ClientToServer::QueryValueAt { tag, .. } => {
                let (_, payload) = self.forged_pair();
                ServerToClient::ValueAtResp {
                    op,
                    tag: *tag,
                    payload: Some(payload),
                }
            }
            _ => return Vec::new(),
        };
        vec![Envelope::to_client(self.id, from, resp)]
    }
}

/// Byzantine: behaves correctly except it reports different (fabricated)
/// values to different *readers* — equivocation. Writers see a correct
/// server, so writes complete; readers get per-client lies.
#[derive(Debug)]
pub struct Equivocator {
    node: ServerNode,
}

impl Equivocator {
    /// Wraps a correctly-maintained node whose read answers equivocate.
    pub fn new(node: ServerNode) -> Self {
        Equivocator { node }
    }
}

impl ServerBehavior for Equivocator {
    fn id(&self) -> ServerId {
        self.node.id()
    }

    fn on_envelope(&mut self, _now: SimTime, env: &Envelope, _rng: &mut DetRng) -> Vec<Envelope> {
        let (from, msg) = match (&env.src, &env.msg) {
            (NodeId::Client(c), Message::ToServer(m)) => (*c, m),
            _ => return Vec::new(),
        };
        match msg {
            ClientToServer::QueryData { op } => {
                // Value depends on who asks: reader r gets "evil-r".
                let salt = match from {
                    ClientId::Reader(r) => r.0,
                    ClientId::Writer(w) => w.0,
                };
                let tag = self
                    .node
                    .max_tag()
                    .next_for(safereg_common::ids::WriterId(8888));
                let payload = Payload::Full(Value::from(format!("evil-{salt}").into_bytes()));
                vec![Envelope::to_client(
                    self.node.id(),
                    from,
                    ServerToClient::DataResp {
                        op: *op,
                        tag,
                        payload,
                    },
                )]
            }
            _ => self
                .node
                .handle(from, msg)
                .into_iter()
                .map(|r| Envelope::to_client(self.node.id(), from, r))
                .collect(),
        }
    }
}

/// Byzantine: acknowledges `put-data` without storing anything (write
/// durability silently broken); reads answer from the initial state.
#[derive(Debug)]
pub struct AckForger {
    id: ServerId,
    cfg: safereg_common::config::QuorumConfig,
}

impl AckForger {
    /// Creates an ack forger.
    pub fn new(id: ServerId, cfg: safereg_common::config::QuorumConfig) -> Self {
        AckForger { id, cfg }
    }
}

impl ServerBehavior for AckForger {
    fn id(&self) -> ServerId {
        self.id
    }

    fn on_envelope(&mut self, now: SimTime, env: &Envelope, rng: &mut DetRng) -> Vec<Envelope> {
        let (from, msg) = match (&env.src, &env.msg) {
            (NodeId::Client(c), Message::ToServer(m)) => (*c, m),
            _ => return Vec::new(),
        };
        match msg {
            ClientToServer::PutData { op, tag, .. } => {
                vec![Envelope::to_client(
                    self.id,
                    from,
                    ServerToClient::PutAck { op: *op, tag: *tag },
                )]
            }
            _ => {
                // Everything else: act like a pristine (empty) correct node.
                let mut fresh = Correct::new(ServerNode::new_replicated(self.id, self.cfg));
                fresh.on_envelope(now, env, rng)
            }
        }
    }
}

/// Byzantine: answers every read query with one fixed `(tag, payload)` pair
/// and acks writes without storing — the building block for hand-crafted
/// adversarial schedules (the Theorem 6 replay uses it to make servers
/// vouch for elements they never received).
#[derive(Debug)]
pub struct FixedResponder {
    id: ServerId,
    tag: Tag,
    payload: Payload,
}

impl FixedResponder {
    /// Creates a responder pinned to one pair.
    pub fn new(id: ServerId, tag: Tag, payload: Payload) -> Self {
        FixedResponder { id, tag, payload }
    }
}

impl ServerBehavior for FixedResponder {
    fn id(&self) -> ServerId {
        self.id
    }

    fn on_envelope(&mut self, _now: SimTime, env: &Envelope, _rng: &mut DetRng) -> Vec<Envelope> {
        let (from, msg) = match (&env.src, &env.msg) {
            (NodeId::Client(c), Message::ToServer(m)) => (*c, m),
            _ => return Vec::new(),
        };
        let op = msg.op();
        let resp = match msg {
            ClientToServer::QueryTag { .. } => ServerToClient::TagResp { op, tag: self.tag },
            ClientToServer::PutData { tag, .. } => ServerToClient::PutAck { op, tag: *tag },
            ClientToServer::QueryData { .. } => ServerToClient::DataResp {
                op,
                tag: self.tag,
                payload: self.payload.clone(),
            },
            ClientToServer::QueryHistory { .. } => ServerToClient::HistoryResp {
                op,
                entries: vec![(self.tag, self.payload.clone())],
            },
            ClientToServer::QueryTagList { .. } => ServerToClient::TagListResp {
                op,
                tags: vec![self.tag],
            },
            ClientToServer::QueryValueAt { tag, .. } => ServerToClient::ValueAtResp {
                op,
                tag: *tag,
                payload: (*tag == self.tag).then(|| self.payload.clone()),
            },
            _ => return Vec::new(),
        };
        vec![Envelope::to_client(self.id, from, resp)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::config::QuorumConfig;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_common::msg::OpId;

    fn cfg() -> QuorumConfig {
        QuorumConfig::minimal_bsr(1).unwrap()
    }

    fn put_env(s: u16, num: u64, val: &str) -> Envelope {
        Envelope::to_server(
            ClientId::Writer(WriterId(1)),
            ServerId(s),
            ClientToServer::PutData {
                op: OpId::new(WriterId(1), num),
                tag: Tag::new(num, WriterId(1)),
                payload: Payload::Full(Value::from(val)),
            },
        )
    }

    fn query_env(s: u16) -> Envelope {
        Envelope::to_server(
            ClientId::Reader(ReaderId(0)),
            ServerId(s),
            ClientToServer::QueryData {
                op: OpId::new(ReaderId(0), 1),
            },
        )
    }

    fn data_resp_of(out: &[Envelope]) -> (Tag, Value) {
        match &out[0].msg {
            Message::ToClient(ServerToClient::DataResp { tag, payload, .. }) => {
                (*tag, payload.as_full().unwrap().clone())
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn correct_behavior_relays_node_responses() {
        let mut rng = DetRng::seed_from(0);
        let mut b = Correct::new(ServerNode::new_replicated(ServerId(0), cfg()));
        assert_eq!(b.on_envelope(0, &put_env(0, 1, "x"), &mut rng).len(), 1);
        let (tag, v) = data_resp_of(&b.on_envelope(1, &query_env(0), &mut rng));
        assert_eq!(tag, Tag::new(1, WriterId(1)));
        assert_eq!(v.as_bytes(), b"x");
    }

    #[test]
    fn silent_says_nothing() {
        let mut rng = DetRng::seed_from(0);
        let mut b = Silent::new(ServerId(2));
        assert!(b.on_envelope(0, &put_env(2, 1, "x"), &mut rng).is_empty());
        assert!(b.on_envelope(0, &query_env(2), &mut rng).is_empty());
        assert_eq!(b.id(), ServerId(2));
    }

    #[test]
    fn crash_at_stops_responding_at_the_deadline() {
        let mut rng = DetRng::seed_from(0);
        let inner = Box::new(Correct::new(ServerNode::new_replicated(ServerId(0), cfg())));
        let mut b = CrashAt::new(inner, 100);
        assert_eq!(b.on_envelope(99, &query_env(0), &mut rng).len(), 1);
        assert!(b.on_envelope(100, &query_env(0), &mut rng).is_empty());
    }

    #[test]
    fn stale_replier_serves_old_entries() {
        let mut rng = DetRng::seed_from(0);
        let mut b = StaleReplier::new(ServerNode::new_replicated(ServerId(0), cfg()), 1);
        b.on_envelope(0, &put_env(0, 1, "v1"), &mut rng);
        b.on_envelope(1, &put_env(0, 2, "v2"), &mut rng);
        let (tag, v) = data_resp_of(&b.on_envelope(2, &query_env(0), &mut rng));
        assert_eq!(tag, Tag::new(1, WriterId(1)), "lags one entry behind");
        assert_eq!(v.as_bytes(), b"v1");
    }

    #[test]
    fn fabricator_forges_but_acks() {
        let mut rng = DetRng::seed_from(0);
        let mut b = Fabricator::new(ServerId(1), 42);
        let acks = b.on_envelope(0, &put_env(1, 1, "real"), &mut rng);
        assert!(matches!(
            &acks[0].msg,
            Message::ToClient(ServerToClient::PutAck { .. })
        ));
        let (tag, v) = data_resp_of(&b.on_envelope(1, &query_env(1), &mut rng));
        assert!(tag.num >= 1_000_000, "forged tag");
        assert_ne!(v.as_bytes(), b"real");
    }

    #[test]
    fn equivocator_tells_each_reader_a_different_story() {
        let mut rng = DetRng::seed_from(0);
        let mut b = Equivocator::new(ServerNode::new_replicated(ServerId(0), cfg()));
        let q0 = Envelope::to_server(
            ClientId::Reader(ReaderId(0)),
            ServerId(0),
            ClientToServer::QueryData {
                op: OpId::new(ReaderId(0), 1),
            },
        );
        let q1 = Envelope::to_server(
            ClientId::Reader(ReaderId(1)),
            ServerId(0),
            ClientToServer::QueryData {
                op: OpId::new(ReaderId(1), 1),
            },
        );
        let (_, v0) = data_resp_of(&b.on_envelope(0, &q0, &mut rng));
        let (_, v1) = data_resp_of(&b.on_envelope(0, &q1, &mut rng));
        assert_ne!(v0, v1);
    }

    #[test]
    fn ack_forger_acks_but_never_stores() {
        let mut rng = DetRng::seed_from(0);
        let mut b = AckForger::new(ServerId(0), cfg());
        let acks = b.on_envelope(0, &put_env(0, 5, "gone"), &mut rng);
        assert!(matches!(
            &acks[0].msg,
            Message::ToClient(ServerToClient::PutAck { .. })
        ));
        let (tag, v) = data_resp_of(&b.on_envelope(1, &query_env(0), &mut rng));
        assert_eq!(tag, Tag::ZERO);
        assert!(v.is_initial());
    }
}
