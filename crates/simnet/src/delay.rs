//! Message delay policies.
//!
//! The model's channels are reliable but arbitrarily slow; a
//! [`DelayPolicy`] decides *how* slow, per message. Uniform/fixed policies
//! model benign networks, and [`Scripted`] policies give an adversarial
//! scheduler surgical control over individual messages — delaying the
//! `put-data` of one writer to one server past a reader's completion is
//! exactly how the paper's Theorem 3/5/6 schedules are reproduced.

use safereg_common::ids::NodeId;
use safereg_common::msg::{ClientToServer, Envelope, Message, OpId};
use safereg_common::rng::DetRng;

use crate::event::SimTime;

/// A hold-back used by scripted schedules: "deliver after everything
/// relevant has happened". Channels stay reliable (the message *is*
/// delivered), it just arrives far too late to matter.
pub const FAR_FUTURE: SimTime = 1 << 40;

/// The delay assigned to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delay(pub SimTime);

impl Delay {
    /// Delivery after `ticks`.
    pub fn after(ticks: SimTime) -> Self {
        Delay(ticks)
    }

    /// Deliver at [`FAR_FUTURE`] — effectively "after the experiment",
    /// while keeping the channel formally reliable.
    pub fn held() -> Self {
        Delay(FAR_FUTURE)
    }
}

/// Decides each message's network delay.
pub trait DelayPolicy: Send {
    /// The delay for `env` sent at `now`.
    fn delay(&mut self, now: SimTime, env: &Envelope, rng: &mut DetRng) -> Delay;
}

/// Every message takes exactly `hop` ticks — the synchronous-looking
/// network used for round/latency accounting (E2, E3).
#[derive(Debug, Clone)]
pub struct FixedDelay {
    /// Per-hop latency in ticks.
    pub hop: SimTime,
}

impl DelayPolicy for FixedDelay {
    fn delay(&mut self, _now: SimTime, _env: &Envelope, _rng: &mut DetRng) -> Delay {
        Delay(self.hop)
    }
}

/// Uniformly random delay in `[lo, hi)` — the benign asynchronous network.
#[derive(Debug, Clone)]
pub struct UniformDelay {
    /// Minimum delay (inclusive).
    pub lo: SimTime,
    /// Maximum delay (exclusive).
    pub hi: SimTime,
}

impl DelayPolicy for UniformDelay {
    fn delay(&mut self, _now: SimTime, _env: &Envelope, rng: &mut DetRng) -> Delay {
        Delay(rng.range_u64(self.lo..self.hi))
    }
}

/// Heavy-tailed delays: mostly fast, occasionally very slow — the
/// tail-latency profile of real networks, and the regime where asynchrony
/// actually bites (messages from long ago arriving mid-operation).
#[derive(Debug, Clone)]
pub struct SpikeDelay {
    /// Fast-path range (inclusive lo, exclusive hi).
    pub base: (SimTime, SimTime),
    /// Probability of a slow message.
    pub spike_prob: f64,
    /// Slow-path range.
    pub spike: (SimTime, SimTime),
}

impl DelayPolicy for SpikeDelay {
    fn delay(&mut self, _now: SimTime, _env: &Envelope, rng: &mut DetRng) -> Delay {
        if rng.chance(self.spike_prob) {
            Delay(rng.range_u64(self.spike.0..self.spike.1))
        } else {
            Delay(rng.range_u64(self.base.0..self.base.1))
        }
    }
}

/// Matches a subset of messages (all unset fields are wildcards).
#[derive(Debug, Clone, Default)]
pub struct Matcher {
    /// Match the sender.
    pub src: Option<NodeId>,
    /// Match the destination.
    pub dst: Option<NodeId>,
    /// Match the operation the message belongs to.
    pub op: Option<OpId>,
    /// Match the client→server message kind (see [`MsgKind`]).
    pub kind: Option<MsgKind>,
}

/// Coarse message classification for matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// `QUERY-TAG` requests.
    QueryTag,
    /// `PUT-DATA` requests.
    PutData,
    /// Any read query (`QUERY-DATA`, history, tag-list, value-at, sub).
    ReadQuery,
    /// Any server→client response.
    Response,
    /// Server-to-server RB traffic.
    Peer,
}

/// Classifies a message for [`Matcher::kind`].
pub fn classify(msg: &Message) -> MsgKind {
    match msg {
        Message::ToServer(m) => match m {
            ClientToServer::QueryTag { .. } => MsgKind::QueryTag,
            ClientToServer::PutData { .. } => MsgKind::PutData,
            _ => MsgKind::ReadQuery,
        },
        Message::ToClient(_) => MsgKind::Response,
        Message::Peer(_) => MsgKind::Peer,
    }
}

/// The operation a message belongs to, when it carries one.
pub fn op_of(msg: &Message) -> Option<OpId> {
    match msg {
        Message::ToServer(m) => Some(m.op()),
        Message::ToClient(m) => Some(m.op()),
        Message::Peer(p) => {
            let bid = match p {
                safereg_common::msg::PeerMessage::RbEcho { bid, .. }
                | safereg_common::msg::PeerMessage::RbReady { bid, .. } => bid,
            };
            Some(OpId {
                client: bid.origin,
                seq: bid.seq,
            })
        }
    }
}

impl Matcher {
    /// A matcher with all fields wild (matches everything).
    pub fn any() -> Self {
        Matcher::default()
    }

    /// Restricts the sender.
    #[must_use]
    pub fn from_node(mut self, src: impl Into<NodeId>) -> Self {
        self.src = Some(src.into());
        self
    }

    /// Restricts the destination.
    #[must_use]
    pub fn to_node(mut self, dst: impl Into<NodeId>) -> Self {
        self.dst = Some(dst.into());
        self
    }

    /// Restricts the operation.
    #[must_use]
    pub fn for_op(mut self, op: OpId) -> Self {
        self.op = Some(op);
        self
    }

    /// Restricts the message kind.
    #[must_use]
    pub fn of_kind(mut self, kind: MsgKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Whether `env` matches.
    pub fn matches(&self, env: &Envelope) -> bool {
        self.src.is_none_or(|s| s == env.src)
            && self.dst.is_none_or(|d| d == env.dst)
            && self.op.is_none_or(|o| op_of(&env.msg) == Some(o))
            && self.kind.is_none_or(|k| k == classify(&env.msg))
    }
}

/// One scripted rule: messages matching `matcher` get `delay`.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Which messages the rule applies to.
    pub matcher: Matcher,
    /// Their delay.
    pub delay: Delay,
}

/// First-match-wins rule list with a default policy for the rest.
///
/// This is the adversarial scheduler: the Theorem replays express "the
/// `put-data` of `w_1` to `s_3` is slow" as a [`Rule`] holding exactly that
/// message to [`FAR_FUTURE`].
pub struct Scripted {
    rules: Vec<Rule>,
    fallback: Box<dyn DelayPolicy>,
}

impl std::fmt::Debug for Scripted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scripted")
            .field("rules", &self.rules.len())
            .finish()
    }
}

impl Scripted {
    /// Creates a scripted policy over a fallback.
    pub fn new(rules: Vec<Rule>, fallback: Box<dyn DelayPolicy>) -> Self {
        Scripted { rules, fallback }
    }

    /// Convenience: scripted rules over a fixed per-hop delay.
    pub fn over_fixed(rules: Vec<Rule>, hop: SimTime) -> Self {
        Scripted::new(rules, Box::new(FixedDelay { hop }))
    }
}

impl DelayPolicy for Scripted {
    fn delay(&mut self, now: SimTime, env: &Envelope, rng: &mut DetRng) -> Delay {
        for rule in &self.rules {
            if rule.matcher.matches(env) {
                return rule.delay;
            }
        }
        self.fallback.delay(now, env, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ClientId, ReaderId, ServerId, WriterId};
    use safereg_common::msg::Payload;
    use safereg_common::tag::Tag;
    use safereg_common::value::Value;

    fn put_env(w: u16, s: u16) -> Envelope {
        Envelope::to_server(
            ClientId::Writer(WriterId(w)),
            ServerId(s),
            ClientToServer::PutData {
                op: OpId::new(WriterId(w), 1),
                tag: Tag::new(1, WriterId(w)),
                payload: Payload::Full(Value::from("x")),
            },
        )
    }

    fn query_env(r: u16, s: u16) -> Envelope {
        Envelope::to_server(
            ClientId::Reader(ReaderId(r)),
            ServerId(s),
            ClientToServer::QueryData {
                op: OpId::new(ReaderId(r), 1),
            },
        )
    }

    #[test]
    fn fixed_and_uniform_policies() {
        let mut rng = DetRng::seed_from(1);
        let mut fixed = FixedDelay { hop: 7 };
        assert_eq!(fixed.delay(0, &put_env(0, 0), &mut rng), Delay(7));
        let mut uni = UniformDelay { lo: 5, hi: 10 };
        for _ in 0..100 {
            let d = uni.delay(0, &put_env(0, 0), &mut rng).0;
            assert!((5..10).contains(&d));
        }
    }

    #[test]
    fn spike_delay_is_bimodal() {
        let mut rng = DetRng::seed_from(3);
        let mut policy = SpikeDelay {
            base: (1, 10),
            spike_prob: 0.3,
            spike: (1_000, 2_000),
        };
        let mut fast = 0;
        let mut slow = 0;
        for _ in 0..1000 {
            let d = policy.delay(0, &put_env(0, 0), &mut rng).0;
            if d < 10 {
                fast += 1;
            } else {
                assert!((1_000..2_000).contains(&d));
                slow += 1;
            }
        }
        assert!(fast > 600 && slow > 200, "fast {fast} slow {slow}");
    }

    #[test]
    fn matcher_fields_compose() {
        let m = Matcher::any()
            .from_node(WriterId(1))
            .to_node(ServerId(3))
            .of_kind(MsgKind::PutData);
        assert!(m.matches(&put_env(1, 3)));
        assert!(!m.matches(&put_env(1, 2)), "wrong destination");
        assert!(!m.matches(&put_env(2, 3)), "wrong source");
        assert!(!m.matches(&query_env(1, 3)), "wrong kind");
    }

    #[test]
    fn op_matcher_pins_one_operation() {
        let m = Matcher::any().for_op(OpId::new(WriterId(1), 1));
        assert!(m.matches(&put_env(1, 0)));
        let mut other = put_env(1, 0);
        if let Message::ToServer(ClientToServer::PutData { op, .. }) = &mut other.msg {
            op.seq = 2;
        }
        assert!(!m.matches(&other));
    }

    #[test]
    fn scripted_first_match_wins_then_fallback() {
        let rules = vec![
            Rule {
                matcher: Matcher::any().to_node(ServerId(3)),
                delay: Delay::held(),
            },
            Rule {
                matcher: Matcher::any().to_node(ServerId(3)),
                delay: Delay(1),
            },
        ];
        let mut scripted = Scripted::over_fixed(rules, 10);
        let mut rng = DetRng::seed_from(0);
        assert_eq!(scripted.delay(0, &put_env(0, 3), &mut rng), Delay::held());
        assert_eq!(scripted.delay(0, &put_env(0, 1), &mut rng), Delay(10));
    }

    #[test]
    fn classify_covers_all_shapes() {
        assert_eq!(classify(&put_env(0, 0).msg), MsgKind::PutData);
        assert_eq!(classify(&query_env(0, 0).msg), MsgKind::ReadQuery);
        let resp = Envelope::to_client(
            ServerId(0),
            ClientId::Reader(ReaderId(0)),
            safereg_common::msg::ServerToClient::TagResp {
                op: OpId::new(ReaderId(0), 1),
                tag: Tag::ZERO,
            },
        );
        assert_eq!(classify(&resp.msg), MsgKind::Response);
    }
}
