//! Client drivers: who a simulated client is and what it does next.
//!
//! A [`ClientDriver`] wraps one of the protocol client façades and mints
//! [`ClientOp`]s on demand; a [`Plan`] schedules the client's operations
//! (either at absolute instants — used by the scripted scenario replays —
//! or closed-loop after the previous operation completes).

use safereg_common::ids::ClientId;
use safereg_common::value::Value;
use safereg_core::client::{BcsrReader, BcsrWriter, Bsr2pReader, BsrHReader, BsrReader, BsrWriter};
use safereg_core::op::{ClientOp, OpOutput};
use safereg_rb::baseline::{BaselineReader, BaselineWriter};

use crate::event::SimTime;

/// What a planned operation does.
#[derive(Debug, Clone)]
pub enum Action {
    /// Write this value.
    Write(Value),
    /// Read the register.
    Read,
}

/// When a planned operation starts.
#[derive(Debug, Clone, Copy)]
pub enum StartRule {
    /// At an absolute simulated instant (scripted scenarios).
    At(SimTime),
    /// `think` ticks after the previous operation completes (closed loop).
    AfterPrevious {
        /// Think time in ticks.
        think: SimTime,
    },
}

/// One planned operation.
#[derive(Debug, Clone)]
pub struct Plan {
    /// When to start.
    pub start: StartRule,
    /// What to do.
    pub action: Action,
}

impl Plan {
    /// A write at an absolute instant.
    pub fn write_at(at: SimTime, value: impl Into<Value>) -> Self {
        Plan {
            start: StartRule::At(at),
            action: Action::Write(value.into()),
        }
    }

    /// A read at an absolute instant.
    pub fn read_at(at: SimTime) -> Self {
        Plan {
            start: StartRule::At(at),
            action: Action::Read,
        }
    }
}

/// A custom operation factory — lets experiment code (e.g. the ablation
/// harness) drive non-standard operation variants through the simulator.
pub trait OpFactory: Send {
    /// The simulated process this factory plays.
    fn client_id(&self) -> ClientId;

    /// Mints the operation for an action.
    fn begin(&mut self, action: &Action) -> Box<dyn ClientOp>;

    /// Feeds a completed operation's outcome back (default: stateless).
    fn absorb(&mut self, _out: &OpOutput) {}
}

/// A protocol client bound to a simulated process.
pub enum ClientDriver {
    /// BSR writer (Fig. 1).
    BsrWriter(BsrWriter),
    /// BSR one-shot reader (Fig. 2).
    BsrReader(BsrReader),
    /// BSR-H history reader (§III-C variant 1).
    BsrHReader(BsrHReader),
    /// BSR-2P two-phase reader (§III-C variant 2).
    Bsr2pReader(Bsr2pReader),
    /// BCSR coded writer (Fig. 4).
    BcsrWriter(BcsrWriter),
    /// BCSR coded reader (Fig. 5).
    BcsrReader(BcsrReader),
    /// RB-baseline writer.
    RbWriter(BaselineWriter),
    /// RB-baseline subscribing reader.
    RbReader(BaselineReader),
    /// A caller-supplied factory (ablations, protocol variants).
    Custom(Box<dyn OpFactory>),
}

impl std::fmt::Debug for ClientDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ClientDriver::BsrWriter(_) => "BsrWriter",
            ClientDriver::BsrReader(_) => "BsrReader",
            ClientDriver::BsrHReader(_) => "BsrHReader",
            ClientDriver::Bsr2pReader(_) => "Bsr2pReader",
            ClientDriver::BcsrWriter(_) => "BcsrWriter",
            ClientDriver::BcsrReader(_) => "BcsrReader",
            ClientDriver::RbWriter(_) => "RbWriter",
            ClientDriver::RbReader(_) => "RbReader",
            ClientDriver::Custom(_) => "Custom",
        };
        write!(f, "{name}({})", self.client_id())
    }
}

impl ClientDriver {
    /// The simulated process this driver plays.
    pub fn client_id(&self) -> ClientId {
        match self {
            ClientDriver::BsrWriter(w) => ClientId::Writer(w.id()),
            ClientDriver::BsrReader(r) => ClientId::Reader(r.id()),
            ClientDriver::BsrHReader(r) => ClientId::Reader(r.id()),
            ClientDriver::Bsr2pReader(r) => ClientId::Reader(r.id()),
            ClientDriver::BcsrWriter(w) => ClientId::Writer(w.id()),
            ClientDriver::BcsrReader(r) => ClientId::Reader(r.id()),
            ClientDriver::RbWriter(w) => ClientId::Writer(w.id()),
            ClientDriver::RbReader(r) => ClientId::Reader(r.id()),
            ClientDriver::Custom(f) => f.client_id(),
        }
    }

    /// Mints the operation for an action.
    ///
    /// # Panics
    ///
    /// Panics when a writer is asked to read or a reader to write — plans
    /// are constructed per-client, so this is a setup bug.
    pub fn begin(&mut self, action: &Action) -> Box<dyn ClientOp> {
        match (self, action) {
            (ClientDriver::BsrWriter(w), Action::Write(v)) => Box::new(w.write(v.clone())),
            (ClientDriver::BcsrWriter(w), Action::Write(v)) => Box::new(w.write(v)),
            (ClientDriver::RbWriter(w), Action::Write(v)) => Box::new(w.write(v.clone())),
            (ClientDriver::BsrReader(r), Action::Read) => Box::new(r.read()),
            (ClientDriver::BsrHReader(r), Action::Read) => Box::new(r.read()),
            (ClientDriver::Bsr2pReader(r), Action::Read) => Box::new(r.read()),
            (ClientDriver::BcsrReader(r), Action::Read) => Box::new(r.read()),
            (ClientDriver::RbReader(r), Action::Read) => Box::new(r.read()),
            (ClientDriver::Custom(f), action) => f.begin(action),
            (driver, action) => {
                panic!("driver {driver:?} cannot perform {action:?}")
            }
        }
    }

    /// Feeds a completed operation's outcome back (reader caches).
    pub fn absorb(&mut self, out: &OpOutput) {
        match self {
            ClientDriver::BsrReader(r) => r.absorb(out),
            ClientDriver::BsrHReader(r) => r.absorb(out),
            ClientDriver::Bsr2pReader(r) => r.absorb(out),
            ClientDriver::Custom(f) => f.absorb(out),
            // Writers and the cache-less readers keep no cross-op state.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::config::QuorumConfig;
    use safereg_common::ids::{ReaderId, WriterId};

    fn cfg() -> QuorumConfig {
        QuorumConfig::minimal_bsr(1).unwrap()
    }

    #[test]
    fn drivers_mint_matching_ops() {
        let mut w = ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg()));
        let op = w.begin(&Action::Write(Value::from("x")));
        assert!(op.is_write());

        let mut r = ClientDriver::BsrReader(BsrReader::new(ReaderId(0), cfg()));
        let op = r.begin(&Action::Read);
        assert!(!op.is_write());
    }

    #[test]
    #[should_panic(expected = "cannot perform")]
    fn writer_cannot_read() {
        let mut w = ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg()));
        let _ = w.begin(&Action::Read);
    }

    #[test]
    fn debug_shows_role_and_id() {
        let w = ClientDriver::RbWriter(BaselineWriter::new(
            WriterId(3),
            QuorumConfig::minimal_rb(1).unwrap(),
        ));
        assert_eq!(format!("{w:?}"), "RbWriter(w3)");
    }

    #[test]
    fn plan_constructors() {
        let p = Plan::write_at(10, "v");
        assert!(matches!(p.start, StartRule::At(10)));
        assert!(matches!(p.action, Action::Write(_)));
        let r = Plan::read_at(20);
        assert!(matches!(r.action, Action::Read));
    }
}
