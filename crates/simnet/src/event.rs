//! Simulated time and the event queue.

use std::cmp::Ordering;

use safereg_common::ids::ClientId;
use safereg_common::msg::Envelope;

/// Simulated time, in abstract "ticks". Experiments that model a per-hop
/// latency Δ typically use Δ = 1000 ticks ≙ one network hop.
pub type SimTime = u64;

/// What happens at an instant.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A message arrives at its destination.
    Deliver(Envelope),
    /// A client begins its next planned operation.
    Invoke(ClientId),
}

/// A scheduled event. Ordered by time, then by insertion sequence so
/// simultaneous events run in scheduling order (deterministic).
#[derive(Debug, Clone)]
pub struct Event {
    /// When the event fires.
    pub at: SimTime,
    /// Tie-breaker: insertion order.
    pub seq: u64,
    /// The event itself.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest event.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ReaderId, ServerId};
    use safereg_common::msg::{ClientToServer, OpId};
    use std::collections::BinaryHeap;

    fn ev(at: SimTime, seq: u64) -> Event {
        Event {
            at,
            seq,
            kind: EventKind::Invoke(ClientId::Reader(ReaderId(0))),
        }
    }

    #[test]
    fn heap_pops_earliest_first_with_stable_ties() {
        let mut heap = BinaryHeap::new();
        heap.push(ev(50, 1));
        heap.push(ev(10, 2));
        heap.push(ev(10, 0));
        heap.push(ev(30, 3));
        let order: Vec<(SimTime, u64)> =
            std::iter::from_fn(|| heap.pop().map(|e| (e.at, e.seq))).collect();
        assert_eq!(order, vec![(10, 0), (10, 2), (30, 3), (50, 1)]);
    }

    #[test]
    fn deliver_events_carry_envelopes() {
        let env = Envelope::to_server(
            ClientId::Reader(ReaderId(1)),
            ServerId(0),
            ClientToServer::QueryData {
                op: OpId::new(ReaderId(1), 1),
            },
        );
        let e = Event {
            at: 5,
            seq: 0,
            kind: EventKind::Deliver(env.clone()),
        };
        match e.kind {
            EventKind::Deliver(inner) => assert_eq!(inner, env),
            EventKind::Invoke(_) => panic!("wrong kind"),
        }
    }
}
