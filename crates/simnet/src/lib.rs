//! Deterministic discrete-event simulator for the `safereg` protocols.
//!
//! The paper's model (§II-A) is an asynchronous message-passing system with
//! reliable-but-arbitrarily-slow channels and up to `f` Byzantine servers.
//! This crate realises that model as a seeded, replayable simulation:
//!
//! * [`event`] — the event queue and simulated clock,
//! * [`delay`] — delay policies, from fixed per-hop latency to fully
//!   scripted adversarial schedules that target individual messages (how
//!   the Theorem 3/5/6 replays are expressed),
//! * [`behavior`] — server behaviors: correct wrappers around
//!   [`safereg_core::server::ServerNode`] / the RB baseline server, plus a
//!   bestiary of Byzantine strategies (silent, crash, stale replies,
//!   fabrication, tag inflation, equivocation, ack forgery),
//! * [`driver`] — client actors that mint protocol operations according to
//!   a [`driver::Plan`] and feed results back into reader caches,
//! * [`sim`] — the engine: run events until quiescence, recording a
//!   [`safereg_common::history::History`] for the checkers plus message and
//!   byte counts for the cost experiments,
//! * [`workload`] — closed-loop read-heavy workload generation (E8),
//! * [`scenarios`] — ready-made executions: the Theorem 3 regularity
//!   violation, the Theorem 5 (`n = 4f`) and Theorem 6 (`n = 5f`)
//!   impossibility schedules, and liveness-under-faults setups.
//!
//! Determinism: given the same seed and setup, a run produces the same
//! history, byte counts and timings — bit for bit.

pub mod behavior;
pub mod delay;
pub mod driver;
pub mod event;
pub mod scenarios;
pub mod sim;
pub mod workload;

pub use behavior::ServerBehavior;
pub use delay::{Delay, DelayPolicy};
pub use driver::{Action, ClientDriver, OpFactory, Plan, StartRule};
pub use event::SimTime;
pub use sim::{RunReport, ServerTally, Sim};
