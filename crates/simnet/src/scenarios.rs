//! Executable replays of the paper's proofs.
//!
//! Each scenario builds the exact adversarial schedule from the paper's
//! argument and returns the recorded history for the checkers:
//!
//! * [`theorem3`] — the regularity-violation schedule of Theorem 3 (n = 5,
//!   f = 1, five writers): BSR's one-shot read returns `v_0` although a
//!   write completed; the §III-C variants survive the same schedule.
//! * [`theorem5`] — the `n = 4f` impossibility schedule of Theorem 5: with
//!   one under-provisioned server, a stale-replying Byzantine server makes
//!   a superseded value collect `f + 1` witnesses. At `n = 4f + 1` the same
//!   adversary is harmless.
//! * [`theorem6`] — the `n = 5f` impossibility schedule of Theorem 6 for
//!   erasure-coded registers: the fresh value's elements drop below `k`
//!   among the reader's `n − f` responses and decoding fails. At
//!   `n = 5f + 1` (the paper's bound) the same adversary is harmless.
//!
//! All scenarios use a per-hop delay of [`HOP`] ticks and are fully
//! deterministic.

use safereg_common::config::QuorumConfig;
use safereg_common::history::History;
use safereg_common::ids::{ReaderId, ServerId, WriterId};
use safereg_common::msg::{OpId, Payload};
use safereg_common::tag::Tag;
use safereg_common::value::Value;
use safereg_core::client::{BcsrReader, BcsrWriter, BsrReader, BsrWriter};
use safereg_core::server::ServerNode;
use safereg_mds::rs::ReedSolomon;
use safereg_mds::stripe::column_count;

use crate::behavior::{Correct, FixedResponder, StaleReplier};
use crate::delay::{Delay, Matcher, MsgKind, Rule, Scripted};
use crate::driver::{ClientDriver, Plan};
use crate::sim::{RunReport, Sim};
use crate::workload::Protocol;

/// Per-hop latency used by the scripted scenarios, in ticks.
pub const HOP: u64 = 10;

/// The outcome of a scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario label for reports.
    pub name: String,
    /// The recorded execution.
    pub history: History,
    /// Run statistics.
    pub report: RunReport,
}

fn held(matcher: Matcher) -> Rule {
    Rule {
        matcher,
        delay: Delay::held(),
    }
}

/// Theorem 3's schedule (n = 5, f = 1, writers `w1..w5`, reader `r0`):
/// `w1` writes `v1` completely; `w2..w5` then write concurrently but each
/// `put-data` reaches exactly one distinct server before the read; the
/// read sees five different pairs. Runs the given read `protocol` over the
/// identical schedule.
///
/// # Panics
///
/// Panics if called with a write-only or coded protocol (only BSR, BSR-H
/// and BSR-2P make sense here).
pub fn theorem3(protocol: Protocol) -> ScenarioResult {
    assert!(
        matches!(protocol, Protocol::Bsr | Protocol::BsrH | Protocol::Bsr2p),
        "theorem 3 replays a replicated-register read"
    );
    let cfg = QuorumConfig::new(5, 1).expect("n=5, f=1");

    // w_i (i ≥ 2) stores only at server s_{i-1}; every other put-data of
    // w_i is held past the read.
    let mut rules = Vec::new();
    for i in 2..=5u16 {
        let target = ServerId(i - 1);
        for sid in cfg.servers() {
            if sid != target {
                rules.push(held(
                    Matcher::any()
                        .for_op(OpId::new(WriterId(i), 1))
                        .of_kind(MsgKind::PutData)
                        .to_node(sid),
                ));
            }
        }
    }
    let mut sim = Sim::new(cfg, 3, Box::new(Scripted::over_fixed(rules, HOP)));
    for sid in cfg.servers() {
        sim.add_server(Box::new(Correct::new(ServerNode::new_replicated(sid, cfg))));
    }
    // w1 completes before anyone else moves.
    sim.add_client(
        ClientDriver::BsrWriter(BsrWriter::new(WriterId(1), cfg)),
        vec![Plan::write_at(0, "v1")],
    );
    for i in 2..=5u16 {
        sim.add_client(
            ClientDriver::BsrWriter(BsrWriter::new(WriterId(i), cfg)),
            vec![Plan::write_at(50, format!("v{i}").into_bytes())],
        );
    }
    sim.add_client(protocol.reader(ReaderId(0), cfg), vec![Plan::read_at(100)]);

    // Stop before the held messages (at FAR_FUTURE) land: the read has
    // long completed, and the incomplete writes stay incomplete, exactly
    // as in the proof.
    let report = sim.run_until(1_000_000);
    ScenarioResult {
        name: format!("theorem3/{}", protocol.name()),
        history: sim.history().clone(),
        report,
    }
}

/// Theorem 5's schedule for BSR at `n = 4f` (`provisioned = false`) or the
/// control at `n = 4f + 1` (`provisioned = true`), with `f = 1`:
/// `w1` writes `v1` (one server held out), `w2` then writes `v2` (another
/// server held out), and server `s0` is Byzantine, replying one write
/// behind. Under-provisioned, the stale pair `(t1, v1)` reaches `f + 1`
/// witnesses inside the reader's `n − f` responses and the read returns a
/// superseded value — a safety violation.
pub fn theorem5(provisioned: bool) -> ScenarioResult {
    let n = if provisioned { 5 } else { 4 };
    let cfg = QuorumConfig::new(n, 1).expect("valid config");
    let last = ServerId((n - 1) as u16);

    let rules = vec![
        // w1's put-data never reaches the last server.
        held(
            Matcher::any()
                .for_op(OpId::new(WriterId(1), 1))
                .of_kind(MsgKind::PutData)
                .to_node(last),
        ),
        // w2's put-data never reaches s1.
        held(
            Matcher::any()
                .for_op(OpId::new(WriterId(2), 1))
                .of_kind(MsgKind::PutData)
                .to_node(ServerId(1)),
        ),
    ];
    let mut sim = Sim::new(cfg, 5, Box::new(Scripted::over_fixed(rules, HOP)));
    for sid in cfg.servers() {
        if sid == ServerId(0) {
            // Byzantine: maintains its log but serves reads one write late.
            sim.add_server(Box::new(StaleReplier::new(
                ServerNode::new_replicated(sid, cfg),
                1,
            )));
        } else {
            sim.add_server(Box::new(Correct::new(ServerNode::new_replicated(sid, cfg))));
        }
    }
    sim.add_client(
        ClientDriver::BsrWriter(BsrWriter::new(WriterId(1), cfg)),
        vec![Plan::write_at(0, "v1")],
    );
    sim.add_client(
        ClientDriver::BsrWriter(BsrWriter::new(WriterId(2), cfg)),
        vec![Plan::write_at(50, "v2")],
    );
    sim.add_client(
        ClientDriver::BsrReader(BsrReader::new(ReaderId(0), cfg)),
        vec![Plan::read_at(100)],
    );
    let report = sim.run_until(1_000_000);
    ScenarioResult {
        name: format!("theorem5/n={n},f=1"),
        history: sim.history().clone(),
        report,
    }
}

/// Theorem 6's schedule for an erasure-coded register at `n = 5f`
/// (`provisioned = false`, n = 10, f = 2, forced `k = 6`) or the control at
/// `n = 5f + 1` (`provisioned = true`, n = 11, f = 2, the paper's
/// `k = n − 5f = 1`).
///
/// `w1` writes `v1` missing the two highest servers; `w2` writes `v2`
/// missing `s0, s1`; the two highest servers are Byzantine and vouch for
/// `(t1, garbage)`; two fresh responses are held past the read. Under-
/// provisioned, the reader's plurality tag has fewer than `k` honest
/// elements and decoding fails (the read falls back to `v_0` although `v2`
/// completed); at the paper's bound the same adversary is harmless.
pub fn theorem6(provisioned: bool) -> ScenarioResult {
    let f = 2usize;
    let n = if provisioned { 5 * f + 1 } else { 5 * f };
    let cfg = QuorumConfig::new(n, f).expect("valid config");
    let k = if provisioned { 1 } else { 6 };
    let code = ReedSolomon::new(n, k).expect("valid code");

    let w1_op = OpId::new(WriterId(1), 1);
    let w2_op = OpId::new(WriterId(2), 1);
    let byz_a = ServerId((n - 2) as u16);
    let byz_b = ServerId((n - 1) as u16);

    let mut rules = vec![
        // w1 misses the two Byzantine servers (they never see v1).
        held(
            Matcher::any()
                .for_op(w1_op)
                .of_kind(MsgKind::PutData)
                .to_node(byz_a),
        ),
        held(
            Matcher::any()
                .for_op(w1_op)
                .of_kind(MsgKind::PutData)
                .to_node(byz_b),
        ),
        // w2 misses s0 and s1 (they stay on v1).
        held(
            Matcher::any()
                .for_op(w2_op)
                .of_kind(MsgKind::PutData)
                .to_node(ServerId(0)),
        ),
        held(
            Matcher::any()
                .for_op(w2_op)
                .of_kind(MsgKind::PutData)
                .to_node(ServerId(1)),
        ),
    ];
    // Hold read responses from two fresh servers so the reader's n − f
    // responses contain as few v2 elements as possible.
    let read_op = OpId::new(ReaderId(0), 1);
    for sid in [ServerId((n - 4) as u16), ServerId((n - 3) as u16)] {
        rules.push(held(
            Matcher::any()
                .for_op(read_op)
                .of_kind(MsgKind::Response)
                .from_node(sid),
        ));
    }

    let mut sim = Sim::new(cfg, 7, Box::new(Scripted::over_fixed(rules, HOP)));

    // The Byzantine pair vouches for tag t1 with garbage elements of v1's
    // shape (they never received the real ones).
    let v1 = Value::from("theorem-six-value-1");
    let cols = column_count(v1.len(), k);
    let t1 = Tag::new(1, WriterId(1));
    for (idx, sid) in [byz_a, byz_b].into_iter().enumerate() {
        let garbage = safereg_common::msg::CodedElement {
            index: sid.0,
            value_len: v1.len() as u32,
            data: safereg_common::buf::Bytes::from(vec![0xD5 ^ idx as u8; cols]),
        };
        sim.add_server(Box::new(FixedResponder::new(
            sid,
            t1,
            Payload::Coded(garbage),
        )));
    }
    for sid in cfg.servers() {
        if sid != byz_a && sid != byz_b {
            sim.add_server(Box::new(Correct::new(ServerNode::new_replicated(sid, cfg))));
        }
    }

    sim.add_client(
        ClientDriver::BcsrWriter(BcsrWriter::with_code(WriterId(1), cfg, code.clone())),
        vec![Plan::write_at(0, v1.clone())],
    );
    sim.add_client(
        ClientDriver::BcsrWriter(BcsrWriter::with_code(WriterId(2), cfg, code.clone())),
        vec![Plan::write_at(50, "theorem-six-value-2")],
    );
    sim.add_client(
        ClientDriver::BcsrReader(BcsrReader::with_code(ReaderId(0), cfg, code)),
        vec![Plan::read_at(100)],
    );
    let report = sim.run_until(1_000_000);
    ScenarioResult {
        name: format!("theorem6/n={n},f={f},k={k}"),
        history: sim.history().clone(),
        report,
    }
}

/// A new/old inversion schedule (n = 5, f = 1, all servers correct):
/// `w1` completes everywhere; `w2` is concurrent and reaches only
/// `s0, s1`; reader A sees `{s0, s1, s2, s3}` and returns `v2`; reader B,
/// strictly after A, sees `{s2, s3, s4}` plus held responses and returns
/// `v1` — safe and fresh, but **not atomic**. Demonstrates what the paper
/// trades away by rejecting semi-fast atomicity (§I-A, Georgiou et al.).
pub fn new_old_inversion(protocol: Protocol) -> ScenarioResult {
    assert!(
        matches!(protocol, Protocol::Bsr | Protocol::BsrH),
        "the inversion schedule targets one-shot replicated reads"
    );
    let cfg = QuorumConfig::new(5, 1).expect("n=5, f=1");
    let w2_op = OpId::new(WriterId(2), 1);
    let read_b = OpId::new(ReaderId(1), 1);

    let mut rules = Vec::new();
    // w2's put-data reaches only s0 and s1.
    for sid in [ServerId(2), ServerId(3), ServerId(4)] {
        rules.push(held(
            Matcher::any()
                .for_op(w2_op)
                .of_kind(MsgKind::PutData)
                .to_node(sid),
        ));
    }
    // Reader B never hears from s0; its quorum is {s1, s2, s3, s4}, where
    // only s1 vouches for the new pair — one witness is not enough.
    rules.push(held(
        Matcher::any()
            .for_op(read_b)
            .of_kind(MsgKind::Response)
            .from_node(ServerId(0)),
    ));
    let mut sim = Sim::new(cfg, 11, Box::new(Scripted::over_fixed(rules, HOP)));
    for sid in cfg.servers() {
        sim.add_server(Box::new(Correct::new(ServerNode::new_replicated(sid, cfg))));
    }
    sim.add_client(
        ClientDriver::BsrWriter(BsrWriter::new(WriterId(1), cfg)),
        vec![Plan::write_at(0, "v1")],
    );
    sim.add_client(
        ClientDriver::BsrWriter(BsrWriter::new(WriterId(2), cfg)),
        vec![Plan::write_at(100, "v2")],
    );
    sim.add_client(protocol.reader(ReaderId(0), cfg), vec![Plan::read_at(200)]);
    sim.add_client(protocol.reader(ReaderId(1), cfg), vec![Plan::read_at(300)]);
    let report = sim.run_until(1_000_000);
    ScenarioResult {
        name: format!("new-old-inversion/{}", protocol.name()),
        history: sim.history().clone(),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::history::OpKind;

    fn read_outcome(history: &History) -> (Value, Tag) {
        let read = history.completed_reads().next().expect("read completed");
        match &read.kind {
            OpKind::Read {
                returned,
                returned_tag,
            } => (returned.clone().unwrap(), returned_tag.unwrap()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn theorem3_bsr_returns_v0_despite_completed_write() {
        let result = theorem3(Protocol::Bsr);
        let (value, tag) = read_outcome(&result.history);
        assert!(value.is_initial(), "BSR read returns v0 (the violation)");
        assert_eq!(tag, Tag::ZERO);
        // w1 completed before the read began.
        let w1 = result
            .history
            .completed_writes()
            .next()
            .expect("w1 completed");
        let read = result.history.completed_reads().next().unwrap();
        assert!(w1.precedes(read));
    }

    #[test]
    fn theorem3_variants_survive_the_same_schedule() {
        for protocol in [Protocol::BsrH, Protocol::Bsr2p] {
            let result = theorem3(protocol);
            let (value, tag) = read_outcome(&result.history);
            assert_eq!(
                value.as_bytes(),
                b"v1",
                "{} recovers the completed write",
                protocol.name()
            );
            assert_eq!(tag, Tag::new(1, WriterId(1)));
        }
    }

    #[test]
    fn theorem5_underprovisioned_returns_superseded_value() {
        let result = theorem5(false);
        let (value, _) = read_outcome(&result.history);
        assert_eq!(value.as_bytes(), b"v1", "n = 4f: the read resurrects v1");
        // Both writes completed, in order — so returning v1 violates safety.
        let writes: Vec<_> = result.history.completed_writes().collect();
        assert_eq!(writes.len(), 2);
    }

    #[test]
    fn theorem5_at_the_bound_is_safe() {
        let result = theorem5(true);
        let (value, _) = read_outcome(&result.history);
        assert_eq!(
            value.as_bytes(),
            b"v2",
            "n = 4f + 1: the same adversary fails"
        );
    }

    #[test]
    fn theorem6_underprovisioned_cannot_decode() {
        let result = theorem6(false);
        let (value, tag) = read_outcome(&result.history);
        assert!(value.is_initial(), "n = 5f: decode fails, v0 returned");
        assert_eq!(tag, Tag::ZERO);
        assert_eq!(result.history.completed_writes().count(), 2);
    }

    #[test]
    fn theorem6_at_the_bound_is_safe() {
        let result = theorem6(true);
        let (value, _) = read_outcome(&result.history);
        assert_eq!(value.as_bytes(), b"theorem-six-value-2");
    }

    #[test]
    fn inversion_schedule_produces_the_inversion() {
        for protocol in [Protocol::Bsr, Protocol::BsrH] {
            let result = new_old_inversion(protocol);
            let reads: Vec<(Value, Tag)> = result
                .history
                .completed_reads()
                .map(|r| match &r.kind {
                    OpKind::Read {
                        returned: Some(v),
                        returned_tag: Some(t),
                    } => (v.clone(), *t),
                    other => panic!("unexpected {other:?}"),
                })
                .collect();
            assert_eq!(reads.len(), 2, "{}", protocol.name());
            assert_eq!(reads[0].0.as_bytes(), b"v2", "reader A sees the new value");
            assert_eq!(
                reads[1].0.as_bytes(),
                b"v1",
                "reader B regresses to the old one"
            );
            assert!(reads[1].1 < reads[0].1, "that is a new/old inversion");
        }
    }
}
