//! The discrete-event simulation engine.
//!
//! [`Sim`] owns the event queue, the server behaviors, the client actors
//! and the recorded [`History`]. Determinism: all scheduling decisions
//! derive from the seed and the insertion order, so a run is exactly
//! reproducible.

use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use safereg_common::codec::Wire;
use safereg_common::config::QuorumConfig;
use safereg_common::history::{History, OpHandle};
use safereg_common::ids::{ClientId, NodeId, ServerId};
use safereg_common::msg::{Envelope, Message, OpId};
use safereg_common::rng::DetRng;
use safereg_core::op::{ClientOp, OpOutput};

use crate::behavior::ServerBehavior;
use crate::delay::{op_of, DelayPolicy};
use crate::driver::{Action, ClientDriver, Plan, StartRule};
use crate::event::{Event, EventKind, SimTime};

/// Safety valve: a simulation aborts after this many events (a protocol
/// bug that floods messages would otherwise loop forever).
const MAX_EVENTS: u64 = 20_000_000;

struct Actor {
    driver: ClientDriver,
    plans: VecDeque<Plan>,
    current: Option<InFlight>,
}

struct InFlight {
    op: Box<dyn ClientOp>,
    handle: OpHandle,
}

/// Aggregate results of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Simulated time of the last processed event.
    pub end_time: SimTime,
    /// Events processed.
    pub events: u64,
    /// Messages sent (all kinds).
    pub messages: u64,
    /// Wire bytes sent (sum of encoded message sizes).
    pub bytes: u64,
    /// Operations that completed.
    pub completed_ops: usize,
    /// Operations still incomplete at the end (starved or still planned).
    pub incomplete_ops: usize,
}

/// A deterministic simulation of one deployment.
pub struct Sim {
    cfg: QuorumConfig,
    time: SimTime,
    seq: u64,
    events: u64,
    queue: BinaryHeap<Event>,
    rng: DetRng,
    delay: Box<dyn DelayPolicy>,
    servers: BTreeMap<ServerId, Box<dyn ServerBehavior>>,
    actors: BTreeMap<ClientId, Actor>,
    history: History,
    /// Maps live operations to their history handles for cost accounting.
    op_handles: BTreeMap<OpId, OpHandle>,
    messages: u64,
    bytes: u64,
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("cfg", &self.cfg)
            .field("time", &self.time)
            .field("servers", &self.servers.len())
            .field("clients", &self.actors.len())
            .finish()
    }
}

impl Sim {
    /// Creates a simulation with the given delay policy and seed.
    pub fn new(cfg: QuorumConfig, seed: u64, delay: Box<dyn DelayPolicy>) -> Self {
        Sim {
            cfg,
            time: 0,
            seq: 0,
            events: 0,
            queue: BinaryHeap::new(),
            rng: DetRng::seed_from(seed),
            delay,
            servers: BTreeMap::new(),
            actors: BTreeMap::new(),
            history: History::new(),
            op_handles: BTreeMap::new(),
            messages: 0,
            bytes: 0,
        }
    }

    /// The deployment configuration.
    pub fn config(&self) -> &QuorumConfig {
        &self.cfg
    }

    /// Installs a server behavior.
    ///
    /// # Panics
    ///
    /// Panics if a behavior for the same server is already installed.
    pub fn add_server(&mut self, behavior: Box<dyn ServerBehavior>) {
        let id = behavior.id();
        let prev = self.servers.insert(id, behavior);
        assert!(prev.is_none(), "duplicate behavior for {id}");
    }

    /// Installs a client with its operation plan. The first plan entry is
    /// scheduled immediately (absolute `At` or `AfterPrevious` measured
    /// from time 0).
    pub fn add_client(&mut self, driver: ClientDriver, plans: Vec<Plan>) {
        let id = driver.client_id();
        let actor = Actor {
            driver,
            plans: plans.into(),
            current: None,
        };
        let first_start = actor.plans.front().map(|p| p.start);
        let prev = self.actors.insert(id, actor);
        assert!(prev.is_none(), "duplicate client {id}");
        if let Some(start) = first_start {
            let at = match start {
                StartRule::At(t) => t,
                StartRule::AfterPrevious { think } => think,
            };
            self.push_event(at, EventKind::Invoke(id));
        }
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { at, seq, kind });
    }

    /// Sends an envelope through the delay policy, with cost accounting.
    fn send(&mut self, env: Envelope) {
        let wire = env.msg.wire_len() as u64;
        self.messages += 1;
        self.bytes += wire;
        if let Some(op) = op_of(&env.msg) {
            if let Some(handle) = self.op_handles.get(&op) {
                self.history.add_cost(*handle, 0, 1, wire);
            }
        }
        let delay = self.delay.delay(self.time, &env, &mut self.rng);
        let at = self.time.saturating_add(delay.0.max(1));
        self.push_event(at, EventKind::Deliver(env));
    }

    fn send_all(&mut self, envs: Vec<Envelope>) {
        for env in envs {
            self.send(env);
        }
    }

    /// Runs until the queue drains (or the event cap trips).
    pub fn run(&mut self) -> RunReport {
        self.run_until(SimTime::MAX)
    }

    /// Runs until no event remains at or before `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> RunReport {
        while let Some(next_at) = self.queue.peek().map(|e| e.at) {
            if next_at > deadline {
                break;
            }
            let event = self.queue.pop().expect("peeked");
            self.time = event.at;
            self.events += 1;
            assert!(
                self.events <= MAX_EVENTS,
                "event cap exceeded: runaway simulation"
            );
            match event.kind {
                EventKind::Invoke(client) => self.invoke(client),
                EventKind::Deliver(env) => self.deliver(env),
            }
        }
        self.report()
    }

    fn invoke(&mut self, client: ClientId) {
        let actor = self
            .actors
            .get_mut(&client)
            .expect("invoke for unknown client");
        assert!(
            actor.current.is_none(),
            "client {client} invoked while an operation is in flight (plan overlap)"
        );
        let plan = match actor.plans.pop_front() {
            Some(p) => p,
            None => return,
        };
        let mut op = actor.driver.begin(&plan.action);
        let op_id = op.op_id();
        let handle = match &plan.action {
            Action::Write(v) => self.history.begin_write(op_id, v.clone(), self.time),
            Action::Read => self.history.begin_read(op_id, self.time),
        };
        self.op_handles.insert(op_id, handle);
        let first = op.start();
        actor.current = Some(InFlight { op, handle });
        self.send_all(first);
    }

    fn deliver(&mut self, env: Envelope) {
        match env.dst {
            NodeId::Server(sid) => {
                let out = match self.servers.get_mut(&sid) {
                    Some(behavior) => behavior.on_envelope(self.time, &env, &mut self.rng),
                    None => Vec::new(), // no such server: message falls on the floor
                };
                self.send_all(out);
            }
            NodeId::Client(cid) => {
                let msg = match &env.msg {
                    Message::ToClient(m) => m.clone(),
                    _ => return, // only server responses reach clients
                };
                let from = match env.src.as_server() {
                    Some(s) => s,
                    None => return,
                };
                let actor = match self.actors.get_mut(&cid) {
                    Some(a) => a,
                    None => return,
                };
                let inflight = match &mut actor.current {
                    Some(f) => f,
                    None => return, // straggler for a finished operation
                };
                let follow_up = inflight.op.on_message(from, &msg);
                let done = inflight.op.output();
                // Borrow of actor ends here; route follow-ups and completion.
                if let Some(output) = done {
                    let finished = actor.current.take().expect("in flight");
                    let rounds = finished.op.rounds();
                    let op_id = finished.op.op_id();
                    actor.driver.absorb(&output);
                    // Schedule the next plan.
                    let next = actor.plans.front().map(|p| p.start);
                    let now = self.time;
                    if let Some(start) = next {
                        let at = match start {
                            StartRule::At(t) => t.max(now + 1),
                            StartRule::AfterPrevious { think } => now + think.max(1),
                        };
                        self.push_event(at, EventKind::Invoke(cid));
                    }
                    // Record completion.
                    self.history.add_cost(finished.handle, rounds, 0, 0);
                    match output {
                        OpOutput::Written { tag } => {
                            self.history.complete_write(finished.handle, tag, now);
                        }
                        OpOutput::Read { value, tag } => {
                            self.history.complete_read(finished.handle, value, tag, now);
                        }
                    }
                    self.op_handles.remove(&op_id);
                }
                self.send_all(follow_up);
            }
        }
    }

    fn report(&self) -> RunReport {
        let completed = self
            .history
            .records()
            .iter()
            .filter(|r| r.is_complete())
            .count();
        RunReport {
            end_time: self.time,
            events: self.events,
            messages: self.messages,
            bytes: self.bytes,
            completed_ops: completed,
            incomplete_ops: self.history.len() - completed,
        }
    }

    /// The recorded execution history (for the checkers).
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Total payload bytes currently stored across servers (E4).
    pub fn total_storage_bytes(&self) -> u64 {
        self.servers
            .values()
            .map(|b| b.storage_bytes() as u64)
            .sum()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{Correct, Silent};
    use crate::delay::{FixedDelay, UniformDelay};
    use crate::driver::Plan;
    use safereg_common::history::OpKind;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_common::tag::Tag;
    use safereg_core::client::{BsrReader, BsrWriter};
    use safereg_core::server::ServerNode;

    fn bsr_sim(f: usize, seed: u64, byz_silent: usize) -> Sim {
        let cfg = QuorumConfig::minimal_bsr(f).unwrap();
        let mut sim = Sim::new(cfg, seed, Box::new(FixedDelay { hop: 10 }));
        for sid in cfg.servers() {
            if (sid.0 as usize) < byz_silent {
                sim.add_server(Box::new(Silent::new(sid)));
            } else {
                sim.add_server(Box::new(Correct::new(ServerNode::new_replicated(sid, cfg))));
            }
        }
        sim
    }

    #[test]
    fn write_then_read_roundtrip_on_fixed_network() {
        let mut sim = bsr_sim(1, 1, 0);
        let cfg = *sim.config();
        sim.add_client(
            ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
            vec![Plan::write_at(0, "hello")],
        );
        sim.add_client(
            ClientDriver::BsrReader(BsrReader::new(ReaderId(0), cfg)),
            vec![Plan::read_at(100)],
        );
        let report = sim.run();
        assert_eq!(report.completed_ops, 2);
        assert_eq!(report.incomplete_ops, 0);

        let read = sim.history().completed_reads().next().unwrap();
        match &read.kind {
            OpKind::Read {
                returned,
                returned_tag,
            } => {
                assert_eq!(returned.as_ref().unwrap().as_bytes(), b"hello");
                assert_eq!(returned_tag.unwrap(), Tag::new(1, WriterId(0)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Write: 2 rounds at 10 ticks/hop = 40 ticks; read: 1 round = 20.
        let write = sim.history().completed_writes().next().unwrap();
        assert_eq!(write.latency(), Some(40));
        assert_eq!(read.latency(), Some(20));
        assert_eq!(write.rounds, 2);
        assert_eq!(read.rounds, 1);
    }

    #[test]
    fn liveness_with_f_silent_servers() {
        let mut sim = bsr_sim(1, 2, 1); // one silent Byzantine server
        let cfg = *sim.config();
        sim.add_client(
            ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
            vec![Plan::write_at(0, "v")],
        );
        sim.add_client(
            ClientDriver::BsrReader(BsrReader::new(ReaderId(0), cfg)),
            vec![Plan::read_at(200)],
        );
        let report = sim.run();
        assert_eq!(
            report.completed_ops, 2,
            "Theorem 1: live with at most f faulty"
        );
    }

    #[test]
    fn no_liveness_beyond_f_silent_servers() {
        let mut sim = bsr_sim(1, 3, 2); // two silent servers exceed f = 1
        let cfg = *sim.config();
        sim.add_client(
            ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
            vec![Plan::write_at(0, "v")],
        );
        let report = sim.run();
        assert_eq!(report.completed_ops, 0, "cannot gather n - f responses");
        assert_eq!(report.incomplete_ops, 1);
    }

    #[test]
    fn determinism_same_seed_same_history() {
        let run = |seed| {
            let mut sim = bsr_sim(1, seed, 0);
            let cfg = *sim.config();
            sim.add_client(
                ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
                vec![
                    Plan::write_at(0, "a"),
                    Plan {
                        start: StartRule::AfterPrevious { think: 5 },
                        action: Action::Write(Value::from("b")),
                    },
                ],
            );
            sim.add_client(
                ClientDriver::BsrReader(BsrReader::new(ReaderId(0), cfg)),
                vec![
                    Plan::read_at(33),
                    Plan {
                        start: StartRule::AfterPrevious { think: 7 },
                        action: Action::Read,
                    },
                ],
            );
            let report = sim.run();
            (report, sim.history().clone())
        };
        // Use a jittery network so the rng actually matters.
        let jittery = |seed| {
            let cfg = QuorumConfig::minimal_bsr(1).unwrap();
            let mut sim = Sim::new(cfg, seed, Box::new(UniformDelay { lo: 1, hi: 50 }));
            for sid in cfg.servers() {
                sim.add_server(Box::new(Correct::new(ServerNode::new_replicated(sid, cfg))));
            }
            sim.add_client(
                ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
                vec![Plan::write_at(0, "a")],
            );
            sim.add_client(
                ClientDriver::BsrReader(BsrReader::new(ReaderId(0), cfg)),
                vec![Plan::read_at(3)],
            );
            let report = sim.run();
            (report, sim.history().clone())
        };
        assert_eq!(run(7), run(7));
        assert_eq!(jittery(9), jittery(9));
        assert_ne!(jittery(9).0.end_time, jittery(10).0.end_time);
    }

    use safereg_common::value::Value;

    #[test]
    fn closed_loop_plans_chain() {
        let mut sim = bsr_sim(1, 4, 0);
        let cfg = *sim.config();
        let plans: Vec<Plan> = (0..5)
            .map(|_| Plan {
                start: StartRule::AfterPrevious { think: 3 },
                action: Action::Read,
            })
            .collect();
        sim.add_client(
            ClientDriver::BsrReader(BsrReader::new(ReaderId(0), cfg)),
            plans,
        );
        let report = sim.run();
        assert_eq!(report.completed_ops, 5);
    }

    #[test]
    fn run_until_stops_at_the_deadline_and_resumes() {
        let mut sim = bsr_sim(1, 8, 0);
        let cfg = *sim.config();
        sim.add_client(
            ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
            vec![Plan::write_at(0, "resumable")],
        );
        // Stop mid-write: the get-tag responses land at t = 20, the write
        // needs t = 40.
        let partial = sim.run_until(25);
        assert_eq!(partial.completed_ops, 0);
        assert_eq!(partial.incomplete_ops, 1);
        assert!(sim.now() <= 25);
        // Resuming finishes the operation deterministically.
        let done = sim.run();
        assert_eq!(done.completed_ops, 1);
        assert_eq!(done.incomplete_ops, 0);
    }

    #[test]
    fn cost_accounting_attributes_messages() {
        let mut sim = bsr_sim(1, 5, 0);
        let cfg = *sim.config();
        sim.add_client(
            ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
            vec![Plan::write_at(0, "payload")],
        );
        let report = sim.run();
        // Write: 5 queries + 5 tag responses + 5 puts + 5 acks = 20 msgs.
        assert_eq!(report.messages, 20);
        let write = sim.history().completed_writes().next().unwrap();
        assert_eq!(write.msgs, 20);
        assert!(write.bytes > 0);
        assert_eq!(report.bytes, write.bytes);
    }

    #[test]
    fn storage_accounting_via_behaviors() {
        let mut sim = bsr_sim(1, 6, 0);
        let cfg = *sim.config();
        sim.add_client(
            ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
            vec![Plan::write_at(0, "1234")],
        );
        sim.run();
        assert_eq!(sim.total_storage_bytes(), 5 * 4, "n replicas of 4 bytes");
    }
}
