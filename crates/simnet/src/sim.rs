//! The discrete-event simulation engine.
//!
//! [`Sim`] owns the event queue, the server behaviors, the client actors
//! and the recorded [`History`]. Determinism: all scheduling decisions
//! derive from the seed and the insertion order, so a run is exactly
//! reproducible.

use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::Arc;

use safereg_common::codec::Wire;
use safereg_common::config::QuorumConfig;
use safereg_common::history::{History, OpHandle, ReadPath};
use safereg_common::ids::{ClientId, NodeId, ServerId};
use safereg_common::msg::{Envelope, Message, OpId};
use safereg_common::rng::DetRng;
use safereg_common::trace::{Phase, TraceCtx};
use safereg_core::op::{ClientOp, OpOutput};
use safereg_obs::metrics::{Registry, Snapshot};
use safereg_obs::span::{self, SlowEvidence, SpanKind, SpanLog, SpanRecord};
use safereg_obs::trace::{self, MsgClass, NullRecorder, Recorder};

use crate::behavior::ServerBehavior;
use crate::delay::{op_of, DelayPolicy};
use crate::driver::{Action, ClientDriver, Plan, StartRule};
use crate::event::{Event, EventKind, SimTime};

/// Safety valve: a simulation aborts after this many events (a protocol
/// bug that floods messages would otherwise loop forever).
const MAX_EVENTS: u64 = 20_000_000;

struct Actor {
    driver: ClientDriver,
    plans: VecDeque<Plan>,
    current: Option<InFlight>,
}

struct InFlight {
    op: Box<dyn ClientOp>,
    handle: OpHandle,
    /// When the operation's current round started, for quorum-wait timing.
    phase_start: SimTime,
}

/// Messages one server received and sent during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerTally {
    /// Messages delivered to the server.
    pub received: u64,
    /// Messages the server emitted in response.
    pub sent: u64,
}

/// Aggregate results of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Simulated time of the last processed event.
    pub end_time: SimTime,
    /// Events processed.
    pub events: u64,
    /// Messages sent (all kinds).
    pub messages: u64,
    /// Wire bytes sent (sum of encoded message sizes).
    pub bytes: u64,
    /// Operations that completed.
    pub completed_ops: usize,
    /// Operations still incomplete at the end (starved or still planned).
    pub incomplete_ops: usize,
    /// Reads that completed on the paper's fast path (freshly witnessed
    /// value on the protocol's normal rounds).
    pub fast_reads: u64,
    /// Reads that completed on the slow fallback path.
    pub slow_reads: u64,
    /// Messages delivered after the operation they belonged to had already
    /// completed (stragglers — including scripted holds that landed before
    /// the deadline).
    pub late_messages: u64,
    /// Messages still in flight when the report was taken (held past the
    /// deadline or orphaned by a `run_until` cut).
    pub undelivered_messages: u64,
    /// Per-server message tallies.
    pub per_server: BTreeMap<ServerId, ServerTally>,
}

impl RunReport {
    /// Fraction of completed reads that took the fast path, or `None` when
    /// the run classified no reads.
    pub fn fast_read_ratio(&self) -> Option<f64> {
        let total = self.fast_reads + self.slow_reads;
        (total > 0).then(|| self.fast_reads as f64 / total as f64)
    }
}

/// A deterministic simulation of one deployment.
pub struct Sim {
    cfg: QuorumConfig,
    time: SimTime,
    seq: u64,
    events: u64,
    queue: BinaryHeap<Event>,
    rng: DetRng,
    delay: Box<dyn DelayPolicy>,
    servers: BTreeMap<ServerId, Box<dyn ServerBehavior>>,
    actors: BTreeMap<ClientId, Actor>,
    history: History,
    /// Maps live operations to their history handles for cost accounting.
    op_handles: BTreeMap<OpId, OpHandle>,
    messages: u64,
    bytes: u64,
    /// Per-run metrics, stamped in virtual time so runs reproduce
    /// bit-for-bit from their seed.
    registry: Arc<Registry>,
    recorder: Arc<dyn Recorder>,
    /// Causal span capture: when set, sampled operations emit
    /// [`SpanRecord`]s stamped with **virtual ticks** into the log, so an
    /// identically-seeded run reproduces the trace stream byte for byte.
    spans: Option<(Arc<SpanLog>, u16)>,
    fast_reads: u64,
    slow_reads: u64,
    late_messages: u64,
    per_server: BTreeMap<ServerId, ServerTally>,
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("cfg", &self.cfg)
            .field("time", &self.time)
            .field("servers", &self.servers.len())
            .field("clients", &self.actors.len())
            .finish()
    }
}

impl Sim {
    /// Creates a simulation with the given delay policy and seed.
    pub fn new(cfg: QuorumConfig, seed: u64, delay: Box<dyn DelayPolicy>) -> Self {
        // Eager registration: every `sim.*` series a run can emit exists
        // (at zero) from the first snapshot, so rendered JSONL dumps keep
        // one schema regardless of which paths a particular seed, protocol
        // or fault mix happens to exercise.
        let registry = Arc::new(Registry::new());
        for class in MsgClass::ALL {
            registry.counter(&format!("sim.sent.{class}"));
            registry.counter(&format!("sim.sent_bytes.{class}"));
        }
        registry.counter("sim.msgs.late");
        registry.counter("sim.reads.fast");
        registry.counter("sim.reads.slow");
        registry.counter("sim.read.validation_failures");
        registry.histogram("sim.quorum_wait");
        registry.histogram("sim.read.latency.fast");
        registry.histogram("sim.read.latency.slow");
        registry.histogram("sim.write.latency");
        registry.gauge("sim.read.fast_ratio_permille");
        Sim {
            cfg,
            time: 0,
            seq: 0,
            events: 0,
            queue: BinaryHeap::new(),
            rng: DetRng::seed_from(seed),
            delay,
            servers: BTreeMap::new(),
            actors: BTreeMap::new(),
            history: History::new(),
            op_handles: BTreeMap::new(),
            messages: 0,
            bytes: 0,
            registry,
            recorder: Arc::new(NullRecorder),
            spans: None,
            fast_reads: 0,
            slow_reads: 0,
            late_messages: 0,
            per_server: BTreeMap::new(),
        }
    }

    /// The run's metric registry (virtual-time, owned by this simulation).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// A deterministic snapshot of the run's metrics.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Installs an event recorder (e.g. an [`safereg_obs::RingRecorder`]).
    /// Events are stamped with virtual ticks.
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = recorder;
    }

    /// Installs a causal span log: operations whose derived trace id
    /// passes `sample_permille` head-sampling emit [`SpanRecord`]s into
    /// `log`, stamped with virtual ticks (the deterministic half of the
    /// caller-stamped clock rule — the span module itself never reads a
    /// clock, so a seed reproduces its trace stream bit for bit).
    pub fn set_span_log(&mut self, log: Arc<SpanLog>, sample_permille: u16) {
        self.spans = Some((log, sample_permille));
    }

    /// The trace context of `op` under the installed sampling rate, or
    /// [`TraceCtx::NONE`] when no span log is installed. Pure: every call
    /// site derives the same context from the same operation id.
    fn trace_of(&self, op: &OpId) -> TraceCtx {
        match &self.spans {
            Some((_, permille)) => TraceCtx::for_op(op, *permille),
            None => TraceCtx::NONE,
        }
    }

    fn emit_span(&self, rec: SpanRecord) {
        if let Some((log, _)) = &self.spans {
            use safereg_obs::span::SpanSink;
            log.emit(rec);
        }
    }

    /// The deployment configuration.
    pub fn config(&self) -> &QuorumConfig {
        &self.cfg
    }

    /// Installs a server behavior.
    ///
    /// # Panics
    ///
    /// Panics if a behavior for the same server is already installed.
    pub fn add_server(&mut self, behavior: Box<dyn ServerBehavior>) {
        let id = behavior.id();
        let prev = self.servers.insert(id, behavior);
        assert!(prev.is_none(), "duplicate behavior for {id}");
        self.per_server.insert(id, ServerTally::default());
    }

    /// Installs a client with its operation plan. The first plan entry is
    /// scheduled immediately (absolute `At` or `AfterPrevious` measured
    /// from time 0).
    pub fn add_client(&mut self, driver: ClientDriver, plans: Vec<Plan>) {
        let id = driver.client_id();
        let actor = Actor {
            driver,
            plans: plans.into(),
            current: None,
        };
        let first_start = actor.plans.front().map(|p| p.start);
        let prev = self.actors.insert(id, actor);
        assert!(prev.is_none(), "duplicate client {id}");
        if let Some(start) = first_start {
            let at = match start {
                StartRule::At(t) => t,
                StartRule::AfterPrevious { think } => think,
            };
            self.push_event(at, EventKind::Invoke(id));
        }
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { at, seq, kind });
    }

    /// Sends an envelope through the delay policy, with cost accounting.
    fn send(&mut self, env: Envelope) {
        let wire = env.msg.wire_len() as u64;
        self.messages += 1;
        self.bytes += wire;
        if let Some(op) = op_of(&env.msg) {
            if let Some(handle) = self.op_handles.get(&op) {
                self.history.add_cost(*handle, 0, 1, wire);
            }
        }
        let class = MsgClass::of(&env.msg);
        self.registry.counter(&format!("sim.sent.{class}")).inc();
        self.registry
            .counter(&format!("sim.sent_bytes.{class}"))
            .add(wire);
        if let NodeId::Server(src) = env.src {
            if let Some(tally) = self.per_server.get_mut(&src) {
                tally.sent += 1;
            }
        }
        self.recorder.record(trace::Event {
            at: self.time,
            kind: trace::EventKind::MsgSent { class, bytes: wire },
        });
        let delay = self.delay.delay(self.time, &env, &mut self.rng);
        let at = self.time.saturating_add(delay.0.max(1));
        // One span segment per sampled message, its duration the link
        // delay the policy just rolled: client requests are `rpc` legs at
        // hop 0, server responses `reply` legs at hop 1.
        if self.spans.is_some() {
            if let Some(op) = op_of(&env.msg) {
                let root = self.trace_of(&op);
                if root.is_sampled() {
                    let (ctx, node) = match env.src {
                        NodeId::Client(c) => (root.with_phase(Phase::Rpc), span::node::client(c)),
                        NodeId::Server(s) => (root.hopped(Phase::Reply), span::node::server(s.0)),
                    };
                    self.emit_span(SpanRecord::new(
                        ctx,
                        SpanKind::Segment,
                        self.time,
                        at - self.time,
                        node,
                        wire as u32,
                    ));
                }
            }
        }
        self.push_event(at, EventKind::Deliver(env));
    }

    fn send_all(&mut self, envs: Vec<Envelope>) {
        for env in envs {
            self.send(env);
        }
    }

    /// Runs until the queue drains (or the event cap trips).
    pub fn run(&mut self) -> RunReport {
        self.run_until(SimTime::MAX)
    }

    /// Runs until no event remains at or before `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> RunReport {
        while let Some(next_at) = self.queue.peek().map(|e| e.at) {
            if next_at > deadline {
                break;
            }
            let event = self.queue.pop().expect("peeked");
            self.time = event.at;
            self.events += 1;
            assert!(
                self.events <= MAX_EVENTS,
                "event cap exceeded: runaway simulation"
            );
            match event.kind {
                EventKind::Invoke(client) => self.invoke(client),
                EventKind::Deliver(env) => self.deliver(env),
            }
        }
        self.report()
    }

    fn invoke(&mut self, client: ClientId) {
        let actor = self
            .actors
            .get_mut(&client)
            .expect("invoke for unknown client");
        assert!(
            actor.current.is_none(),
            "client {client} invoked while an operation is in flight (plan overlap)"
        );
        let plan = match actor.plans.pop_front() {
            Some(p) => p,
            None => return,
        };
        let mut op = actor.driver.begin(&plan.action);
        let op_id = op.op_id();
        let handle = match &plan.action {
            Action::Write(v) => self.history.begin_write(op_id, v.clone(), self.time),
            Action::Read => self.history.begin_read(op_id, self.time),
        };
        self.op_handles.insert(op_id, handle);
        self.recorder.record(trace::Event {
            at: self.time,
            kind: trace::EventKind::OpInvoked {
                op: op_id,
                write: matches!(plan.action, Action::Write(_)),
            },
        });
        // Field-disjoint from the live `actor` borrow, so inline rather
        // than going through `trace_of`/`emit_span`.
        if let Some((log, permille)) = &self.spans {
            use safereg_obs::span::SpanSink;
            let root = TraceCtx::for_op(&op_id, *permille);
            if root.is_sampled() {
                log.emit(SpanRecord::new(
                    root.with_phase(Phase::ClientOp),
                    SpanKind::Start,
                    self.time,
                    0,
                    span::node::client(client),
                    0,
                ));
            }
        }
        let first = op.start();
        actor.current = Some(InFlight {
            op,
            handle,
            phase_start: self.time,
        });
        self.send_all(first);
    }

    /// Counts a delivery that arrived after its operation finished.
    fn note_late(&mut self, env: &Envelope) {
        self.late_messages += 1;
        let class = MsgClass::of(&env.msg);
        self.registry.counter("sim.msgs.late").inc();
        self.recorder.record(trace::Event {
            at: self.time,
            kind: trace::EventKind::MsgLate { class },
        });
    }

    fn deliver(&mut self, env: Envelope) {
        match env.dst {
            NodeId::Server(sid) => {
                if let Some(tally) = self.per_server.get_mut(&sid) {
                    tally.received += 1;
                }
                let out = match self.servers.get_mut(&sid) {
                    Some(behavior) => behavior.on_envelope(self.time, &env, &mut self.rng),
                    None => Vec::new(), // no such server: message falls on the floor
                };
                self.send_all(out);
            }
            NodeId::Client(cid) => {
                let msg = match &env.msg {
                    Message::ToClient(m) => m.clone(),
                    _ => return, // only server responses reach clients
                };
                let from = match env.src.as_server() {
                    Some(s) => s,
                    None => return,
                };
                // A response is a straggler when the client has nothing in
                // flight, or the in-flight operation is not the one being
                // answered (the answered one completed earlier and would
                // ignore the message anyway).
                let late = match self.actors.get(&cid) {
                    Some(a) => match &a.current {
                        Some(f) => f.op.op_id() != msg.op(),
                        None => true,
                    },
                    None => return,
                };
                if late {
                    self.note_late(&env);
                    return;
                }
                let actor = self.actors.get_mut(&cid).expect("checked above");
                let inflight = actor.current.as_mut().expect("checked above");
                let rounds_before = inflight.op.rounds();
                let follow_up = inflight.op.on_message(from, &msg);
                let done = inflight.op.output();
                // A new round started: the previous quorum wait is over.
                if done.is_none() && inflight.op.rounds() > rounds_before {
                    let wait = self.time - inflight.phase_start;
                    inflight.phase_start = self.time;
                    self.registry.histogram("sim.quorum_wait").record(wait);
                }
                // Borrow of actor ends here; route follow-ups and completion.
                if let Some(output) = done {
                    let finished = actor.current.take().expect("in flight");
                    let rounds = finished.op.rounds();
                    let op_id = finished.op.op_id();
                    actor.driver.absorb(&output);
                    // Schedule the next plan.
                    let next = actor.plans.front().map(|p| p.start);
                    let now = self.time;
                    if let Some(start) = next {
                        let at = match start {
                            StartRule::At(t) => t.max(now + 1),
                            StartRule::AfterPrevious { think } => now + think.max(1),
                        };
                        self.push_event(at, EventKind::Invoke(cid));
                    }
                    // Record completion.
                    self.history.add_cost(finished.handle, rounds, 0, 0);
                    match output {
                        OpOutput::Written { tag } => {
                            self.history.complete_write(finished.handle, tag, now);
                        }
                        OpOutput::Read { value, tag } => {
                            self.history.complete_read(finished.handle, value, tag, now);
                        }
                    }
                    self.op_handles.remove(&op_id);
                    // Semi-fast-path accounting (virtual-time metrics).
                    let latency = self.history.get(finished.handle).latency().unwrap_or(0);
                    let path = finished.op.read_path();
                    let failures = finished.op.validation_failures();
                    self.registry
                        .histogram("sim.quorum_wait")
                        .record(now - finished.phase_start);
                    match path {
                        Some(ReadPath::Fast) => {
                            self.fast_reads += 1;
                            self.registry.counter("sim.reads.fast").inc();
                            self.registry
                                .histogram("sim.read.latency.fast")
                                .record(latency);
                        }
                        Some(ReadPath::Slow) => {
                            self.slow_reads += 1;
                            self.registry.counter("sim.reads.slow").inc();
                            self.registry
                                .histogram("sim.read.latency.slow")
                                .record(latency);
                        }
                        None if finished.op.is_write() => {
                            self.registry.histogram("sim.write.latency").record(latency);
                        }
                        None => {} // reads without the fast/slow distinction
                    }
                    if failures > 0 {
                        self.registry
                            .counter("sim.read.validation_failures")
                            .add(u64::from(failures));
                    }
                    self.recorder.record(trace::Event {
                        at: now,
                        kind: trace::EventKind::OpCompleted {
                            op: op_id,
                            rounds,
                            path,
                            validation_failures: failures,
                        },
                    });
                    if let Some((log, permille)) = &self.spans {
                        use safereg_obs::span::SpanSink;
                        let root = TraceCtx::for_op(&op_id, *permille);
                        if root.is_sampled() {
                            // A slow read gets its concrete cause from the
                            // evidence the virtual run can see: failed
                            // validations mean a Byzantine stale ack,
                            // anything else here is the protocol's honest
                            // second phase.
                            let cause = match path {
                                Some(ReadPath::Slow) => {
                                    Some(span::attribute_slow_read(&SlowEvidence {
                                        validation_failures: u64::from(failures),
                                        ..SlowEvidence::default()
                                    }))
                                }
                                _ => None,
                            };
                            let mut rec = SpanRecord::new(
                                root.with_phase(Phase::ClientOp),
                                SpanKind::End,
                                now,
                                latency,
                                span::node::client(cid),
                                rounds,
                            );
                            if let Some(c) = cause {
                                rec = rec.with_cause(c);
                            }
                            log.emit(rec);
                        }
                    }
                }
                self.send_all(follow_up);
            }
        }
    }

    fn report(&self) -> RunReport {
        let completed = self
            .history
            .records()
            .iter()
            .filter(|r| r.is_complete())
            .count();
        let undelivered = self
            .queue
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Deliver(_)))
            .count() as u64;
        // Publish the run's central observable as a gauge so metric dumps
        // carry it without needing the report object.
        if let Some(permille) =
            (self.fast_reads * 1000).checked_div(self.fast_reads + self.slow_reads)
        {
            self.registry
                .gauge("sim.read.fast_ratio_permille")
                .set(permille);
        }
        RunReport {
            end_time: self.time,
            events: self.events,
            messages: self.messages,
            bytes: self.bytes,
            completed_ops: completed,
            incomplete_ops: self.history.len() - completed,
            fast_reads: self.fast_reads,
            slow_reads: self.slow_reads,
            late_messages: self.late_messages,
            undelivered_messages: undelivered,
            per_server: self.per_server.clone(),
        }
    }

    /// The recorded execution history (for the checkers).
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Total payload bytes currently stored across servers (E4).
    pub fn total_storage_bytes(&self) -> u64 {
        self.servers
            .values()
            .map(|b| b.storage_bytes() as u64)
            .sum()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{Correct, Silent};
    use crate::delay::{FixedDelay, UniformDelay};
    use crate::driver::Plan;
    use safereg_common::history::OpKind;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_common::tag::Tag;
    use safereg_core::client::{BsrReader, BsrWriter};
    use safereg_core::server::ServerNode;

    fn bsr_sim(f: usize, seed: u64, byz_silent: usize) -> Sim {
        let cfg = QuorumConfig::minimal_bsr(f).unwrap();
        let mut sim = Sim::new(cfg, seed, Box::new(FixedDelay { hop: 10 }));
        for sid in cfg.servers() {
            if (sid.0 as usize) < byz_silent {
                sim.add_server(Box::new(Silent::new(sid)));
            } else {
                sim.add_server(Box::new(Correct::new(ServerNode::new_replicated(sid, cfg))));
            }
        }
        sim
    }

    #[test]
    fn write_then_read_roundtrip_on_fixed_network() {
        let mut sim = bsr_sim(1, 1, 0);
        let cfg = *sim.config();
        sim.add_client(
            ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
            vec![Plan::write_at(0, "hello")],
        );
        sim.add_client(
            ClientDriver::BsrReader(BsrReader::new(ReaderId(0), cfg)),
            vec![Plan::read_at(100)],
        );
        let report = sim.run();
        assert_eq!(report.completed_ops, 2);
        assert_eq!(report.incomplete_ops, 0);

        let read = sim.history().completed_reads().next().unwrap();
        match &read.kind {
            OpKind::Read {
                returned,
                returned_tag,
            } => {
                assert_eq!(returned.as_ref().unwrap().as_bytes(), b"hello");
                assert_eq!(returned_tag.unwrap(), Tag::new(1, WriterId(0)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Write: 2 rounds at 10 ticks/hop = 40 ticks; read: 1 round = 20.
        let write = sim.history().completed_writes().next().unwrap();
        assert_eq!(write.latency(), Some(40));
        assert_eq!(read.latency(), Some(20));
        assert_eq!(write.rounds, 2);
        assert_eq!(read.rounds, 1);
    }

    #[test]
    fn identically_seeded_runs_emit_identical_span_streams() {
        let run = |seed: u64| {
            let mut sim = bsr_sim(1, seed, 1);
            let cfg = *sim.config();
            let log = Arc::new(SpanLog::new());
            sim.set_span_log(Arc::clone(&log), 1000);
            sim.add_client(
                ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
                vec![Plan::write_at(0, "traced"), Plan::write_at(500, "again")],
            );
            sim.add_client(
                ClientDriver::BsrReader(BsrReader::new(ReaderId(0), cfg)),
                vec![Plan::read_at(100), Plan::read_at(600)],
            );
            sim.run();
            log.render_jsonl()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must reproduce the trace byte for byte");
        assert!(
            a.lines().any(|l| l.contains("\"phase\":\"client_op\"")),
            "root spans present: {a}"
        );
        assert!(
            a.lines().any(|l| l.contains("\"phase\":\"rpc\"")),
            "per-message rpc legs present: {a}"
        );
        // Virtual stamps only: every record's time is a small tick count,
        // not wall-clock microseconds since the epoch.
        let log_sampled_off = {
            let mut sim = bsr_sim(1, 7, 0);
            let cfg = *sim.config();
            let log = Arc::new(SpanLog::new());
            sim.set_span_log(Arc::clone(&log), 0);
            sim.add_client(
                ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
                vec![Plan::write_at(0, "untraced")],
            );
            sim.run();
            log.records().len()
        };
        assert_eq!(log_sampled_off, 0, "permille 0 samples nothing");
    }

    #[test]
    fn liveness_with_f_silent_servers() {
        let mut sim = bsr_sim(1, 2, 1); // one silent Byzantine server
        let cfg = *sim.config();
        sim.add_client(
            ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
            vec![Plan::write_at(0, "v")],
        );
        sim.add_client(
            ClientDriver::BsrReader(BsrReader::new(ReaderId(0), cfg)),
            vec![Plan::read_at(200)],
        );
        let report = sim.run();
        assert_eq!(
            report.completed_ops, 2,
            "Theorem 1: live with at most f faulty"
        );
    }

    #[test]
    fn no_liveness_beyond_f_silent_servers() {
        let mut sim = bsr_sim(1, 3, 2); // two silent servers exceed f = 1
        let cfg = *sim.config();
        sim.add_client(
            ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
            vec![Plan::write_at(0, "v")],
        );
        let report = sim.run();
        assert_eq!(report.completed_ops, 0, "cannot gather n - f responses");
        assert_eq!(report.incomplete_ops, 1);
    }

    #[test]
    fn determinism_same_seed_same_history() {
        let run = |seed| {
            let mut sim = bsr_sim(1, seed, 0);
            let cfg = *sim.config();
            sim.add_client(
                ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
                vec![
                    Plan::write_at(0, "a"),
                    Plan {
                        start: StartRule::AfterPrevious { think: 5 },
                        action: Action::Write(Value::from("b")),
                    },
                ],
            );
            sim.add_client(
                ClientDriver::BsrReader(BsrReader::new(ReaderId(0), cfg)),
                vec![
                    Plan::read_at(33),
                    Plan {
                        start: StartRule::AfterPrevious { think: 7 },
                        action: Action::Read,
                    },
                ],
            );
            let report = sim.run();
            (report, sim.history().clone())
        };
        // Use a jittery network so the rng actually matters.
        let jittery = |seed| {
            let cfg = QuorumConfig::minimal_bsr(1).unwrap();
            let mut sim = Sim::new(cfg, seed, Box::new(UniformDelay { lo: 1, hi: 50 }));
            for sid in cfg.servers() {
                sim.add_server(Box::new(Correct::new(ServerNode::new_replicated(sid, cfg))));
            }
            sim.add_client(
                ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
                vec![Plan::write_at(0, "a")],
            );
            sim.add_client(
                ClientDriver::BsrReader(BsrReader::new(ReaderId(0), cfg)),
                vec![Plan::read_at(3)],
            );
            let report = sim.run();
            (report, sim.history().clone())
        };
        assert_eq!(run(7), run(7));
        assert_eq!(jittery(9), jittery(9));
        assert_ne!(jittery(9).0.end_time, jittery(10).0.end_time);
    }

    use safereg_common::value::Value;

    #[test]
    fn closed_loop_plans_chain() {
        let mut sim = bsr_sim(1, 4, 0);
        let cfg = *sim.config();
        let plans: Vec<Plan> = (0..5)
            .map(|_| Plan {
                start: StartRule::AfterPrevious { think: 3 },
                action: Action::Read,
            })
            .collect();
        sim.add_client(
            ClientDriver::BsrReader(BsrReader::new(ReaderId(0), cfg)),
            plans,
        );
        let report = sim.run();
        assert_eq!(report.completed_ops, 5);
    }

    #[test]
    fn run_until_stops_at_the_deadline_and_resumes() {
        let mut sim = bsr_sim(1, 8, 0);
        let cfg = *sim.config();
        sim.add_client(
            ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
            vec![Plan::write_at(0, "resumable")],
        );
        // Stop mid-write: the get-tag responses land at t = 20, the write
        // needs t = 40.
        let partial = sim.run_until(25);
        assert_eq!(partial.completed_ops, 0);
        assert_eq!(partial.incomplete_ops, 1);
        assert!(sim.now() <= 25);
        // Resuming finishes the operation deterministically.
        let done = sim.run();
        assert_eq!(done.completed_ops, 1);
        assert_eq!(done.incomplete_ops, 0);
    }

    #[test]
    fn cost_accounting_attributes_messages() {
        let mut sim = bsr_sim(1, 5, 0);
        let cfg = *sim.config();
        sim.add_client(
            ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
            vec![Plan::write_at(0, "payload")],
        );
        let report = sim.run();
        // Write: 5 queries + 5 tag responses + 5 puts + 5 acks = 20 msgs.
        assert_eq!(report.messages, 20);
        let write = sim.history().completed_writes().next().unwrap();
        assert_eq!(write.msgs, 20);
        assert!(write.bytes > 0);
        assert_eq!(report.bytes, write.bytes);
    }

    #[test]
    fn quiescent_read_is_fast_in_report_and_metrics() {
        let mut sim = bsr_sim(1, 11, 0);
        let cfg = *sim.config();
        sim.add_client(
            ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
            vec![Plan::write_at(0, "x")],
        );
        sim.add_client(
            ClientDriver::BsrReader(BsrReader::new(ReaderId(0), cfg)),
            vec![Plan::read_at(100), Plan::read_at(200)],
        );
        let report = sim.run();
        assert_eq!((report.fast_reads, report.slow_reads), (2, 0));
        assert_eq!(report.fast_read_ratio(), Some(1.0));
        let snap = sim.metrics_snapshot();
        assert_eq!(snap.counter("sim.reads.fast"), Some(2));
        assert_eq!(snap.gauge("sim.read.fast_ratio_permille"), Some(1000));
        assert_eq!(
            snap.histogram("sim.read.latency.fast").unwrap().count,
            2,
            "both read latencies recorded"
        );
        assert_eq!(snap.histogram("sim.write.latency").unwrap().max, 40);
        assert!(snap.counter("sim.sent.query_data").unwrap() == 10);
    }

    #[test]
    fn per_server_tallies_cover_all_traffic() {
        let mut sim = bsr_sim(1, 12, 0);
        let cfg = *sim.config();
        sim.add_client(
            ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
            vec![Plan::write_at(0, "t")],
        );
        let report = sim.run();
        assert_eq!(report.per_server.len(), 5);
        for tally in report.per_server.values() {
            // Each server gets query-tag + put-data and answers both.
            assert_eq!(
                *tally,
                ServerTally {
                    received: 2,
                    sent: 2
                }
            );
        }
        let received: u64 = report.per_server.values().map(|t| t.received).sum();
        let sent: u64 = report.per_server.values().map(|t| t.sent).sum();
        assert_eq!(received + sent, report.messages);
        assert_eq!(report.undelivered_messages, 0);
        // The fifth put-ack lands after the n-f = 4 quorum already
        // completed the write, so it is accounted as late.
        assert_eq!(report.late_messages, 1);
    }

    #[test]
    fn straggler_responses_count_as_late() {
        use crate::delay::{Delay, Matcher, Rule, Scripted};
        // Server 4's responses take 500 ticks; every operation completes
        // on the other four servers long before they land.
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let rules = vec![Rule {
            matcher: Matcher::any().from_node(ServerId(4)),
            delay: Delay::after(500),
        }];
        let mut sim = Sim::new(cfg, 13, Box::new(Scripted::over_fixed(rules, 10)));
        for sid in cfg.servers() {
            sim.add_server(Box::new(Correct::new(ServerNode::new_replicated(sid, cfg))));
        }
        sim.add_client(
            ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
            vec![Plan::write_at(0, "v")],
        );
        sim.add_client(
            ClientDriver::BsrReader(BsrReader::new(ReaderId(0), cfg)),
            vec![Plan::read_at(100)],
        );
        let report = sim.run();
        assert_eq!(report.completed_ops, 2);
        // Server 4's tag-resp, put-ack and data-resp all arrive after
        // their operations completed.
        assert_eq!(report.late_messages, 3);
        assert_eq!(sim.metrics_snapshot().counter("sim.msgs.late"), Some(3));
    }

    #[test]
    fn undelivered_messages_reflect_a_deadline_cut() {
        let mut sim = bsr_sim(1, 14, 0);
        let cfg = *sim.config();
        sim.add_client(
            ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
            vec![Plan::write_at(0, "cut")],
        );
        // Stop while the five query-tag responses are still in flight.
        let partial = sim.run_until(15);
        assert_eq!(partial.undelivered_messages, 5);
        let done = sim.run();
        assert_eq!(done.undelivered_messages, 0);
    }

    #[test]
    fn recorder_stream_and_metric_dump_are_deterministic() {
        use safereg_obs::{render_jsonl, RingRecorder};
        use std::sync::Arc;
        let run = || {
            let mut sim = bsr_sim(1, 15, 0);
            let cfg = *sim.config();
            let ring = Arc::new(RingRecorder::new(4096));
            sim.set_recorder(ring.clone());
            sim.add_client(
                ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
                vec![Plan::write_at(0, "det")],
            );
            sim.add_client(
                ClientDriver::BsrReader(BsrReader::new(ReaderId(0), cfg)),
                vec![Plan::read_at(60)],
            );
            let report = sim.run();
            (report, render_jsonl(&sim.metrics_snapshot()), ring.events())
        };
        let (ra, dump_a, events_a) = run();
        let (rb, dump_b, events_b) = run();
        assert_eq!(ra, rb);
        assert_eq!(dump_a, dump_b, "metric dumps must be byte-identical");
        assert_eq!(events_a, events_b, "event streams must be identical");
        assert!(!events_a.is_empty());
        assert!(dump_a.contains("sim.read.fast_ratio_permille"));
    }

    #[test]
    fn storage_accounting_via_behaviors() {
        let mut sim = bsr_sim(1, 6, 0);
        let cfg = *sim.config();
        sim.add_client(
            ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
            vec![Plan::write_at(0, "1234")],
        );
        sim.run();
        assert_eq!(sim.total_storage_bytes(), 5 * 4, "n replicas of 4 bytes");
    }
}
