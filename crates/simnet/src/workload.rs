//! Closed-loop workload generation.
//!
//! The paper motivates semi-fast registers with read-dominated workloads
//! (§I-A: TAO serves ~99.8 % reads). [`WorkloadSpec`] builds a deployment
//! of any protocol with a configurable reader/writer population, operation
//! counts, value sizes and Byzantine servers — experiment E8 sweeps the
//! read ratio and compares protocols on throughput and latency.

use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ReaderId, ServerId, WriterId};
use safereg_common::rng::DetRng;
use safereg_common::value::Value;
use safereg_core::client::{BcsrReader, BcsrWriter, Bsr2pReader, BsrHReader, BsrReader, BsrWriter};
use safereg_core::server::ServerNode;
use safereg_rb::baseline::{BaselineReader, BaselineServer, BaselineWriter};

use crate::behavior::{
    AckForger, Correct, CorrectBaseline, Equivocator, Fabricator, ServerBehavior, Silent,
    StaleReplier,
};
use crate::delay::{DelayPolicy, UniformDelay};
use crate::driver::{Action, ClientDriver, Plan, StartRule};
use crate::event::SimTime;
use crate::sim::Sim;

/// Which register emulation a deployment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Replicated safe register with one-shot reads (Fig. 1–3).
    Bsr,
    /// BSR with history reads (§III-C variant 1).
    BsrH,
    /// BSR with two-phase reads (§III-C variant 2).
    Bsr2p,
    /// Erasure-coded safe register (Fig. 4–6).
    Bcsr,
    /// The RB-based baseline (Kanjani et al. style).
    RbBaseline,
}

impl Protocol {
    /// The protocol's minimum server count for a fault bound (its
    /// resilience requirement from the paper).
    pub fn min_n(&self, f: usize) -> usize {
        match self {
            Protocol::Bsr | Protocol::BsrH | Protocol::Bsr2p => 4 * f + 1,
            Protocol::Bcsr => 5 * f + 1,
            Protocol::RbBaseline => 3 * f + 1,
        }
    }

    /// Short display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::Bsr => "BSR",
            Protocol::BsrH => "BSR-H",
            Protocol::Bsr2p => "BSR-2P",
            Protocol::Bcsr => "BCSR",
            Protocol::RbBaseline => "RB-baseline",
        }
    }

    /// Builds the correct-server behavior for this protocol.
    ///
    /// BCSR servers start with their coded element `c_0^s` of the initial
    /// value (Fig. 6 state variables) rather than a full replica.
    pub fn correct_server(&self, sid: ServerId, cfg: QuorumConfig) -> Box<dyn ServerBehavior> {
        match self {
            Protocol::RbBaseline => Box::new(CorrectBaseline::new(BaselineServer::new(sid, cfg))),
            Protocol::Bcsr => {
                let k = cfg.mds_k().expect("BCSR deployment admits a code");
                let code = safereg_mds::rs::ReedSolomon::new(cfg.n(), k).expect("valid code");
                let initial = safereg_mds::stripe::encode_value(&code, &Value::initial())
                    .into_iter()
                    .nth(sid.0 as usize)
                    .expect("element per server");
                Box::new(Correct::new(ServerNode::with_initial(
                    sid,
                    cfg,
                    safereg_common::msg::Payload::Coded(initial),
                )))
            }
            _ => Box::new(Correct::new(ServerNode::new_replicated(sid, cfg))),
        }
    }

    /// Builds a writer driver.
    pub fn writer(&self, id: WriterId, cfg: QuorumConfig) -> ClientDriver {
        match self {
            Protocol::Bsr | Protocol::BsrH | Protocol::Bsr2p => {
                ClientDriver::BsrWriter(BsrWriter::new(id, cfg))
            }
            Protocol::Bcsr => ClientDriver::BcsrWriter(
                BcsrWriter::new(id, cfg).expect("workload config must admit a code"),
            ),
            Protocol::RbBaseline => ClientDriver::RbWriter(BaselineWriter::new(id, cfg)),
        }
    }

    /// Builds a reader driver.
    pub fn reader(&self, id: ReaderId, cfg: QuorumConfig) -> ClientDriver {
        match self {
            Protocol::Bsr => ClientDriver::BsrReader(BsrReader::new(id, cfg)),
            Protocol::BsrH => ClientDriver::BsrHReader(BsrHReader::new(id, cfg)),
            Protocol::Bsr2p => ClientDriver::Bsr2pReader(Bsr2pReader::new(id, cfg)),
            Protocol::Bcsr => ClientDriver::BcsrReader(
                BcsrReader::new(id, cfg).expect("workload config must admit a code"),
            ),
            Protocol::RbBaseline => ClientDriver::RbReader(BaselineReader::new(id, cfg)),
        }
    }
}

/// A Byzantine strategy to inject into a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzKind {
    /// Never responds.
    Silent,
    /// Replies one write behind.
    Stale,
    /// Forges tags and values.
    Fabricator,
    /// Different lies to different clients.
    Equivocator,
    /// Acks without storing.
    AckForger,
}

impl ByzKind {
    /// Builds the behavior for a server.
    pub fn build(&self, sid: ServerId, cfg: QuorumConfig, seed: u64) -> Box<dyn ServerBehavior> {
        match self {
            ByzKind::Silent => Box::new(Silent::new(sid)),
            ByzKind::Stale => Box::new(StaleReplier::new(ServerNode::new_replicated(sid, cfg), 1)),
            ByzKind::Fabricator => Box::new(Fabricator::new(sid, seed)),
            ByzKind::Equivocator => {
                Box::new(Equivocator::new(ServerNode::new_replicated(sid, cfg)))
            }
            ByzKind::AckForger => Box::new(AckForger::new(sid, cfg)),
        }
    }
}

/// Parameters of a closed-loop workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Byzantine bound the deployment is sized for.
    pub f: usize,
    /// Servers beyond the protocol's minimum.
    pub extra_servers: usize,
    /// Number of writer clients.
    pub writers: usize,
    /// Number of reader clients.
    pub readers: usize,
    /// Operations per writer client (closed loop).
    pub writer_ops: usize,
    /// Operations per reader client (closed loop).
    pub reader_ops: usize,
    /// Value size in bytes.
    pub value_size: usize,
    /// Think time between operations, in ticks.
    pub think: SimTime,
    /// Byzantine servers to inject (at most `f`), and their strategy.
    pub byzantine: Option<(usize, ByzKind)>,
    /// Random seed (network jitter, value contents, Byzantine streams).
    pub seed: u64,
}

impl WorkloadSpec {
    /// A read-heavy spec: operation counts chosen so that reads make up
    /// approximately `read_permille ‰` of operations (e.g. `998` models
    /// TAO's 99.8 % read share from §I-A).
    pub fn read_heavy(protocol: Protocol, f: usize, read_permille: u32, seed: u64) -> Self {
        let p = read_permille.clamp(1, 999) as usize;
        let readers = 10usize;
        let reader_ops = 20usize;
        let total_reads = readers * reader_ops; // 200
                                                // writes so that reads/(reads+writes) ≈ p/1000, spread over 2 writers.
        let total_writes = ((total_reads * (1000 - p)).div_ceil(p)).max(1);
        let writers = 2usize.min(total_writes);
        let writer_ops = total_writes.div_ceil(writers);
        WorkloadSpec {
            protocol,
            f,
            extra_servers: 0,
            writers,
            readers,
            writer_ops,
            reader_ops,
            value_size: 128,
            think: 50,
            byzantine: None,
            seed,
        }
    }

    /// The fraction of operations that are reads, in permille.
    pub fn actual_read_permille(&self) -> u32 {
        let reads = self.readers * self.reader_ops;
        let writes = self.writers * self.writer_ops;
        (reads * 1000 / (reads + writes)) as u32
    }

    /// The deployment size `n` this spec produces.
    pub fn n(&self) -> usize {
        self.protocol.min_n(self.f) + self.extra_servers
    }

    /// Builds the simulation: servers (correct + Byzantine), clients with
    /// closed-loop plans, and a jittery network.
    ///
    /// # Panics
    ///
    /// Panics when the spec requests more Byzantine servers than `f` or an
    /// invalid configuration.
    pub fn build(&self) -> Sim {
        let cfg = QuorumConfig::new(self.n(), self.f).expect("valid workload config");
        let delay: Box<dyn DelayPolicy> = Box::new(UniformDelay { lo: 5, hi: 50 });
        let mut sim = Sim::new(cfg, self.seed, delay);
        let mut rng = DetRng::seed_from(self.seed ^ 0x9E37_79B9);

        let byz_count = match &self.byzantine {
            Some((count, _)) => {
                assert!(
                    *count <= self.f,
                    "cannot inject more than f Byzantine servers"
                );
                *count
            }
            None => 0,
        };
        for sid in cfg.servers() {
            // Put the Byzantine servers at the high ids so writer/reader id
            // spaces stay readable in traces.
            let byz_from = cfg.n() - byz_count;
            if (sid.0 as usize) >= byz_from {
                let (_, kind) = self.byzantine.as_ref().expect("byz_count > 0");
                sim.add_server(kind.build(sid, cfg, rng.next_u64()));
            } else {
                sim.add_server(self.protocol.correct_server(sid, cfg));
            }
        }

        for w in 0..self.writers {
            let driver = self.protocol.writer(WriterId(w as u16), cfg);
            let plans: Vec<Plan> = (0..self.writer_ops)
                .map(|_| {
                    let mut bytes = vec![0u8; self.value_size];
                    rng.fill_bytes(&mut bytes);
                    Plan {
                        start: StartRule::AfterPrevious {
                            think: rng.range_u64(1..self.think.max(2)),
                        },
                        action: Action::Write(Value::from(bytes)),
                    }
                })
                .collect();
            sim.add_client(driver, plans);
        }
        for r in 0..self.readers {
            let driver = self.protocol.reader(ReaderId(r as u16), cfg);
            let plans: Vec<Plan> = (0..self.reader_ops)
                .map(|_| Plan {
                    start: StartRule::AfterPrevious {
                        think: rng.range_u64(1..self.think.max(2)),
                    },
                    action: Action::Read,
                })
                .collect();
            sim.add_client(driver, plans);
        }
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_heavy_ratio_is_respected() {
        let spec = WorkloadSpec::read_heavy(Protocol::Bsr, 1, 990, 1);
        let permille = spec.actual_read_permille();
        assert!((970..=999).contains(&permille), "got {permille}");
        let spec5050 = WorkloadSpec::read_heavy(Protocol::Bsr, 1, 500, 1);
        let permille = spec5050.actual_read_permille();
        assert!((450..=550).contains(&permille), "got {permille}");
        let tao = WorkloadSpec::read_heavy(Protocol::Bsr, 1, 998, 1);
        assert!(tao.actual_read_permille() >= 990);
    }

    #[test]
    fn every_protocol_completes_a_small_workload() {
        for protocol in [
            Protocol::Bsr,
            Protocol::BsrH,
            Protocol::Bsr2p,
            Protocol::Bcsr,
            Protocol::RbBaseline,
        ] {
            let spec = WorkloadSpec {
                protocol,
                f: 1,
                extra_servers: 0,
                writers: 2,
                readers: 3,
                writer_ops: 3,
                reader_ops: 3,
                value_size: 32,
                think: 20,
                byzantine: None,
                seed: 11,
            };
            let mut sim = spec.build();
            let report = sim.run();
            assert_eq!(
                report.completed_ops,
                5 * 3,
                "{}: all closed-loop ops must complete",
                protocol.name()
            );
        }
    }

    #[test]
    fn workloads_survive_f_byzantine_servers() {
        for kind in [
            ByzKind::Silent,
            ByzKind::Stale,
            ByzKind::Fabricator,
            ByzKind::Equivocator,
            ByzKind::AckForger,
        ] {
            let spec = WorkloadSpec {
                protocol: Protocol::Bsr,
                f: 1,
                extra_servers: 0,
                writers: 1,
                readers: 2,
                writer_ops: 4,
                reader_ops: 4,
                value_size: 16,
                think: 20,
                byzantine: Some((1, kind)),
                seed: 17,
            };
            let mut sim = spec.build();
            let report = sim.run();
            assert_eq!(report.completed_ops, 3 * 4, "all ops live under {kind:?}");
        }
    }

    #[test]
    fn min_n_matches_paper_bounds() {
        assert_eq!(Protocol::Bsr.min_n(2), 9);
        assert_eq!(Protocol::Bcsr.min_n(2), 11);
        assert_eq!(Protocol::RbBaseline.min_n(2), 7);
    }
}
