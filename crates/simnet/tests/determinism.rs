//! Replay determinism: the simulator's defining property.
//!
//! Every scenario and workload must reproduce bit-for-bit from its seed —
//! this is what makes the adversarial schedules in the experiments
//! citable: anyone can re-run the exact execution.

use safereg_simnet::scenarios::{new_old_inversion, theorem3, theorem5, theorem6};
use safereg_simnet::workload::{ByzKind, Protocol, WorkloadSpec};

#[test]
fn scenario_replays_are_bit_identical() {
    for (a, b) in [
        (theorem3(Protocol::Bsr), theorem3(Protocol::Bsr)),
        (theorem3(Protocol::BsrH), theorem3(Protocol::BsrH)),
        (theorem5(false), theorem5(false)),
        (theorem5(true), theorem5(true)),
        (theorem6(false), theorem6(false)),
        (theorem6(true), theorem6(true)),
        (
            new_old_inversion(Protocol::Bsr),
            new_old_inversion(Protocol::Bsr),
        ),
    ] {
        assert_eq!(a.history, b.history, "{}", a.name);
        assert_eq!(a.report, b.report, "{}", a.name);
    }
}

#[test]
fn workload_runs_are_bit_identical_per_seed() {
    let run = |seed: u64| {
        let spec = WorkloadSpec {
            protocol: Protocol::Bsr,
            f: 1,
            extra_servers: 1,
            writers: 2,
            readers: 3,
            writer_ops: 4,
            reader_ops: 4,
            value_size: 64,
            think: 25,
            byzantine: Some((1, ByzKind::Fabricator)),
            seed,
        };
        let mut sim = spec.build();
        let report = sim.run();
        (report, sim.history().clone())
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42).1, run(43).1, "different seeds diverge");
}

#[test]
fn byzantine_streams_are_seed_stable() {
    // Even the Byzantine fabricator's lies are deterministic: its forged
    // values come from a seeded stream, so a violating run can always be
    // replayed for diagnosis.
    let run = |seed: u64| {
        let spec = WorkloadSpec {
            protocol: Protocol::Bsr,
            f: 1,
            extra_servers: 0,
            writers: 1,
            readers: 2,
            writer_ops: 2,
            reader_ops: 3,
            value_size: 16,
            think: 10,
            byzantine: Some((1, ByzKind::Equivocator)),
            seed,
        };
        let mut sim = spec.build();
        sim.run();
        sim.history().clone()
    };
    assert_eq!(run(7), run(7));
}
