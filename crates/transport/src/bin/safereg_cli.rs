//! Command-line client for a `safereg-server` deployment.
//!
//! ```text
//! # one write (two rounds), then a one-shot read:
//! safereg-cli --servers 127.0.0.1:7000,127.0.0.1:7001,... --f 1 --secret demo put "hello"
//! safereg-cli --servers 127.0.0.1:7000,127.0.0.1:7001,... --f 1 --secret demo get
//! ```
//!
//! The server list's order defines the server ids (first = `s0`). Add
//! `--coded` when the deployment hosts BCSR replicas, and `--client-id` to
//! distinguish concurrent clients (writer tags tie-break on it).

use std::collections::BTreeMap;
use std::net::SocketAddr;

use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ReaderId, ServerId, WriterId};
use safereg_common::value::Value;
use safereg_core::client::{BcsrReader, BcsrWriter, BsrReader, BsrWriter};
use safereg_crypto::keychain::KeyChain;
use safereg_transport::client::ClusterClient;

struct Args {
    servers: Vec<SocketAddr>,
    f: usize,
    secret: String,
    client_id: u16,
    coded: bool,
    command: Command,
}

enum Command {
    Put(String),
    Get,
}

fn usage() -> ! {
    eprintln!(
        "usage: safereg-cli --servers <a:p,a:p,...> --f <usize> --secret <string> \
         [--client-id <u16>] [--coded] (put <value> | get)"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut servers = Vec::new();
    let mut f = usize::MAX;
    let mut secret = String::new();
    let mut client_id = 0u16;
    let mut coded = false;
    let mut command = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--servers" => {
                servers = take()
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--f" => f = take().parse().unwrap_or_else(|_| usage()),
            "--secret" => secret = take(),
            "--client-id" => client_id = take().parse().unwrap_or_else(|_| usage()),
            "--coded" => coded = true,
            "put" => command = Some(Command::Put(take())),
            "get" => command = Some(Command::Get),
            _ => usage(),
        }
    }
    if servers.is_empty() || f == usize::MAX || secret.is_empty() {
        usage()
    }
    Args {
        servers,
        f,
        secret,
        client_id,
        coded,
        command: command.unwrap_or_else(|| usage()),
    }
}

fn main() {
    let args = parse_args();
    let cfg = match QuorumConfig::new(args.servers.len(), args.f) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("invalid configuration: {e}");
            std::process::exit(2);
        }
    };
    let addrs: BTreeMap<ServerId, SocketAddr> = args
        .servers
        .iter()
        .enumerate()
        .map(|(i, a)| (ServerId(i as u16), *a))
        .collect();
    let chain = KeyChain::from_master_seed(args.secret.as_bytes());

    let result = match args.command {
        Command::Put(value) => {
            let id = WriterId(args.client_id);
            let mut conn =
                ClusterClient::connect(id.into(), &addrs, chain).unwrap_or_else(|e| fail(&e));
            if args.coded {
                let mut writer = BcsrWriter::new(id, cfg).unwrap_or_else(|e| fail(&e));
                conn.run_op(&mut writer.write(&Value::from(value.as_str())))
            } else {
                let mut writer = BsrWriter::new(id, cfg);
                conn.run_op(&mut writer.write(Value::from(value.as_str())))
            }
        }
        Command::Get => {
            let id = ReaderId(args.client_id);
            let mut conn =
                ClusterClient::connect(id.into(), &addrs, chain).unwrap_or_else(|e| fail(&e));
            if args.coded {
                let mut reader = BcsrReader::new(id, cfg).unwrap_or_else(|e| fail(&e));
                let mut op = reader.read();
                conn.run_op(&mut op)
            } else {
                let mut reader = BsrReader::new(id, cfg);
                let mut op = reader.read();
                conn.run_op(&mut op)
            }
        }
    };

    match result {
        Ok(out) => match out.read_value() {
            Some(v) => println!("{}", String::from_utf8_lossy(v.as_bytes())),
            None => println!("ok: wrote tag {}", out.tag()),
        },
        Err(e) => fail(&e),
    }
}

fn fail(e: &dyn std::fmt::Display) -> ! {
    eprintln!("error: {e}");
    std::process::exit(1)
}
