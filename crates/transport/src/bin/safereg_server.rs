//! Standalone register server daemon.
//!
//! Hosts one replica of a BSR/BCSR deployment on a TCP port. Start `n` of
//! these (one per server id) and point `safereg-cli` at them.
//!
//! ```text
//! safereg-server --id 0 --n 5 --f 1 --listen 127.0.0.1:7000 --secret demo
//! safereg-server --id 1 --n 5 --f 1 --listen 127.0.0.1:7001 --secret demo
//! ...
//! ```
//!
//! Pass `--coded` to host an erasure-coded (BCSR) replica instead; the
//! deployment then needs `n ≥ 5f + 1`.

use safereg_common::config::QuorumConfig;
use safereg_common::ids::ServerId;
use safereg_common::msg::Payload;
use safereg_common::value::Value;
use safereg_core::server::ServerNode;
use safereg_crypto::keychain::KeyChain;
use safereg_transport::server::ServerHost;

struct Args {
    id: u16,
    n: usize,
    f: usize,
    listen: String,
    secret: String,
    coded: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: safereg-server --id <u16> --n <usize> --f <usize> \
         --listen <addr:port> --secret <string> [--coded]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        id: 0,
        n: 0,
        f: 0,
        listen: String::new(),
        secret: String::new(),
        coded: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--id" => args.id = take().parse().unwrap_or_else(|_| usage()),
            "--n" => args.n = take().parse().unwrap_or_else(|_| usage()),
            "--f" => args.f = take().parse().unwrap_or_else(|_| usage()),
            "--listen" => args.listen = take(),
            "--secret" => args.secret = take(),
            "--coded" => args.coded = true,
            _ => usage(),
        }
    }
    if args.n == 0 || args.listen.is_empty() || args.secret.is_empty() {
        usage()
    }
    args
}

fn main() {
    let args = parse_args();
    let cfg = match QuorumConfig::new(args.n, args.f) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("invalid configuration: {e}");
            std::process::exit(2);
        }
    };
    if args.coded && !cfg.supports_bcsr() {
        eprintln!("warning: {cfg} is below BCSR's n >= 5f + 1 bound — reads may be unsafe");
    }
    if !args.coded && !cfg.supports_bsr() {
        eprintln!("warning: {cfg} is below BSR's n >= 4f + 1 bound — reads may be unsafe");
    }

    let sid = ServerId(args.id);
    let node = if args.coded {
        let k = cfg.mds_k().unwrap_or_else(|| {
            eprintln!("no valid MDS dimension for {cfg} (need n > 5f)");
            std::process::exit(2);
        });
        let code = safereg_mds::rs::ReedSolomon::new(cfg.n(), k).expect("valid code");
        let initial = safereg_mds::stripe::encode_value(&code, &Value::initial())
            .into_iter()
            .nth(sid.0 as usize)
            .expect("element per server");
        ServerNode::with_initial(sid, cfg, Payload::Coded(initial))
    } else {
        ServerNode::new_replicated(sid, cfg)
    };
    let chain = KeyChain::from_master_seed(args.secret.as_bytes());

    let host = match ServerHost::spawn_on(node, chain, args.listen.as_str()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    println!(
        "safereg-server {sid} serving {} register on {} ({cfg})",
        if args.coded { "coded" } else { "replicated" },
        host.addr()
    );
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
