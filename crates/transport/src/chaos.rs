//! Deterministic fault injection for the real network path.
//!
//! The simulator exercises the paper's Byzantine bestiary under a seeded
//! scheduler; this module ports that discipline to real sockets. A
//! [`FaultPlan`] is a pure function of a seed: for every `(server,
//! connection, direction)` stream it yields a reproducible sequence of
//! [`FaultAction`]s — forward, drop, delay, corrupt, truncate, or kill —
//! optionally restricted to particular message classes. A [`ChaosProxy`]
//! sits between a client and one server, parses the length-prefixed frame
//! stream, and applies the plan frame by frame; [`ChaosNet`] wraps a whole
//! deployment.
//!
//! Determinism contract: the *schedule* (the decision stream) is
//! byte-for-byte identical for the same seed — see
//! [`FaultPlan::fingerprint`]. Which decisions are consumed depends on the
//! traffic that actually flows, which wall-clock scheduling perturbs; the
//! guarantee mirrors the simulator's "same seed, same adversary", not
//! "same seed, same execution".
//!
//! The proxies speak the transport's raw framing (`u32` little-endian
//! length + payload) and never authenticate anything: corruption is
//! *supposed* to reach the peer and be rejected by its MAC check. Both the
//! register transport and the KV transport use this framing, so one proxy
//! serves both stacks.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use safereg_common::buf::Bytes;
use safereg_common::ids::ServerId;
use safereg_common::msg::Envelope;
use safereg_common::rng::DetRng;
use safereg_common::sync::Mutex;
use safereg_common::trace::TraceCtx;
use safereg_obs::names;
use safereg_obs::trace::MsgClass;

use safereg_common::codec::Wire;

/// What the proxy does to one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Pass the frame through untouched.
    Forward,
    /// Silently discard the frame (a lossy link).
    Drop,
    /// Hold the frame for this many microseconds, then forward it.
    Delay {
        /// Hold time in microseconds.
        micros: u64,
    },
    /// Flip bytes in the payload before forwarding (the MAC layer on the
    /// receiving side must reject it).
    Corrupt,
    /// Forward the length header and half the payload, then kill the
    /// connection — a crash mid-write.
    Truncate,
    /// Hard-kill the connection without forwarding anything.
    Kill,
}

impl FaultAction {
    /// Short tag used in fingerprints and metric names.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultAction::Forward => "forwarded",
            FaultAction::Drop => "dropped",
            FaultAction::Delay { .. } => "delayed",
            FaultAction::Corrupt => "corrupted",
            FaultAction::Truncate => "truncated",
            FaultAction::Kill => "killed",
        }
    }
}

/// Which way a frame is travelling through the proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Direction {
    /// Client requests towards the server.
    ClientToServer,
    /// Server responses towards the client.
    ServerToClient,
}

/// Fault probabilities (permille) for one stream. Rolls are drawn from a
/// single 0..1000 range, checked in the order kill → truncate → corrupt →
/// drop → delay, so the probabilities are disjoint and must sum to at
/// most 1000.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Probability (permille) of killing the connection at a frame.
    pub kill_permille: u16,
    /// Probability (permille) of truncating a frame then killing.
    pub truncate_permille: u16,
    /// Probability (permille) of corrupting a frame's payload.
    pub corrupt_permille: u16,
    /// Probability (permille) of dropping a frame.
    pub drop_permille: u16,
    /// Probability (permille) of delaying a frame.
    pub delay_permille: u16,
    /// Uniform delay range in microseconds (inclusive lo, exclusive hi).
    pub delay_micros: (u64, u64),
    /// When `Some`, faults only hit frames of these message classes;
    /// everything else is forwarded (one decision is still consumed per
    /// frame, so the schedule is traffic-class independent).
    pub classes: Option<Vec<MsgClass>>,
}

impl FaultSpec {
    /// No faults at all — the proxy becomes a transparent relay (useful
    /// for targeted `sever`/`blackhole` scenarios).
    pub fn calm() -> Self {
        FaultSpec {
            kill_permille: 0,
            truncate_permille: 0,
            corrupt_permille: 0,
            drop_permille: 0,
            delay_permille: 0,
            delay_micros: (0, 1),
            classes: None,
        }
    }

    /// A lossy-but-survivable link: a few percent of frames are dropped,
    /// delayed or corrupted, and connections occasionally die. Retries and
    /// reconnects must mask all of it.
    pub fn mild() -> Self {
        FaultSpec {
            kill_permille: 5,
            truncate_permille: 5,
            corrupt_permille: 20,
            drop_permille: 30,
            delay_permille: 100,
            delay_micros: (500, 5_000),
            classes: None,
        }
    }

    /// An actively hostile link: heavy loss, frequent kills.
    pub fn severe() -> Self {
        FaultSpec {
            kill_permille: 30,
            truncate_permille: 20,
            corrupt_permille: 50,
            drop_permille: 100,
            delay_permille: 200,
            delay_micros: (1_000, 20_000),
            classes: None,
        }
    }

    fn total_fault_permille(&self) -> u32 {
        u32::from(self.kill_permille)
            + u32::from(self.truncate_permille)
            + u32::from(self.corrupt_permille)
            + u32::from(self.drop_permille)
            + u32::from(self.delay_permille)
    }
}

/// A seeded, deployment-wide fault plan. Pure data: the same seed and spec
/// always describe the same adversary.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    spec: FaultSpec,
}

impl FaultPlan {
    /// Creates a plan.
    ///
    /// # Panics
    ///
    /// Panics when the spec's fault probabilities sum past 1000 permille.
    pub fn new(seed: u64, spec: FaultSpec) -> Self {
        assert!(
            spec.total_fault_permille() <= 1000,
            "fault probabilities exceed 1000 permille"
        );
        FaultPlan { seed, spec }
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-stream decision source for `(server, connection ordinal,
    /// direction)`. Streams are independent: adding traffic on one never
    /// perturbs another, exactly like the simulator's per-process RNG
    /// forks.
    pub fn schedule(&self, server: ServerId, conn: u64, dir: Direction) -> FaultSchedule {
        // SplitMix-style mixing keeps distinct streams decorrelated even
        // for adjacent (server, conn) pairs.
        let mut mixed = self.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(server.0) + 1);
        mixed = mixed.wrapping_add(0xBF58_476D_1CE4_E5B9u64.wrapping_mul(conn + 1));
        mixed = mixed.wrapping_add(match dir {
            Direction::ClientToServer => 0x94D0_49BB_1331_11EB,
            Direction::ServerToClient => 0xD6E8_FEB8_6659_FD93,
        });
        FaultSchedule {
            rng: DetRng::seed_from(mixed),
            spec: self.spec.clone(),
        }
    }

    /// A byte encoding of the first `n` decisions of one stream — the
    /// "byte-identical fault schedule" determinism tests assert on. Equal
    /// seeds produce equal fingerprints; a different seed almost surely
    /// does not.
    pub fn fingerprint(&self, server: ServerId, conn: u64, dir: Direction, n: usize) -> Vec<u8> {
        let mut sched = self.schedule(server, conn, dir);
        let mut out = Vec::with_capacity(n * 9);
        for _ in 0..n {
            match sched.decide() {
                FaultAction::Forward => out.push(0),
                FaultAction::Drop => out.push(1),
                FaultAction::Delay { micros } => {
                    out.push(2);
                    out.extend_from_slice(&micros.to_le_bytes());
                }
                FaultAction::Corrupt => out.push(3),
                FaultAction::Truncate => out.push(4),
                FaultAction::Kill => out.push(5),
            }
        }
        out
    }
}

/// One stream's deterministic decision source.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    rng: DetRng,
    spec: FaultSpec,
}

impl FaultSchedule {
    /// Draws the next decision unconditionally (class filter ignored).
    pub fn decide(&mut self) -> FaultAction {
        let roll = self.rng.range_u64(0..1000);
        let mut bound = u64::from(self.spec.kill_permille);
        if roll < bound {
            return FaultAction::Kill;
        }
        bound += u64::from(self.spec.truncate_permille);
        if roll < bound {
            return FaultAction::Truncate;
        }
        bound += u64::from(self.spec.corrupt_permille);
        if roll < bound {
            return FaultAction::Corrupt;
        }
        bound += u64::from(self.spec.drop_permille);
        if roll < bound {
            return FaultAction::Drop;
        }
        bound += u64::from(self.spec.delay_permille);
        if roll < bound {
            let (lo, hi) = self.spec.delay_micros;
            let micros = if hi > lo {
                self.rng.range_u64(lo..hi)
            } else {
                lo
            };
            return FaultAction::Delay { micros };
        }
        FaultAction::Forward
    }

    /// Draws the next decision for a frame of `class`. A decision is
    /// consumed either way (schedule position is traffic-independent), but
    /// frames outside the spec's class filter are always forwarded.
    pub fn next_action(&mut self, class: Option<MsgClass>) -> FaultAction {
        let action = self.decide();
        match (&self.spec.classes, class) {
            (Some(filter), Some(c)) if !filter.contains(&c) => FaultAction::Forward,
            (Some(_), None) => FaultAction::Forward,
            _ => action,
        }
    }
}

/// Best-effort classification of a raw frame payload: sealed register
/// frames carry a 16-byte trace context then the envelope; KV frames
/// carry a shard id and key first, which the envelope decode rejects, so
/// those (and garbage) classify as `None`.
fn classify(payload: &Bytes) -> Option<MsgClass> {
    if payload.len() < 32 + TraceCtx::WIRE_LEN {
        return None;
    }
    let body = payload.slice(..payload.len() - 32);
    let mut r = safereg_common::codec::BytesReader::new(&body);
    TraceCtx::decode_borrowed(&mut r).ok()?;
    let env = Envelope::decode_borrowed(&mut r).ok()?;
    if !r.is_empty() {
        return None;
    }
    Some(MsgClass::of(&env.msg))
}

/// Incremental frame parser over the raw `u32`-length-prefixed stream.
/// Buffering in user space (instead of `read_exact` with a timeout) means
/// a poll timeout can never lose half-read bytes.
struct FrameBuf {
    buf: Vec<u8>,
}

impl FrameBuf {
    fn new() -> Self {
        FrameBuf { buf: Vec::new() }
    }

    /// Extracts the next complete frame payload, if buffered, as an
    /// immutable [`Bytes`] the fault actions can slice without copying.
    fn extract(&mut self) -> Option<Bytes> {
        if self.buf.len() < 4 {
            return None;
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if self.buf.len() < 4 + len {
            return None;
        }
        let payload = Bytes::from(self.buf[4..4 + len].to_vec());
        self.buf.drain(..4 + len);
        Some(payload)
    }
}

/// Shared state of one proxy.
struct ProxyShared {
    stop: AtomicBool,
    /// When set, accepted connections are dropped immediately — the
    /// server looks up but every session dies before serving a frame.
    blackhole: AtomicBool,
    /// Live (client-side, server-side) socket pairs, for `sever`.
    live: Mutex<Vec<(TcpStream, TcpStream)>>,
    conn_counter: AtomicU64,
}

/// A chaos proxy in front of one server: clients connect to
/// [`ChaosProxy::addr`] and the proxy relays frames to the real server,
/// applying its [`FaultPlan`] stream per connection and direction.
pub struct ChaosProxy {
    addr: SocketAddr,
    upstream: SocketAddr,
    shared: Arc<ProxyShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("addr", &self.addr)
            .field("upstream", &self.upstream)
            .finish()
    }
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral loopback port in front of
    /// `upstream`, injecting faults for `server`'s streams of `plan`.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn(server: ServerId, upstream: SocketAddr, plan: FaultPlan) -> std::io::Result<Self> {
        Self::spawn_on(server, upstream, plan, ("127.0.0.1", 0))
    }

    /// Starts a proxy on an explicit bind address — restart supervisors use
    /// this to bring a proxy back on the address clients already hold.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn_on(
        server: ServerId,
        upstream: SocketAddr,
        plan: FaultPlan,
        bind: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            stop: AtomicBool::new(false),
            blackhole: AtomicBool::new(false),
            live: Mutex::new(Vec::new()),
            conn_counter: AtomicU64::new(0),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("safereg-chaos-{server}"))
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let client = match conn {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    if accept_shared.blackhole.load(Ordering::SeqCst) {
                        // The TCP handshake succeeded (kernel backlog),
                        // but the session dies before a single frame —
                        // indistinguishable from a server crashing on
                        // accept, which is what drives breakers open.
                        drop(client);
                        continue;
                    }
                    let upstream_stream =
                        match TcpStream::connect_timeout(&upstream, Duration::from_secs(1)) {
                            Ok(s) => s,
                            Err(_) => continue, // real server down: drop the client
                        };
                    client.set_nodelay(true).ok();
                    upstream_stream.set_nodelay(true).ok();
                    let conn_idx = accept_shared.conn_counter.fetch_add(1, Ordering::SeqCst);
                    let c2s = plan.schedule(server, conn_idx, Direction::ClientToServer);
                    let s2c = plan.schedule(server, conn_idx, Direction::ServerToClient);
                    let (Ok(client2), Ok(upstream2)) =
                        (client.try_clone(), upstream_stream.try_clone())
                    else {
                        continue;
                    };
                    if let (Ok(ck), Ok(uk)) = (client.try_clone(), upstream_stream.try_clone()) {
                        accept_shared.live.lock().push((ck, uk));
                    }
                    let stop_a = Arc::clone(&accept_shared);
                    let stop_b = Arc::clone(&accept_shared);
                    let _ = std::thread::Builder::new()
                        .name("safereg-chaos-c2s".into())
                        .spawn(move || relay(client, upstream_stream, c2s, stop_a));
                    let _ = std::thread::Builder::new()
                        .name("safereg-chaos-s2c".into())
                        .spawn(move || relay(upstream2, client2, s2c, stop_b));
                }
            })
            .expect("spawn chaos accept thread");

        Ok(ChaosProxy {
            addr,
            upstream,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The real server behind this proxy.
    pub fn upstream(&self) -> SocketAddr {
        self.upstream
    }

    /// Hard-kills every live connection through this proxy (clients must
    /// reconnect). New connections are still accepted.
    pub fn sever(&self) {
        let mut live = self.shared.live.lock();
        for (c, u) in live.drain(..) {
            let _ = c.shutdown(Shutdown::Both);
            let _ = u.shutdown(Shutdown::Both);
        }
    }

    /// While blackholed, new sessions die before delivering a frame (and
    /// existing ones are severed) — the server is effectively down.
    pub fn set_blackhole(&self, on: bool) {
        self.shared.blackhole.store(on, Ordering::SeqCst);
        if on {
            self.sever();
        }
    }

    /// Stops the proxy and severs everything.
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.sever();
        let _ = TcpStream::connect(self.addr); // unblock accept
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Relays frames `src → dst`, consulting `sched` per frame.
fn relay(
    mut src: TcpStream,
    mut dst: TcpStream,
    mut sched: FaultSchedule,
    shared: Arc<ProxyShared>,
) {
    let reg = safereg_obs::global();
    let _ = src.set_read_timeout(Some(Duration::from_millis(100)));
    let mut fb = FrameBuf::new();
    let mut chunk = [0u8; 16 * 1024];
    let teardown = |src: &TcpStream, dst: &TcpStream| {
        let _ = src.shutdown(Shutdown::Both);
        let _ = dst.shutdown(Shutdown::Both);
    };
    loop {
        while let Some(payload) = fb.extract() {
            let class = classify(&payload);
            let action = sched.next_action(class);
            if action == FaultAction::Forward {
                reg.counter(names::CHAOS_FORWARDED).inc();
            } else {
                reg.counter(&format!("{}.{}", names::CHAOS_FAULT_PREFIX, action.tag()))
                    .inc();
            }
            match action {
                FaultAction::Forward => {
                    if write_raw(&mut dst, &[payload.as_ref()]).is_err() {
                        teardown(&src, &dst);
                        return;
                    }
                }
                FaultAction::Drop => {}
                FaultAction::Delay { micros } => {
                    std::thread::sleep(Duration::from_micros(micros));
                    if write_raw(&mut dst, &[payload.as_ref()]).is_err() {
                        teardown(&src, &dst);
                        return;
                    }
                }
                FaultAction::Corrupt => {
                    // One byte is flipped; the untouched prefix and suffix
                    // are written as slices of the original buffer, never
                    // re-allocated.
                    if payload.is_empty() {
                        if write_raw(&mut dst, &[payload.as_ref()]).is_err() {
                            teardown(&src, &dst);
                            return;
                        }
                    } else {
                        let mid = payload.len() / 2;
                        let flipped = [payload.as_ref()[mid] ^ 0xFF];
                        let parts = [
                            &payload.as_ref()[..mid],
                            &flipped[..],
                            &payload.as_ref()[mid + 1..],
                        ];
                        if write_raw(&mut dst, &parts).is_err() {
                            teardown(&src, &dst);
                            return;
                        }
                    }
                }
                FaultAction::Truncate => {
                    // Announce the full length, deliver half, die: the
                    // peer's next read blocks on a frame that never
                    // completes until the kill lands.
                    let len = payload.len() as u32;
                    let _ = dst.write_all(&len.to_le_bytes());
                    let _ = dst.write_all(&payload.as_ref()[..payload.len() / 2]);
                    let _ = dst.flush();
                    teardown(&src, &dst);
                    return;
                }
                FaultAction::Kill => {
                    teardown(&src, &dst);
                    return;
                }
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            teardown(&src, &dst);
            return;
        }
        match src.read(&mut chunk) {
            Ok(0) => {
                teardown(&src, &dst);
                return;
            }
            Ok(n) => fb.buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                teardown(&src, &dst);
                return;
            }
        }
    }
}

/// Writes one raw frame whose payload is the concatenation of `parts` —
/// the corrupt path hands over (prefix, flipped byte, suffix) slices so
/// the untouched bytes are never re-buffered.
fn write_raw(dst: &mut TcpStream, parts: &[&[u8]]) -> std::io::Result<()> {
    let len: usize = parts.iter().map(|p| p.len()).sum();
    dst.write_all(&(len as u32).to_le_bytes())?;
    for part in parts {
        dst.write_all(part)?;
    }
    dst.flush()
}

/// A chaos proxy per server: the seam between any cluster's real
/// addresses and a client that should experience faults.
#[derive(Debug)]
pub struct ChaosNet {
    proxies: BTreeMap<ServerId, ChaosProxy>,
}

impl ChaosNet {
    /// Wraps every server address with a [`ChaosProxy`] driven by `plan`.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn wrap(addrs: &BTreeMap<ServerId, SocketAddr>, plan: &FaultPlan) -> std::io::Result<Self> {
        let mut proxies = BTreeMap::new();
        for (sid, addr) in addrs {
            proxies.insert(*sid, ChaosProxy::spawn(*sid, *addr, plan.clone())?);
        }
        Ok(ChaosNet { proxies })
    }

    /// The proxied addresses — hand these to a client instead of the real
    /// ones.
    pub fn addrs(&self) -> BTreeMap<ServerId, SocketAddr> {
        self.proxies.iter().map(|(s, p)| (*s, p.addr())).collect()
    }

    /// Kills every live connection to `server`.
    pub fn sever(&self, server: ServerId) {
        if let Some(p) = self.proxies.get(&server) {
            p.sever();
        }
    }

    /// Blackholes (or restores) `server`.
    pub fn set_blackhole(&self, server: ServerId, on: bool) {
        if let Some(p) = self.proxies.get(&server) {
            p.set_blackhole(on);
        }
    }

    /// Access to one proxy.
    pub fn proxy(&self, server: ServerId) -> Option<&ChaosProxy> {
        self.proxies.get(&server)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule_bytes() {
        let a = FaultPlan::new(42, FaultSpec::severe());
        let b = FaultPlan::new(42, FaultSpec::severe());
        for sid in [ServerId(0), ServerId(3)] {
            for conn in [0u64, 1, 7] {
                for dir in [Direction::ClientToServer, Direction::ServerToClient] {
                    assert_eq!(
                        a.fingerprint(sid, conn, dir, 256),
                        b.fingerprint(sid, conn, dir, 256),
                        "schedule must be a pure function of the seed"
                    );
                }
            }
        }
    }

    #[test]
    fn different_seeds_or_streams_diverge() {
        let a = FaultPlan::new(1, FaultSpec::severe());
        let b = FaultPlan::new(2, FaultSpec::severe());
        let dir = Direction::ClientToServer;
        assert_ne!(
            a.fingerprint(ServerId(0), 0, dir, 256),
            b.fingerprint(ServerId(0), 0, dir, 256)
        );
        assert_ne!(
            a.fingerprint(ServerId(0), 0, dir, 256),
            a.fingerprint(ServerId(1), 0, dir, 256),
            "per-server streams are independent"
        );
        assert_ne!(
            a.fingerprint(ServerId(0), 0, Direction::ClientToServer, 256),
            a.fingerprint(ServerId(0), 0, Direction::ServerToClient, 256),
            "per-direction streams are independent"
        );
    }

    #[test]
    fn calm_spec_always_forwards() {
        let plan = FaultPlan::new(9, FaultSpec::calm());
        let mut sched = plan.schedule(ServerId(0), 0, Direction::ClientToServer);
        for _ in 0..100 {
            assert_eq!(sched.next_action(None), FaultAction::Forward);
        }
    }

    #[test]
    fn class_filter_shields_other_classes() {
        let mut spec = FaultSpec::severe();
        spec.classes = Some(vec![MsgClass::PutData]);
        let plan = FaultPlan::new(3, spec);
        let mut sched = plan.schedule(ServerId(0), 0, Direction::ClientToServer);
        for _ in 0..200 {
            assert_eq!(
                sched.next_action(Some(MsgClass::QueryData)),
                FaultAction::Forward,
                "query-data is outside the filter"
            );
        }
        let mut sched = plan.schedule(ServerId(0), 0, Direction::ClientToServer);
        let mut faulted = 0;
        for _ in 0..200 {
            if sched.next_action(Some(MsgClass::PutData)) != FaultAction::Forward {
                faulted += 1;
            }
        }
        assert!(faulted > 0, "the targeted class does get hit");
    }

    #[test]
    #[should_panic(expected = "exceed 1000 permille")]
    fn overfull_spec_is_rejected() {
        let mut spec = FaultSpec::severe();
        spec.drop_permille = 1000;
        FaultPlan::new(0, spec);
    }

    #[test]
    fn frame_buf_reassembles_split_frames() {
        let mut fb = FrameBuf::new();
        let mut wire = Vec::new();
        wire.extend_from_slice(&3u32.to_le_bytes());
        wire.extend_from_slice(b"abc");
        wire.extend_from_slice(&2u32.to_le_bytes());
        wire.extend_from_slice(b"xy");
        // Feed byte by byte: frames only pop once complete.
        let mut got = Vec::new();
        for b in wire {
            fb.buf.push(b);
            while let Some(f) = fb.extract() {
                got.push(f);
            }
        }
        assert_eq!(
            got,
            vec![
                Bytes::copy_from_slice(b"abc"),
                Bytes::copy_from_slice(b"xy")
            ]
        );
    }

    #[test]
    fn proxy_relays_and_severs() {
        // Echo server: reads a frame, writes it back.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let upstream = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut s) = conn else { continue };
                std::thread::spawn(move || loop {
                    let mut len = [0u8; 4];
                    if s.read_exact(&mut len).is_err() {
                        return;
                    }
                    let mut buf = vec![0u8; u32::from_le_bytes(len) as usize];
                    if s.read_exact(&mut buf).is_err() {
                        return;
                    }
                    if write_raw(&mut s, &[&buf[..]]).is_err() {
                        return;
                    }
                });
            }
        });

        let plan = FaultPlan::new(7, FaultSpec::calm());
        let proxy = ChaosProxy::spawn(ServerId(0), upstream, plan).unwrap();
        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        write_raw(&mut client, &[&b"ping"[..]]).unwrap();
        let mut len = [0u8; 4];
        client.read_exact(&mut len).unwrap();
        let mut buf = vec![0u8; u32::from_le_bytes(len) as usize];
        client.read_exact(&mut buf).unwrap();
        assert_eq!(buf, b"ping");

        proxy.sever();
        // The severed connection dies: either the write or the read fails.
        let dead = write_raw(&mut client, &[&b"again"[..]]).is_err()
            || client.read_exact(&mut [0u8; 4]).is_err();
        assert!(dead, "severed connection must not keep working");
    }
}
