//! TCP cluster client: drives any [`ClientOp`] against real servers.
//!
//! The client keeps one *supervised link* per server. Each link runs a
//! background supervisor that owns the connection, reconnects with
//! exponential backoff + jitter when it dies, and tracks a circuit-breaker
//! health state so callers degrade gracefully to whatever `n − f` subset
//! is actually reachable. Responses from every link funnel into one
//! channel; [`ClusterClient::run_op`] sends an operation's envelopes,
//! feeds it responses as they arrive, resends unanswered envelopes on a
//! retry schedule carved out of the operation deadline, and returns the
//! outcome.
//!
//! Resending is protocol-safe: every [`ClientOp`] deduplicates responses
//! per server and ignores stale op-ids, so a duplicate request at worst
//! costs a duplicate (ignored) response. Liveness only needs `n − f`
//! servers to answer (§II of the paper); the supervisors' job is to make
//! sure a transient disconnect costs one retry slice instead of the whole
//! deadline.
//!
//! Frames queue on *bounded* channels sized by
//! [`TransportConfig::chan_capacity`]. When a link's writer stalls and its
//! outbox fills, the config's [`ShedPolicy`] decides: block (with the
//! `io_timeout` as a bound), drop the newest frame, or drop the oldest.
//! Shedding is protocol-safe for the same reason resending is — a lost
//! request is indistinguishable from a lost packet, and the retry schedule
//! covers both. Every shed is counted on `chan.shed` plus a per-policy
//! counter.

use std::collections::BTreeMap;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

use safereg_common::config::TransportConfig;
use safereg_common::history::ReadPath;
use safereg_common::ids::{ClientId, NodeId, ServerId};
use safereg_common::msg::{Envelope, Message, ServerToClient};
use safereg_common::rng::DetRng;
use safereg_common::sync::channel::{
    bounded, BoundedReceiver, BoundedSender, RecvTimeoutError, SendTimeoutError, ShedPolicy,
};
use safereg_common::trace::{Phase, TraceCtx};
use safereg_core::op::{ClientOp, OpOutput};
use safereg_crypto::keychain::KeyChain;
use safereg_obs::names;
use safereg_obs::span::{self, SlowEvidence, SpanKind};
use safereg_obs::trace::{self, MsgClass, NullRecorder, Recorder};

use crate::frame::{open_envelope, read_frame, seal_envelope_traced, SealedFrame};

/// Errors from driving operations over TCP.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect to a server.
    Connect {
        /// The server that refused.
        server: ServerId,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The operation did not complete within the deadline. Note the model
    /// is asynchronous — a deadline is a harness convenience, not part of
    /// the protocol.
    Timeout {
        /// How long we waited.
        waited: Duration,
    },
    /// All response channels closed (cluster gone).
    Disconnected,
}

/// Coarse classification of a [`ClientError`] for retry policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Worth retrying: the fault is plausibly transient (a refused
    /// connect, an elapsed deadline while servers churn).
    Retriable,
    /// Not worth retrying without outside intervention.
    Fatal,
}

impl ClientError {
    /// Classifies this error for retry decisions. Connection refusals and
    /// deadline misses are [`FaultClass::Retriable`] — the supervisors
    /// keep healing links in the background, so a later attempt can
    /// succeed. [`ClientError::Disconnected`] means no server was ever
    /// reachable and is [`FaultClass::Fatal`].
    pub fn fault_class(&self) -> FaultClass {
        match self {
            ClientError::Connect { .. } | ClientError::Timeout { .. } => FaultClass::Retriable,
            ClientError::Disconnected => FaultClass::Fatal,
        }
    }

    /// `true` when [`fault_class`](Self::fault_class) is
    /// [`FaultClass::Retriable`].
    pub fn is_retriable(&self) -> bool {
        self.fault_class() == FaultClass::Retriable
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect { server, source } => {
                write!(f, "failed to connect to {server}: {source}")
            }
            ClientError::Timeout { waited } => {
                write!(f, "operation incomplete after {waited:?}")
            }
            ClientError::Disconnected => write!(f, "cluster connections closed"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Connect { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Circuit-breaker states, stored in [`LinkShared::state`].
const STATE_CLOSED: u8 = 0;
const STATE_HALF_OPEN: u8 = 1;
const STATE_OPEN: u8 = 2;

/// State shared between a link's supervisor, its reader thread and the
/// client front-end.
struct LinkShared {
    server: ServerId,
    stop: AtomicBool,
    /// Breaker state: 0 Closed, 1 HalfOpen, 2 Open.
    state: AtomicU8,
    /// Total authenticated frames delivered by this link, ever. The
    /// breaker trusts *delivery*, not connect success: a blackholed
    /// server still accepts TCP handshakes into its listener backlog, so
    /// only a delivered frame proves the server is really back.
    delivered: AtomicU64,
}

impl LinkShared {
    fn set_state(&self, new: u8) {
        let old = self.state.swap(new, Ordering::SeqCst);
        if old != new {
            let reg = safereg_obs::global();
            reg.counter(names::TRANSPORT_BREAKER_TRANSITIONS).inc();
            reg.gauge(&names::link_state_gauge("transport", self.server.0))
                .set(u64::from(new));
        }
    }
}

/// The client-side handle to one supervised server link.
///
/// The outbox carries already-sealed frames behind an [`Arc`], so a
/// resend is an `Arc` clone, never a re-encode or re-MAC. It is bounded
/// by [`TransportConfig::chan_capacity`]; what happens when it fills is
/// the config's [`ShedPolicy`].
struct ServerLink {
    outbox: BoundedSender<Arc<SealedFrame>>,
    shared: Arc<LinkShared>,
}

/// A client's supervised connections to every server in a deployment.
pub struct ClusterClient {
    id: ClientId,
    chain: KeyChain,
    links: BTreeMap<ServerId, ServerLink>,
    responses: BoundedReceiver<(ServerId, ServerToClient)>,
    /// Kept so the response channel never reports `Disconnected` while
    /// the client is alive, even if every link is momentarily down.
    _tx: BoundedSender<(ServerId, ServerToClient)>,
    config: TransportConfig,
    recorder: Arc<dyn Recorder>,
}

impl std::fmt::Debug for ClusterClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterClient")
            .field("id", &self.id)
            .field("servers", &self.links.len())
            .finish()
    }
}

impl ClusterClient {
    /// Connects `id` to the given servers with [`TransportConfig::default`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Disconnected`] when *no* server is reachable.
    pub fn connect(
        id: ClientId,
        servers: &BTreeMap<ServerId, SocketAddr>,
        chain: KeyChain,
    ) -> Result<Self, ClientError> {
        Self::connect_with(id, servers, chain, TransportConfig::default())
    }

    /// Connects `id` to the given servers. Servers that refuse the initial
    /// connection are *not* abandoned: their supervisors keep retrying
    /// with backoff, so a server that comes up late (or back up) rejoins
    /// the quorum automatically.
    ///
    /// # Errors
    ///
    /// [`ClientError::Disconnected`] when *no* server is reachable at
    /// connect time — an all-dead cluster is a configuration error, not a
    /// fault to ride out.
    pub fn connect_with(
        id: ClientId,
        servers: &BTreeMap<ServerId, SocketAddr>,
        chain: KeyChain,
        config: TransportConfig,
    ) -> Result<Self, ClientError> {
        // Both directions are bounded: a stalled writer or a slow op
        // sheds (or blocks) per the configured policy instead of growing
        // an unbounded queue. Counters are created up front so the
        // metrics dump shows them at 0 rather than omitting them.
        let reg = safereg_obs::global();
        reg.counter(names::WIRE_BYTES_COPIED);
        reg.counter(names::CHAN_SHED);
        reg.counter(&names::shed_counter(config.shed_policy.label()));
        let (tx, rx) = bounded(config.chan_capacity, config.shed_policy);
        let mut links = BTreeMap::new();
        let mut reachable = 0usize;
        for (sid, addr) in servers {
            let first = TcpStream::connect_timeout(addr, config.connect_timeout).ok();
            if first.is_some() {
                reachable += 1;
            }
            let shared = Arc::new(LinkShared {
                server: *sid,
                stop: AtomicBool::new(false),
                state: AtomicU8::new(STATE_CLOSED),
                delivered: AtomicU64::new(0),
            });
            safereg_obs::global()
                .gauge(&names::link_state_gauge("transport", sid.0))
                .set(u64::from(STATE_CLOSED));
            let (out_tx, out_rx) =
                bounded::<Arc<SealedFrame>>(config.chan_capacity, config.shed_policy);
            links.insert(
                *sid,
                ServerLink {
                    outbox: out_tx,
                    shared: Arc::clone(&shared),
                },
            );
            let sup = Supervisor {
                addr: *addr,
                chain: chain.clone(),
                config,
                shared,
                outbox: out_rx,
                responses: tx.clone(),
                // Jitter rolls only need to be decorrelated across links.
                rng: DetRng::seed_from(0x5AFE_0000 + u64::from(sid.0)),
            };
            std::thread::Builder::new()
                .name(format!("safereg-link-{sid}"))
                .spawn(move || sup.run(first))
                .expect("spawn link supervisor");
        }
        if reachable == 0 {
            for link in links.values() {
                link.shared.stop.store(true, Ordering::SeqCst);
            }
            return Err(ClientError::Disconnected);
        }
        Ok(ClusterClient {
            id,
            chain,
            links,
            responses: rx,
            _tx: tx,
            config,
            recorder: Arc::new(NullRecorder),
        })
    }

    /// This client's identity.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The client's transport policy.
    pub fn config(&self) -> TransportConfig {
        self.config
    }

    /// Overrides the operation-level policy (deadline, retry budget).
    /// Link supervisors keep the policy they were started with; to change
    /// connect/backoff behaviour, reconnect with
    /// [`ClusterClient::connect_with`].
    pub fn set_config(&mut self, config: TransportConfig) {
        self.config = config;
    }

    /// Overrides the per-operation deadline (default
    /// [`TransportConfig::default`]'s `op_deadline`, 10 s).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.config.op_deadline = timeout;
    }

    /// Installs a structured-event sink; events are stamped with
    /// wall-clock microseconds ([`trace::wall_micros`]).
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = recorder;
    }

    /// The breaker state of one server link (0 Closed, 1 HalfOpen,
    /// 2 Open), or `None` for an unknown server.
    pub fn link_state(&self, server: ServerId) -> Option<u8> {
        self.links
            .get(&server)
            .map(|l| l.shared.state.load(Ordering::SeqCst))
    }

    /// How many links are currently Closed (healthy).
    pub fn healthy_links(&self) -> usize {
        self.links
            .values()
            .filter(|l| l.shared.state.load(Ordering::SeqCst) == STATE_CLOSED)
            .count()
    }

    /// Seals an envelope once for its destination link. Returns `None`
    /// for non-server destinations. The caller keeps the [`Arc`] for
    /// retries — a resend is an `Arc` clone, not a re-encode.
    fn seal_for(
        &self,
        env: &Envelope,
        trace: TraceCtx,
    ) -> Option<(ServerId, MsgClass, Arc<SealedFrame>)> {
        let NodeId::Server(sid) = env.dst else {
            return None;
        };
        Some((
            sid,
            MsgClass::of(&env.msg),
            Arc::new(seal_envelope_traced(&self.chain, env, trace)),
        ))
    }

    /// Queues a sealed frame on its link's bounded outbox.
    ///
    /// Under [`ShedPolicy::Block`] a full outbox blocks for at most the
    /// config's `io_timeout`; a timeout is accounted as a shed (the frame
    /// is protocol-safe to lose — ops resend). Under the drop policies
    /// the channel sheds internally and reports the outcome.
    fn send_sealed(&self, sid: ServerId, class: MsgClass, sealed: &Arc<SealedFrame>) {
        let Some(link) = self.links.get(&sid) else {
            return;
        };
        let reg = safereg_obs::global();
        if link.shared.state.load(Ordering::SeqCst) == STATE_OPEN {
            // Breaker open: the server has repeatedly failed to deliver a
            // single frame. Don't queue traffic it will never see — the
            // quorum logic treats it like a silent Byzantine server.
            reg.counter(names::TRANSPORT_SEND_DROPPED).inc();
            return;
        }
        let bytes = sealed.payload_len() as u64;
        reg.counter(&format!("transport.sent.{class}")).inc();
        reg.counter(&format!("transport.sent_bytes.{class}"))
            .add(bytes);
        self.recorder.record(trace::Event {
            at: trace::wall_micros(),
            kind: trace::EventKind::MsgSent { class, bytes },
        });
        let shed = match self.config.shed_policy {
            ShedPolicy::Block => {
                match link
                    .outbox
                    .send_timeout(Arc::clone(sealed), self.config.io_timeout)
                {
                    Ok(outcome) => outcome.shed(),
                    Err(SendTimeoutError::Timeout(_)) => true,
                    Err(SendTimeoutError::Disconnected(_)) => {
                        reg.counter(names::TRANSPORT_SEND_DROPPED).inc();
                        return;
                    }
                }
            }
            _ => match link.outbox.send(Arc::clone(sealed)) {
                Ok(outcome) => outcome.shed(),
                Err(_) => {
                    reg.counter(names::TRANSPORT_SEND_DROPPED).inc();
                    return;
                }
            },
        };
        if shed {
            reg.counter(names::CHAN_SHED).inc();
            reg.counter(&names::shed_counter(self.config.shed_policy.label()))
                .inc();
        }
    }

    /// Drives an operation to completion.
    ///
    /// The operation deadline is sliced into `retry_budget + 1` windows;
    /// at each window boundary every envelope whose server has not yet
    /// answered is resent (safe — ops dedupe per server). Combined with
    /// the link supervisors this heals the common failure: a connection
    /// died carrying the request, the supervisor reconnected, and the
    /// resend lands on the fresh socket.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] if the quorum never materialises within the
    /// deadline, [`ClientError::Disconnected`] if the client is shut down.
    pub fn run_op(&mut self, op: &mut dyn ClientOp) -> Result<OpOutput, ClientError> {
        // Drain stale responses from previous (timed-out) operations.
        while self.responses.try_recv().is_ok() {}
        self.recorder.record(trace::Event {
            at: trace::wall_micros(),
            kind: trace::EventKind::OpInvoked {
                op: op.op_id(),
                write: op.is_write(),
            },
        });
        // Head-based sampling: one decision for the whole op; every frame
        // of the op carries the same (possibly NONE) context.
        let op_id = op.op_id();
        let root = TraceCtx::for_op(&op_id, self.config.trace_sample);
        let me = span::node::client(op_id.client);
        if root.is_sampled() {
            safereg_obs::global()
                .counter(names::TRACE_SAMPLED_OPS)
                .inc();
            span::record_global(root, SpanKind::Start, trace::wall_micros(), 0, me, 0);
        }
        let started = std::time::Instant::now();
        let mut resends: u32 = 0;
        // Last frame sent to each server and not yet answered — the
        // resend set for retry ticks. Frames are sealed exactly once;
        // resends clone the `Arc`, not the bytes.
        let mut pending: BTreeMap<ServerId, (MsgClass, Arc<SealedFrame>)> = BTreeMap::new();
        for env in op.start() {
            if let Some((sid, class, sealed)) = self.seal_for(&env, root.with_phase(Phase::Rpc)) {
                self.send_sealed(sid, class, &sealed);
                pending.insert(sid, (class, sealed));
            }
        }
        let deadline = started + self.config.op_deadline;
        let slice = self.config.op_deadline / (self.config.retry_budget + 1);
        let mut next_resend = if self.config.retry_budget > 0 {
            Some(started + slice)
        } else {
            None
        };
        loop {
            if let Some(out) = op.output() {
                self.note_completion(op, started.elapsed(), root, resends);
                return Ok(out);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(ClientError::Timeout {
                    waited: self.config.op_deadline,
                });
            }
            if let Some(tick) = next_resend {
                if now >= tick {
                    let reg = safereg_obs::global();
                    let resend: Vec<_> = pending
                        .iter()
                        .map(|(sid, (class, sealed))| (*sid, *class, Arc::clone(sealed)))
                        .collect();
                    if !resend.is_empty() {
                        resends += 1;
                        span::record_global(
                            root.with_phase(Phase::Rpc),
                            SpanKind::Retry,
                            trace::wall_micros(),
                            0,
                            me,
                            resends,
                        );
                    }
                    for (sid, class, sealed) in resend {
                        reg.counter(names::TRANSPORT_OP_RETRIES).inc();
                        self.send_sealed(sid, class, &sealed);
                    }
                    let following = tick + slice;
                    next_resend = (following < deadline).then_some(following);
                    continue;
                }
            }
            let wake = next_resend.map_or(deadline, |t| t.min(deadline));
            let wait = wake.saturating_duration_since(now);
            match self.responses.recv_timeout(wait) {
                Ok((sid, msg)) => {
                    pending.remove(&sid);
                    for env in op.on_message(sid, &msg) {
                        if let Some((to, class, sealed)) =
                            self.seal_for(&env, root.with_phase(Phase::Rpc))
                        {
                            self.send_sealed(to, class, &sealed);
                            pending.insert(to, (class, sealed));
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return Err(ClientError::Disconnected),
            }
        }
    }

    /// Accounts a finished operation: wall-clock latency into the fast,
    /// slow or write histogram, fast/slow read counters, validation
    /// failures, a structured completion event and — when the op was
    /// head-sampled — a root `end` span carrying the slow-read cause.
    fn note_completion(&self, op: &dyn ClientOp, elapsed: Duration, root: TraceCtx, resends: u32) {
        let reg = safereg_obs::global();
        let micros = elapsed.as_micros() as u64;
        let path = op.read_path();
        match path {
            Some(ReadPath::Fast) => {
                reg.counter("transport.reads.fast").inc();
                reg.histogram("transport.op.latency_us.fast").record(micros);
            }
            Some(ReadPath::Slow) => {
                reg.counter("transport.reads.slow").inc();
                reg.histogram("transport.op.latency_us.slow").record(micros);
            }
            None if op.is_write() => {
                reg.histogram("transport.op.latency_us.write")
                    .record(micros);
            }
            None => {}
        }
        let failures = op.validation_failures();
        if failures > 0 {
            reg.counter("transport.read.validation_failures")
                .add(u64::from(failures));
        }
        self.recorder.record(trace::Event {
            at: trace::wall_micros(),
            kind: trace::EventKind::OpCompleted {
                op: op.op_id(),
                rounds: op.rounds(),
                path,
                validation_failures: failures,
            },
        });
        if root.is_sampled() {
            // On this path a resend pass only ever happens because a
            // server went quiet within its slice, so resends double as
            // the network-fault evidence.
            let cause = (path == Some(ReadPath::Slow)).then(|| {
                let cause = span::attribute_slow_read(&SlowEvidence {
                    retry_passes: resends,
                    unreachable: resends,
                    validation_failures: u64::from(failures),
                    ..SlowEvidence::default()
                });
                span::count_slow_cause(cause, root.id);
                cause
            });
            span::record_global_end(
                root,
                trace::wall_micros(),
                micros,
                span::node::client(op.op_id().client),
                cause,
            );
        }
    }
}

impl Drop for ClusterClient {
    fn drop(&mut self) {
        for link in self.links.values() {
            link.shared.stop.store(true, Ordering::SeqCst);
        }
        // Dropping `links` closes every outbox sender; supervisors notice
        // on their next poll tick and tear their sockets down.
    }
}

/// One server link's owner: connects, pumps the outbox onto the socket,
/// and heals the connection when it dies.
struct Supervisor {
    addr: SocketAddr,
    chain: KeyChain,
    config: TransportConfig,
    shared: Arc<LinkShared>,
    outbox: BoundedReceiver<Arc<SealedFrame>>,
    responses: BoundedSender<(ServerId, ServerToClient)>,
    rng: DetRng,
}

impl Supervisor {
    fn run(mut self, first: Option<TcpStream>) {
        let mut first = first;
        // Consecutive sessions (or connect attempts) that ended without a
        // single delivered frame — the breaker's failure count.
        let mut failures: u32 = 0;
        let mut ever_connected = first.is_some();
        loop {
            if self.stopped() {
                return;
            }
            let stream = match first.take() {
                Some(s) => Some(s),
                None => {
                    if failures > 0 && !self.backoff_wait(failures - 1) {
                        return;
                    }
                    let connected =
                        TcpStream::connect_timeout(&self.addr, self.config.connect_timeout).ok();
                    if connected.is_some() {
                        // Every supervisor-loop connect replaces a lost or
                        // refused connection; the initial synchronous
                        // connect happens before the loop and is excluded.
                        safereg_obs::global()
                            .counter(names::TRANSPORT_RECONNECTS)
                            .inc();
                    }
                    connected
                }
            };
            let Some(stream) = stream else {
                failures += 1;
                self.note_link_failure(failures);
                continue;
            };
            stream.set_nodelay(true).ok();
            if ever_connected && self.shared.state.load(Ordering::SeqCst) != STATE_CLOSED {
                // Reconnected after trouble, but a TCP handshake is weak
                // evidence (backlogs accept for dead apps): stay half-open
                // until a frame actually arrives.
                self.shared.set_state(STATE_HALF_OPEN);
            }
            ever_connected = true;
            let delivered_before = self.shared.delivered.load(Ordering::SeqCst);
            self.pump_session(stream);
            if self.shared.delivered.load(Ordering::SeqCst) > delivered_before {
                // The server proved itself this session; the next death is
                // a fresh incident, not an escalation.
                failures = 0;
            } else {
                failures += 1;
                self.note_link_failure(failures);
            }
        }
    }

    fn stopped(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    fn note_link_failure(&self, failures: u32) {
        if failures >= self.config.breaker_threshold {
            self.shared.set_state(STATE_OPEN);
        }
    }

    /// Sleeps the backoff delay for `attempt`, draining (and dropping)
    /// queued frames so stale traffic is not replayed onto the next
    /// connection. Returns `false` when the client shut down mid-wait.
    fn backoff_wait(&mut self, attempt: u32) -> bool {
        let delay = self.config.backoff.delay(attempt, self.rng.next_u64());
        let reg = safereg_obs::global();
        reg.histogram(names::TRANSPORT_BACKOFF_WAIT_MS)
            .record(delay.as_millis() as u64);
        let until = std::time::Instant::now() + delay;
        loop {
            if self.stopped() {
                return false;
            }
            let now = std::time::Instant::now();
            if now >= until {
                return true;
            }
            let step = (until - now).min(Duration::from_millis(50));
            match self.outbox.recv_timeout(step) {
                Ok(_) => {
                    reg.counter(names::TRANSPORT_SEND_DROPPED).inc();
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return false,
            }
        }
    }

    /// Runs one connected session: spawns the reader, pumps the outbox
    /// onto the socket, and tears both halves down when either side dies.
    fn pump_session(&mut self, stream: TcpStream) {
        let Ok(reader) = stream.try_clone() else {
            return;
        };
        let session_dead = Arc::new(AtomicBool::new(false));
        let reader_dead = Arc::clone(&session_dead);
        let shared = Arc::clone(&self.shared);
        let chain = self.chain.clone();
        let tx = self.responses.clone();
        let policy = self.config.shed_policy;
        let handle = std::thread::Builder::new()
            .name(format!("safereg-client-rx-{}", self.shared.server))
            .spawn(move || {
                let mut reader = reader;
                let sid = shared.server;
                while let Ok(frame) = read_frame(&mut reader) {
                    let env = match open_envelope(&chain, &frame) {
                        Ok(e) => e,
                        Err(_) => continue, // corrupted/forged: MAC rejected
                    };
                    // Delivery, not connection, closes the breaker.
                    shared.delivered.fetch_add(1, Ordering::SeqCst);
                    shared.set_state(STATE_CLOSED);
                    let class = MsgClass::of(&env.msg);
                    let reg = safereg_obs::global();
                    reg.counter(&format!("transport.recv.{class}")).inc();
                    reg.counter(&format!("transport.recv_bytes.{class}"))
                        .add(frame.len() as u64);
                    if let (NodeId::Server(src), Message::ToClient(m)) = (env.src, env.msg) {
                        if src == sid {
                            match tx.send((src, m)) {
                                Ok(outcome) => {
                                    if outcome.shed() {
                                        reg.counter(names::CHAN_SHED).inc();
                                        reg.counter(&names::shed_counter(policy.label())).inc();
                                    }
                                }
                                Err(_) => break,
                            }
                        }
                    }
                }
                reader_dead.store(true, Ordering::SeqCst);
                let _ = reader.shutdown(Shutdown::Both);
            })
            .expect("spawn client reader");

        let mut writer = stream;
        let max_batch = self.config.max_batch_frames.max(1);
        loop {
            if self.stopped() || session_dead.load(Ordering::SeqCst) {
                break;
            }
            match self.outbox.recv_timeout(Duration::from_millis(50)) {
                Ok(sealed) => {
                    // Drain whatever else is already queued into the same
                    // vectored write: a burst of round-1 messages to this
                    // server leaves in one syscall instead of one each.
                    let mut batch = vec![sealed];
                    while batch.len() < max_batch {
                        match self.outbox.try_recv() {
                            Ok(next) => batch.push(next),
                            Err(_) => break,
                        }
                    }
                    safereg_obs::global()
                        .histogram(names::TRANSPORT_BATCH_FRAMES)
                        .record(batch.len() as u64);
                    if SealedFrame::write_batch(&mut writer, &batch).is_err() {
                        break;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        let _ = writer.shutdown(Shutdown::Both);
        let _ = handle.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::WriterId;
    use safereg_common::msg::{ClientToServer, OpId, Payload};
    use safereg_common::tag::Tag;
    use safereg_common::value::Value;
    use std::net::TcpListener;

    /// A full bounded outbox sheds frames (instead of queueing without
    /// limit) and the sheds are visible on the `chan.shed` counters.
    ///
    /// Deterministic setup: the "server" accepts the connection but never
    /// reads, so the link's writer thread blocks mid-write on a frame
    /// larger than the kernel socket buffers. With `chan_capacity = 1`,
    /// the next send fills the queue and every send after that sheds.
    #[test]
    fn full_outbox_sheds_and_counts() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let mut conns = Vec::new();
            while let Ok((stream, _)) = listener.accept() {
                conns.push(stream); // hold open, never read
            }
        });

        let cfg = TransportConfig {
            chan_capacity: 1,
            shed_policy: ShedPolicy::DropNewest,
            breaker_threshold: u32::MAX, // keep the breaker out of the way
            ..TransportConfig::default()
        };
        let servers = BTreeMap::from([(ServerId(0), addr)]);
        let client = ClusterClient::connect_with(
            ClientId::Writer(WriterId(0)),
            &servers,
            KeyChain::from_master_seed(b"shed-test"),
            cfg,
        )
        .unwrap();

        let reg = safereg_obs::global();
        let total_before = reg.counter(names::CHAN_SHED).get();
        let policy_before = reg
            .counter(&names::shed_counter(cfg.shed_policy.label()))
            .get();

        // 8 MiB payload: far beyond loopback socket buffering, so the
        // writer thread wedges inside `write_to` on the first frame.
        let env = Envelope::to_server(
            ClientId::Writer(WriterId(0)),
            ServerId(0),
            ClientToServer::PutData {
                op: OpId::new(WriterId(0), 1),
                tag: Tag::new(1, WriterId(0)),
                payload: Payload::Full(Value::from(vec![0xA5u8; 8 << 20])),
            },
        );
        let (sid, class, sealed) = client.seal_for(&env, TraceCtx::NONE).unwrap();
        client.send_sealed(sid, class, &sealed);
        // Let the writer thread pick the frame up and block on the socket.
        std::thread::sleep(Duration::from_millis(300));
        // Fills the capacity-1 queue, then sheds.
        for _ in 0..3 {
            client.send_sealed(sid, class, &sealed);
        }

        assert!(
            reg.counter(names::CHAN_SHED).get() >= total_before + 2,
            "expected at least 2 sheds on the full outbox"
        );
        assert!(
            reg.counter(&names::shed_counter(cfg.shed_policy.label()))
                .get()
                >= policy_before + 2,
            "per-policy shed counter must move with chan.shed"
        );
    }
}
