//! TCP cluster client: drives any [`ClientOp`] against real servers.
//!
//! The client keeps one *supervised link* per server. Each link runs a
//! background supervisor that owns the connection, reconnects with
//! exponential backoff + jitter when it dies, and tracks a circuit-breaker
//! health state so callers degrade gracefully to whatever `n − f` subset
//! is actually reachable. Responses from every link funnel into one
//! channel; [`ClusterClient::run_op`] sends an operation's envelopes,
//! feeds it responses as they arrive, resends unanswered envelopes on a
//! retry schedule carved out of the operation deadline, and returns the
//! outcome.
//!
//! Resending is protocol-safe: every [`ClientOp`] deduplicates responses
//! per server and ignores stale op-ids, so a duplicate request at worst
//! costs a duplicate (ignored) response. Liveness only needs `n − f`
//! servers to answer (§II of the paper); the supervisors' job is to make
//! sure a transient disconnect costs one retry slice instead of the whole
//! deadline.

use std::collections::BTreeMap;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

use safereg_common::config::TransportConfig;
use safereg_common::history::ReadPath;
use safereg_common::ids::{ClientId, NodeId, ServerId};
use safereg_common::msg::{Envelope, Message, ServerToClient};
use safereg_common::rng::DetRng;
use safereg_common::sync::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use safereg_core::op::{ClientOp, OpOutput};
use safereg_crypto::keychain::KeyChain;
use safereg_obs::names;
use safereg_obs::trace::{self, MsgClass, NullRecorder, Recorder};

use crate::frame::{open_envelope, read_frame, seal_envelope, write_frame};

/// Errors from driving operations over TCP.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect to a server.
    Connect {
        /// The server that refused.
        server: ServerId,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The operation did not complete within the deadline. Note the model
    /// is asynchronous — a deadline is a harness convenience, not part of
    /// the protocol.
    Timeout {
        /// How long we waited.
        waited: Duration,
    },
    /// All response channels closed (cluster gone).
    Disconnected,
}

/// Coarse classification of a [`ClientError`] for retry policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Worth retrying: the fault is plausibly transient (a refused
    /// connect, an elapsed deadline while servers churn).
    Retriable,
    /// Not worth retrying without outside intervention.
    Fatal,
}

impl ClientError {
    /// Classifies this error for retry decisions. Connection refusals and
    /// deadline misses are [`FaultClass::Retriable`] — the supervisors
    /// keep healing links in the background, so a later attempt can
    /// succeed. [`ClientError::Disconnected`] means no server was ever
    /// reachable and is [`FaultClass::Fatal`].
    pub fn fault_class(&self) -> FaultClass {
        match self {
            ClientError::Connect { .. } | ClientError::Timeout { .. } => FaultClass::Retriable,
            ClientError::Disconnected => FaultClass::Fatal,
        }
    }

    /// `true` when [`fault_class`](Self::fault_class) is
    /// [`FaultClass::Retriable`].
    pub fn is_retriable(&self) -> bool {
        self.fault_class() == FaultClass::Retriable
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect { server, source } => {
                write!(f, "failed to connect to {server}: {source}")
            }
            ClientError::Timeout { waited } => {
                write!(f, "operation incomplete after {waited:?}")
            }
            ClientError::Disconnected => write!(f, "cluster connections closed"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Connect { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Circuit-breaker states, stored in [`LinkShared::state`].
const STATE_CLOSED: u8 = 0;
const STATE_HALF_OPEN: u8 = 1;
const STATE_OPEN: u8 = 2;

/// State shared between a link's supervisor, its reader thread and the
/// client front-end.
struct LinkShared {
    server: ServerId,
    stop: AtomicBool,
    /// Breaker state: 0 Closed, 1 HalfOpen, 2 Open.
    state: AtomicU8,
    /// Total authenticated frames delivered by this link, ever. The
    /// breaker trusts *delivery*, not connect success: a blackholed
    /// server still accepts TCP handshakes into its listener backlog, so
    /// only a delivered frame proves the server is really back.
    delivered: AtomicU64,
}

impl LinkShared {
    fn set_state(&self, new: u8) {
        let old = self.state.swap(new, Ordering::SeqCst);
        if old != new {
            let reg = safereg_obs::global();
            reg.counter(names::TRANSPORT_BREAKER_TRANSITIONS).inc();
            reg.gauge(&names::link_state_gauge("transport", self.server.0))
                .set(u64::from(new));
        }
    }
}

/// The client-side handle to one supervised server link.
struct ServerLink {
    outbox: Sender<Vec<u8>>,
    shared: Arc<LinkShared>,
}

/// A client's supervised connections to every server in a deployment.
pub struct ClusterClient {
    id: ClientId,
    chain: KeyChain,
    links: BTreeMap<ServerId, ServerLink>,
    responses: Receiver<(ServerId, ServerToClient)>,
    /// Kept so the response channel never reports `Disconnected` while
    /// the client is alive, even if every link is momentarily down.
    _tx: Sender<(ServerId, ServerToClient)>,
    config: TransportConfig,
    recorder: Arc<dyn Recorder>,
}

impl std::fmt::Debug for ClusterClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterClient")
            .field("id", &self.id)
            .field("servers", &self.links.len())
            .finish()
    }
}

impl ClusterClient {
    /// Connects `id` to the given servers with [`TransportConfig::default`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Disconnected`] when *no* server is reachable.
    pub fn connect(
        id: ClientId,
        servers: &BTreeMap<ServerId, SocketAddr>,
        chain: KeyChain,
    ) -> Result<Self, ClientError> {
        Self::connect_with(id, servers, chain, TransportConfig::default())
    }

    /// Connects `id` to the given servers. Servers that refuse the initial
    /// connection are *not* abandoned: their supervisors keep retrying
    /// with backoff, so a server that comes up late (or back up) rejoins
    /// the quorum automatically.
    ///
    /// # Errors
    ///
    /// [`ClientError::Disconnected`] when *no* server is reachable at
    /// connect time — an all-dead cluster is a configuration error, not a
    /// fault to ride out.
    pub fn connect_with(
        id: ClientId,
        servers: &BTreeMap<ServerId, SocketAddr>,
        chain: KeyChain,
        config: TransportConfig,
    ) -> Result<Self, ClientError> {
        let (tx, rx) = unbounded();
        let mut links = BTreeMap::new();
        let mut reachable = 0usize;
        for (sid, addr) in servers {
            let first = TcpStream::connect_timeout(addr, config.connect_timeout).ok();
            if first.is_some() {
                reachable += 1;
            }
            let shared = Arc::new(LinkShared {
                server: *sid,
                stop: AtomicBool::new(false),
                state: AtomicU8::new(STATE_CLOSED),
                delivered: AtomicU64::new(0),
            });
            safereg_obs::global()
                .gauge(&names::link_state_gauge("transport", sid.0))
                .set(u64::from(STATE_CLOSED));
            let (out_tx, out_rx) = unbounded::<Vec<u8>>();
            links.insert(
                *sid,
                ServerLink {
                    outbox: out_tx,
                    shared: Arc::clone(&shared),
                },
            );
            let sup = Supervisor {
                addr: *addr,
                chain: chain.clone(),
                config,
                shared,
                outbox: out_rx,
                responses: tx.clone(),
                // Jitter rolls only need to be decorrelated across links.
                rng: DetRng::seed_from(0x5AFE_0000 + u64::from(sid.0)),
            };
            std::thread::Builder::new()
                .name(format!("safereg-link-{sid}"))
                .spawn(move || sup.run(first))
                .expect("spawn link supervisor");
        }
        if reachable == 0 {
            for link in links.values() {
                link.shared.stop.store(true, Ordering::SeqCst);
            }
            return Err(ClientError::Disconnected);
        }
        Ok(ClusterClient {
            id,
            chain,
            links,
            responses: rx,
            _tx: tx,
            config,
            recorder: Arc::new(NullRecorder),
        })
    }

    /// This client's identity.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The client's transport policy.
    pub fn config(&self) -> TransportConfig {
        self.config
    }

    /// Overrides the operation-level policy (deadline, retry budget).
    /// Link supervisors keep the policy they were started with; to change
    /// connect/backoff behaviour, reconnect with
    /// [`ClusterClient::connect_with`].
    pub fn set_config(&mut self, config: TransportConfig) {
        self.config = config;
    }

    /// Overrides the per-operation deadline (default
    /// [`TransportConfig::default`]'s `op_deadline`, 10 s).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.config.op_deadline = timeout;
    }

    /// Installs a structured-event sink; events are stamped with
    /// wall-clock microseconds ([`trace::wall_micros`]).
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = recorder;
    }

    /// The breaker state of one server link (0 Closed, 1 HalfOpen,
    /// 2 Open), or `None` for an unknown server.
    pub fn link_state(&self, server: ServerId) -> Option<u8> {
        self.links
            .get(&server)
            .map(|l| l.shared.state.load(Ordering::SeqCst))
    }

    /// How many links are currently Closed (healthy).
    pub fn healthy_links(&self) -> usize {
        self.links
            .values()
            .filter(|l| l.shared.state.load(Ordering::SeqCst) == STATE_CLOSED)
            .count()
    }

    fn send(&self, env: &Envelope) {
        let NodeId::Server(sid) = env.dst else {
            return;
        };
        let Some(link) = self.links.get(&sid) else {
            return;
        };
        if link.shared.state.load(Ordering::SeqCst) == STATE_OPEN {
            // Breaker open: the server has repeatedly failed to deliver a
            // single frame. Don't queue traffic it will never see — the
            // quorum logic treats it like a silent Byzantine server.
            safereg_obs::global()
                .counter(names::TRANSPORT_SEND_DROPPED)
                .inc();
            return;
        }
        let sealed = seal_envelope(&self.chain, env);
        let class = MsgClass::of(&env.msg);
        let reg = safereg_obs::global();
        reg.counter(&format!("transport.sent.{class}")).inc();
        reg.counter(&format!("transport.sent_bytes.{class}"))
            .add(sealed.len() as u64);
        self.recorder.record(trace::Event {
            at: trace::wall_micros(),
            kind: trace::EventKind::MsgSent {
                class,
                bytes: sealed.len() as u64,
            },
        });
        if link.outbox.send(sealed).is_err() {
            reg.counter(names::TRANSPORT_SEND_DROPPED).inc();
        }
    }

    /// Drives an operation to completion.
    ///
    /// The operation deadline is sliced into `retry_budget + 1` windows;
    /// at each window boundary every envelope whose server has not yet
    /// answered is resent (safe — ops dedupe per server). Combined with
    /// the link supervisors this heals the common failure: a connection
    /// died carrying the request, the supervisor reconnected, and the
    /// resend lands on the fresh socket.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] if the quorum never materialises within the
    /// deadline, [`ClientError::Disconnected`] if the client is shut down.
    pub fn run_op(&mut self, op: &mut dyn ClientOp) -> Result<OpOutput, ClientError> {
        // Drain stale responses from previous (timed-out) operations.
        while self.responses.try_recv().is_ok() {}
        self.recorder.record(trace::Event {
            at: trace::wall_micros(),
            kind: trace::EventKind::OpInvoked {
                op: op.op_id(),
                write: op.is_write(),
            },
        });
        let started = std::time::Instant::now();
        // Last envelope sent to each server and not yet answered — the
        // resend set for retry ticks.
        let mut pending: BTreeMap<ServerId, Envelope> = BTreeMap::new();
        for env in op.start() {
            if let NodeId::Server(sid) = env.dst {
                pending.insert(sid, env.clone());
            }
            self.send(&env);
        }
        let deadline = started + self.config.op_deadline;
        let slice = self.config.op_deadline / (self.config.retry_budget + 1);
        let mut next_resend = if self.config.retry_budget > 0 {
            Some(started + slice)
        } else {
            None
        };
        loop {
            if let Some(out) = op.output() {
                self.note_completion(op, started.elapsed());
                return Ok(out);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(ClientError::Timeout {
                    waited: self.config.op_deadline,
                });
            }
            if let Some(tick) = next_resend {
                if now >= tick {
                    let reg = safereg_obs::global();
                    for env in pending.values().cloned().collect::<Vec<_>>() {
                        reg.counter(names::TRANSPORT_OP_RETRIES).inc();
                        self.send(&env);
                    }
                    let following = tick + slice;
                    next_resend = (following < deadline).then_some(following);
                    continue;
                }
            }
            let wake = next_resend.map_or(deadline, |t| t.min(deadline));
            let wait = wake.saturating_duration_since(now);
            match self.responses.recv_timeout(wait) {
                Ok((sid, msg)) => {
                    pending.remove(&sid);
                    for env in op.on_message(sid, &msg) {
                        if let NodeId::Server(to) = env.dst {
                            pending.insert(to, env.clone());
                        }
                        self.send(&env);
                    }
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return Err(ClientError::Disconnected),
            }
        }
    }

    /// Accounts a finished operation: wall-clock latency into the fast,
    /// slow or write histogram, fast/slow read counters, validation
    /// failures and a structured completion event.
    fn note_completion(&self, op: &dyn ClientOp, elapsed: Duration) {
        let reg = safereg_obs::global();
        let micros = elapsed.as_micros() as u64;
        let path = op.read_path();
        match path {
            Some(ReadPath::Fast) => {
                reg.counter("transport.reads.fast").inc();
                reg.histogram("transport.op.latency_us.fast").record(micros);
            }
            Some(ReadPath::Slow) => {
                reg.counter("transport.reads.slow").inc();
                reg.histogram("transport.op.latency_us.slow").record(micros);
            }
            None if op.is_write() => {
                reg.histogram("transport.op.latency_us.write")
                    .record(micros);
            }
            None => {}
        }
        let failures = op.validation_failures();
        if failures > 0 {
            reg.counter("transport.read.validation_failures")
                .add(u64::from(failures));
        }
        self.recorder.record(trace::Event {
            at: trace::wall_micros(),
            kind: trace::EventKind::OpCompleted {
                op: op.op_id(),
                rounds: op.rounds(),
                path,
                validation_failures: failures,
            },
        });
    }
}

impl Drop for ClusterClient {
    fn drop(&mut self) {
        for link in self.links.values() {
            link.shared.stop.store(true, Ordering::SeqCst);
        }
        // Dropping `links` closes every outbox sender; supervisors notice
        // on their next poll tick and tear their sockets down.
    }
}

/// One server link's owner: connects, pumps the outbox onto the socket,
/// and heals the connection when it dies.
struct Supervisor {
    addr: SocketAddr,
    chain: KeyChain,
    config: TransportConfig,
    shared: Arc<LinkShared>,
    outbox: Receiver<Vec<u8>>,
    responses: Sender<(ServerId, ServerToClient)>,
    rng: DetRng,
}

impl Supervisor {
    fn run(mut self, first: Option<TcpStream>) {
        let mut first = first;
        // Consecutive sessions (or connect attempts) that ended without a
        // single delivered frame — the breaker's failure count.
        let mut failures: u32 = 0;
        let mut ever_connected = first.is_some();
        loop {
            if self.stopped() {
                return;
            }
            let stream = match first.take() {
                Some(s) => Some(s),
                None => {
                    if failures > 0 && !self.backoff_wait(failures - 1) {
                        return;
                    }
                    let connected =
                        TcpStream::connect_timeout(&self.addr, self.config.connect_timeout).ok();
                    if connected.is_some() {
                        // Every supervisor-loop connect replaces a lost or
                        // refused connection; the initial synchronous
                        // connect happens before the loop and is excluded.
                        safereg_obs::global()
                            .counter(names::TRANSPORT_RECONNECTS)
                            .inc();
                    }
                    connected
                }
            };
            let Some(stream) = stream else {
                failures += 1;
                self.note_link_failure(failures);
                continue;
            };
            stream.set_nodelay(true).ok();
            if ever_connected && self.shared.state.load(Ordering::SeqCst) != STATE_CLOSED {
                // Reconnected after trouble, but a TCP handshake is weak
                // evidence (backlogs accept for dead apps): stay half-open
                // until a frame actually arrives.
                self.shared.set_state(STATE_HALF_OPEN);
            }
            ever_connected = true;
            let delivered_before = self.shared.delivered.load(Ordering::SeqCst);
            self.pump_session(stream);
            if self.shared.delivered.load(Ordering::SeqCst) > delivered_before {
                // The server proved itself this session; the next death is
                // a fresh incident, not an escalation.
                failures = 0;
            } else {
                failures += 1;
                self.note_link_failure(failures);
            }
        }
    }

    fn stopped(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    fn note_link_failure(&self, failures: u32) {
        if failures >= self.config.breaker_threshold {
            self.shared.set_state(STATE_OPEN);
        }
    }

    /// Sleeps the backoff delay for `attempt`, draining (and dropping)
    /// queued frames so stale traffic is not replayed onto the next
    /// connection. Returns `false` when the client shut down mid-wait.
    fn backoff_wait(&mut self, attempt: u32) -> bool {
        let delay = self.config.backoff.delay(attempt, self.rng.next_u64());
        let reg = safereg_obs::global();
        reg.histogram(names::TRANSPORT_BACKOFF_WAIT_MS)
            .record(delay.as_millis() as u64);
        let until = std::time::Instant::now() + delay;
        loop {
            if self.stopped() {
                return false;
            }
            let now = std::time::Instant::now();
            if now >= until {
                return true;
            }
            let step = (until - now).min(Duration::from_millis(50));
            match self.outbox.recv_timeout(step) {
                Ok(_) => {
                    reg.counter(names::TRANSPORT_SEND_DROPPED).inc();
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return false,
            }
        }
    }

    /// Runs one connected session: spawns the reader, pumps the outbox
    /// onto the socket, and tears both halves down when either side dies.
    fn pump_session(&mut self, stream: TcpStream) {
        let Ok(reader) = stream.try_clone() else {
            return;
        };
        let session_dead = Arc::new(AtomicBool::new(false));
        let reader_dead = Arc::clone(&session_dead);
        let shared = Arc::clone(&self.shared);
        let chain = self.chain.clone();
        let tx = self.responses.clone();
        let handle = std::thread::Builder::new()
            .name(format!("safereg-client-rx-{}", self.shared.server))
            .spawn(move || {
                let mut reader = reader;
                let sid = shared.server;
                while let Ok(frame) = read_frame(&mut reader) {
                    let env = match open_envelope(&chain, &frame) {
                        Ok(e) => e,
                        Err(_) => continue, // corrupted/forged: MAC rejected
                    };
                    // Delivery, not connection, closes the breaker.
                    shared.delivered.fetch_add(1, Ordering::SeqCst);
                    shared.set_state(STATE_CLOSED);
                    let class = MsgClass::of(&env.msg);
                    let reg = safereg_obs::global();
                    reg.counter(&format!("transport.recv.{class}")).inc();
                    reg.counter(&format!("transport.recv_bytes.{class}"))
                        .add(frame.len() as u64);
                    if let (NodeId::Server(src), Message::ToClient(m)) = (env.src, env.msg) {
                        if src == sid && tx.send((src, m)).is_err() {
                            break;
                        }
                    }
                }
                reader_dead.store(true, Ordering::SeqCst);
                let _ = reader.shutdown(Shutdown::Both);
            })
            .expect("spawn client reader");

        let mut writer = stream;
        loop {
            if self.stopped() || session_dead.load(Ordering::SeqCst) {
                break;
            }
            match self.outbox.recv_timeout(Duration::from_millis(50)) {
                Ok(sealed) => {
                    if write_frame(&mut writer, &sealed).is_err() {
                        break;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        let _ = writer.shutdown(Shutdown::Both);
        let _ = handle.join();
    }
}
