//! TCP cluster client: drives any [`ClientOp`] against real servers.
//!
//! The client keeps one connection per server. A background thread per
//! connection reads authenticated responses and funnels them into a
//! channel; [`ClusterClient::run_op`] sends an operation's envelopes,
//! feeds it responses as they arrive, and returns its outcome.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use safereg_common::history::ReadPath;
use safereg_common::ids::{ClientId, NodeId, ServerId};
use safereg_common::msg::{Envelope, Message, ServerToClient};
use safereg_common::sync::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use safereg_common::sync::Mutex;
use safereg_core::op::{ClientOp, OpOutput};
use safereg_crypto::keychain::KeyChain;
use safereg_obs::trace::{self, MsgClass, NullRecorder, Recorder};

use crate::frame::{open_envelope, read_frame, seal_envelope, write_frame};

/// Errors from driving operations over TCP.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect to a server.
    Connect {
        /// The server that refused.
        server: ServerId,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The operation did not complete within the deadline. Note the model
    /// is asynchronous — a deadline is a harness convenience, not part of
    /// the protocol.
    Timeout {
        /// How long we waited.
        waited: Duration,
    },
    /// All response channels closed (cluster gone).
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect { server, source } => {
                write!(f, "failed to connect to {server}: {source}")
            }
            ClientError::Timeout { waited } => {
                write!(f, "operation incomplete after {waited:?}")
            }
            ClientError::Disconnected => write!(f, "cluster connections closed"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A client's connections to every server in a deployment.
pub struct ClusterClient {
    id: ClientId,
    chain: KeyChain,
    writers: BTreeMap<ServerId, Arc<Mutex<TcpStream>>>,
    responses: Receiver<(ServerId, ServerToClient)>,
    /// Kept so reader threads can detect shutdown via channel closure.
    _tx: Sender<(ServerId, ServerToClient)>,
    timeout: Duration,
    recorder: Arc<dyn Recorder>,
}

impl std::fmt::Debug for ClusterClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterClient")
            .field("id", &self.id)
            .field("servers", &self.writers.len())
            .finish()
    }
}

impl ClusterClient {
    /// Connects `id` to the given servers. A server that refuses the
    /// connection is treated as faulty (equivalent to a silent server in
    /// the model) and skipped — the quorum logic tolerates up to `f` of
    /// those.
    ///
    /// # Errors
    ///
    /// [`ClientError::Disconnected`] when *no* server is reachable.
    pub fn connect(
        id: ClientId,
        servers: &BTreeMap<ServerId, SocketAddr>,
        chain: KeyChain,
    ) -> Result<Self, ClientError> {
        let (tx, rx) = unbounded();
        let mut writers = BTreeMap::new();
        for (sid, addr) in servers {
            let stream = match TcpStream::connect_timeout(addr, Duration::from_secs(5)) {
                Ok(s) => s,
                Err(_) => continue, // faulty server: skip, quorum copes
            };
            stream.set_nodelay(true).ok();
            let reader = stream.try_clone().map_err(|source| ClientError::Connect {
                server: *sid,
                source,
            })?;
            writers.insert(*sid, Arc::new(Mutex::new(stream)));

            let tx = tx.clone();
            let chain = chain.clone();
            let sid = *sid;
            std::thread::Builder::new()
                .name(format!("safereg-client-rx-{sid}"))
                .spawn(move || {
                    let mut reader = reader;
                    loop {
                        let frame = match read_frame(&mut reader) {
                            Ok(f) => f,
                            Err(_) => return,
                        };
                        let env = match open_envelope(&chain, &frame) {
                            Ok(e) => e,
                            Err(_) => continue,
                        };
                        let class = MsgClass::of(&env.msg);
                        let reg = safereg_obs::global();
                        reg.counter(&format!("transport.recv.{class}")).inc();
                        reg.counter(&format!("transport.recv_bytes.{class}"))
                            .add(frame.len() as u64);
                        if let (NodeId::Server(src), Message::ToClient(m)) = (env.src, env.msg) {
                            if tx.send((src, m)).is_err() {
                                return;
                            }
                        }
                    }
                })
                .expect("spawn client reader");
        }
        if writers.is_empty() {
            return Err(ClientError::Disconnected);
        }
        Ok(ClusterClient {
            id,
            chain,
            writers,
            responses: rx,
            _tx: tx,
            timeout: Duration::from_secs(10),
            recorder: Arc::new(NullRecorder),
        })
    }

    /// This client's identity.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Overrides the per-operation deadline (default 10 s).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Installs a structured-event sink; events are stamped with
    /// wall-clock microseconds ([`trace::wall_micros`]).
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = recorder;
    }

    fn send(&self, env: &Envelope) {
        if let NodeId::Server(sid) = env.dst {
            if let Some(stream) = self.writers.get(&sid) {
                let sealed = seal_envelope(&self.chain, env);
                let class = MsgClass::of(&env.msg);
                let reg = safereg_obs::global();
                reg.counter(&format!("transport.sent.{class}")).inc();
                reg.counter(&format!("transport.sent_bytes.{class}"))
                    .add(sealed.len() as u64);
                self.recorder.record(trace::Event {
                    at: trace::wall_micros(),
                    kind: trace::EventKind::MsgSent {
                        class,
                        bytes: sealed.len() as u64,
                    },
                });
                // A dead connection is equivalent to a slow channel; the
                // quorum logic copes with the missing response.
                let _ = write_frame(&mut *stream.lock(), &sealed);
            }
        }
    }

    /// Drives an operation to completion.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] if the quorum never materialises within the
    /// deadline, [`ClientError::Disconnected`] if every connection died.
    pub fn run_op(&mut self, op: &mut dyn ClientOp) -> Result<OpOutput, ClientError> {
        // Drain stale responses from previous (timed-out) operations.
        while self.responses.try_recv().is_ok() {}
        self.recorder.record(trace::Event {
            at: trace::wall_micros(),
            kind: trace::EventKind::OpInvoked {
                op: op.op_id(),
                write: op.is_write(),
            },
        });
        let started = std::time::Instant::now();
        for env in op.start() {
            self.send(&env);
        }
        let deadline = started + self.timeout;
        loop {
            if let Some(out) = op.output() {
                self.note_completion(op, started.elapsed());
                return Ok(out);
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(ClientError::Timeout {
                    waited: self.timeout,
                });
            }
            match self.responses.recv_timeout(remaining) {
                Ok((sid, msg)) => {
                    for env in op.on_message(sid, &msg) {
                        self.send(&env);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(ClientError::Timeout {
                        waited: self.timeout,
                    })
                }
                Err(RecvTimeoutError::Disconnected) => return Err(ClientError::Disconnected),
            }
        }
    }

    /// Accounts a finished operation: wall-clock latency into the fast,
    /// slow or write histogram, fast/slow read counters, validation
    /// failures and a structured completion event.
    fn note_completion(&self, op: &dyn ClientOp, elapsed: Duration) {
        let reg = safereg_obs::global();
        let micros = elapsed.as_micros() as u64;
        let path = op.read_path();
        match path {
            Some(ReadPath::Fast) => {
                reg.counter("transport.reads.fast").inc();
                reg.histogram("transport.op.latency_us.fast").record(micros);
            }
            Some(ReadPath::Slow) => {
                reg.counter("transport.reads.slow").inc();
                reg.histogram("transport.op.latency_us.slow").record(micros);
            }
            None if op.is_write() => {
                reg.histogram("transport.op.latency_us.write")
                    .record(micros);
            }
            None => {}
        }
        let failures = op.validation_failures();
        if failures > 0 {
            reg.counter("transport.read.validation_failures")
                .add(u64::from(failures));
        }
        self.recorder.record(trace::Event {
            at: trace::wall_micros(),
            kind: trace::EventKind::OpCompleted {
                op: op.op_id(),
                rounds: op.rounds(),
                path,
                validation_failures: failures,
            },
        });
    }
}
