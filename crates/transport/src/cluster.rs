//! In-process loopback clusters for examples and tests.
//!
//! [`LocalCluster`] spawns `n` [`crate::server::ServerHost`]s on ephemeral
//! loopback ports — a full deployment in one process. Replicas can be
//! crashed ([`LocalCluster::crash`]), respawned in place on the same
//! address ([`LocalCluster::restart`]), or swapped for a live Byzantine
//! behavior from the shared bestiary ([`LocalCluster::set_role`]) — the
//! same seeded adversaries the simulator runs, now over real sockets.

use std::collections::BTreeMap;
use std::net::SocketAddr;

use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ClientId, ServerId};
use safereg_common::msg::Payload;
use safereg_common::value::Value;
use safereg_core::behavior::ByzRole;
use safereg_core::server::ServerNode;
use safereg_crypto::keychain::KeyChain;
use safereg_obs::names;

use crate::client::{ClientError, ClusterClient};
use crate::server::ServerHost;

/// A running loopback cluster.
pub struct LocalCluster {
    cfg: QuorumConfig,
    chain: KeyChain,
    hosts: BTreeMap<ServerId, ServerHost>,
}

impl std::fmt::Debug for LocalCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalCluster")
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl LocalCluster {
    /// Starts `n` replicated-register servers (BSR-style state).
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn start(cfg: QuorumConfig, master_seed: &[u8]) -> std::io::Result<Self> {
        Self::start_with(cfg, master_seed, |sid| ServerNode::new_replicated(sid, cfg))
    }

    /// Starts a coded cluster: server `s` holds its coded element `c_0^s`
    /// of the initial value (Fig. 6).
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    ///
    /// # Panics
    ///
    /// Panics when the configuration admits no `[n, n − 5f]` code.
    pub fn start_coded(cfg: QuorumConfig, master_seed: &[u8]) -> std::io::Result<Self> {
        let k = cfg.mds_k().expect("BCSR cluster needs n > 5f");
        let code = safereg_mds::rs::ReedSolomon::new(cfg.n(), k).expect("valid code");
        let initial = safereg_mds::stripe::encode_value(&code, &Value::initial());
        Self::start_with(cfg, master_seed, move |sid| {
            ServerNode::with_initial(sid, cfg, Payload::Coded(initial[sid.0 as usize].clone()))
        })
    }

    /// Starts a cluster with a custom node factory.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn start_with(
        cfg: QuorumConfig,
        master_seed: &[u8],
        mut make_node: impl FnMut(ServerId) -> ServerNode,
    ) -> std::io::Result<Self> {
        let chain = KeyChain::from_master_seed(master_seed);
        let mut hosts = BTreeMap::new();
        for sid in cfg.servers() {
            let host = ServerHost::spawn(make_node(sid), chain.clone())?;
            hosts.insert(sid, host);
        }
        Ok(LocalCluster { cfg, chain, hosts })
    }

    /// The deployment configuration.
    pub fn config(&self) -> &QuorumConfig {
        &self.cfg
    }

    /// Server addresses, for external clients.
    pub fn addrs(&self) -> BTreeMap<ServerId, SocketAddr> {
        self.hosts.iter().map(|(sid, h)| (*sid, h.addr())).collect()
    }

    /// Connects a new client to every server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn client(&self, id: impl Into<ClientId>) -> Result<ClusterClient, ClientError> {
        ClusterClient::connect(id.into(), &self.addrs(), self.chain.clone())
    }

    /// Connects a new client with an explicit transport policy — e.g.
    /// [`TransportConfig::aggressive`](safereg_common::config::TransportConfig::aggressive)
    /// for fault-injection tests that want fast reconnect/retry cycles.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn client_with_config(
        &self,
        id: impl Into<ClientId>,
        config: safereg_common::config::TransportConfig,
    ) -> Result<ClusterClient, ClientError> {
        ClusterClient::connect_with(id.into(), &self.addrs(), self.chain.clone(), config)
    }

    /// The deployment's key chain — lets external harnesses (e.g. a
    /// chaos proxy setup) build clients against substituted addresses.
    pub fn chain(&self) -> &KeyChain {
        &self.chain
    }

    /// Crashes a server (stops its host) — models a crash/silent fault.
    pub fn crash(&mut self, sid: ServerId) {
        if let Some(host) = self.hosts.get_mut(&sid) {
            host.stop();
        }
    }

    /// Restarts a crashed replica in place: a fresh (state-lost) honest
    /// node listening on the old address — the crash-recover supervisor
    /// the soak harness leans on. Counts under `server.restarts`.
    ///
    /// # Errors
    ///
    /// Propagates bind errors (e.g. the old port was reclaimed).
    pub fn restart(&mut self, sid: ServerId) -> std::io::Result<()> {
        let addr = match self.hosts.get_mut(&sid) {
            Some(host) => {
                let addr = host.addr();
                host.stop();
                addr
            }
            None => return Ok(()),
        };
        let node = ServerNode::new_replicated(sid, self.cfg);
        let host = ServerHost::spawn_on(node, self.chain.clone(), addr)?;
        self.hosts.insert(sid, host);
        safereg_obs::global().counter(names::SERVER_RESTARTS).inc();
        Ok(())
    }

    /// Replaces a replica with a live Byzantine behavior (or restores it to
    /// `ByzRole::Correct`), respawning on the same address so clients keep
    /// their configured endpoints. `seed` drives the behavior's fault
    /// stream, making the misbehavior reproducible.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn set_role(&mut self, sid: ServerId, role: ByzRole, seed: u64) -> std::io::Result<()> {
        let addr = match self.hosts.get_mut(&sid) {
            Some(host) => {
                let addr = host.addr();
                host.stop();
                addr
            }
            None => return Ok(()),
        };
        let host = match role {
            ByzRole::Correct => ServerHost::spawn_on(
                ServerNode::new_replicated(sid, self.cfg),
                self.chain.clone(),
                addr,
            )?,
            faulty => ServerHost::spawn_behavior_on(
                faulty.build(sid, self.cfg, seed),
                self.chain.clone(),
                seed,
                addr,
            )?,
        };
        self.hosts.insert(sid, host);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ReaderId, WriterId};
    use safereg_core::client::{BcsrReader, BcsrWriter, BsrReader, BsrWriter};

    #[test]
    fn bsr_roundtrip_over_loopback() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let cluster = LocalCluster::start(cfg, b"t1").unwrap();

        let mut wc = cluster.client(WriterId(0)).unwrap();
        let mut writer = BsrWriter::new(WriterId(0), cfg);
        let out = wc
            .run_op(&mut writer.write(Value::from("tcp-value")))
            .unwrap();
        assert_eq!(out.tag().num, 1);

        let mut rc = cluster.client(ReaderId(0)).unwrap();
        let mut reader = BsrReader::new(ReaderId(0), cfg);
        let mut read = reader.read();
        let out = rc.run_op(&mut read).unwrap();
        assert_eq!(out.read_value().unwrap().as_bytes(), b"tcp-value");
    }

    #[test]
    fn bsr_survives_f_crashed_servers() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut cluster = LocalCluster::start(cfg, b"t2").unwrap();
        cluster.crash(ServerId(4));

        let mut wc = cluster.client(WriterId(0)).unwrap();
        let mut writer = BsrWriter::new(WriterId(0), cfg);
        wc.run_op(&mut writer.write(Value::from("still alive")))
            .unwrap();

        let mut rc = cluster.client(ReaderId(0)).unwrap();
        let mut reader = BsrReader::new(ReaderId(0), cfg);
        let mut read = reader.read();
        let out = rc.run_op(&mut read).unwrap();
        assert_eq!(out.read_value().unwrap().as_bytes(), b"still alive");
    }

    #[test]
    fn loopback_roundtrip_populates_global_metrics() {
        use safereg_obs::trace::{EventKind, RingRecorder};
        use std::sync::Arc;

        let reg = safereg_obs::global();
        let fast_before = reg.counter("transport.reads.fast").get();
        let opened_before = reg.counter("transport.conn.opened").get();
        let sent_before = reg.counter("transport.sent.query_data").get();

        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let cluster = LocalCluster::start(cfg, b"metrics").unwrap();

        let mut wc = cluster.client(WriterId(7)).unwrap();
        let mut writer = BsrWriter::new(WriterId(7), cfg);
        wc.run_op(&mut writer.write(Value::from("observed")))
            .unwrap();

        let ring = Arc::new(RingRecorder::new(64));
        let mut rc = cluster.client(ReaderId(7)).unwrap();
        rc.set_recorder(ring.clone());
        let mut reader = BsrReader::new(ReaderId(7), cfg);
        let mut read = reader.read();
        rc.run_op(&mut read).unwrap();

        // A quiescent BSR read over a correct cluster takes the fast path.
        assert!(reg.counter("transport.reads.fast").get() > fast_before);
        // Each client opened one connection per server.
        assert!(reg.counter("transport.conn.opened").get() >= opened_before + 10);
        // The read queried every server once.
        assert_eq!(
            reg.counter("transport.sent.query_data").get(),
            sent_before + 5
        );
        assert!(reg.histogram("transport.op.latency_us.write").count() > 0);
        assert!(reg.histogram("transport.frame.seal_us").count() > 0);

        let events = ring.events();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::OpInvoked { write: false, .. })));
        assert!(events.iter().any(|e| matches!(
            e.kind,
            EventKind::OpCompleted {
                path: Some(safereg_common::history::ReadPath::Fast),
                ..
            }
        )));
    }

    #[test]
    fn restart_in_place_serves_on_the_old_address() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut cluster = LocalCluster::start(cfg, b"t-restart").unwrap();
        let addrs_before = cluster.addrs();

        cluster.crash(ServerId(2));
        cluster.restart(ServerId(2)).unwrap();
        assert_eq!(cluster.addrs(), addrs_before, "address must be stable");

        let mut wc = cluster.client(WriterId(0)).unwrap();
        let mut writer = BsrWriter::new(WriterId(0), cfg);
        wc.run_op(&mut writer.write(Value::from("post-restart")))
            .unwrap();
        let mut rc = cluster.client(ReaderId(0)).unwrap();
        let mut reader = BsrReader::new(ReaderId(0), cfg);
        let mut read = reader.read();
        let out = rc.run_op(&mut read).unwrap();
        assert_eq!(out.read_value().unwrap().as_bytes(), b"post-restart");
    }

    #[test]
    fn bsr_survives_f_live_byzantine_replicas() {
        use safereg_core::behavior::ByzRole;

        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut cluster = LocalCluster::start(cfg, b"t-byz").unwrap();
        // f = 1: one replica turns fabricator mid-run; quorums mask it.
        cluster
            .set_role(ServerId(3), ByzRole::Fabricator, 99)
            .unwrap();

        let mut wc = cluster.client(WriterId(0)).unwrap();
        let mut writer = BsrWriter::new(WriterId(0), cfg);
        wc.run_op(&mut writer.write(Value::from("truth"))).unwrap();

        let mut rc = cluster.client(ReaderId(0)).unwrap();
        let mut reader = BsrReader::new(ReaderId(0), cfg);
        let mut read = reader.read();
        let out = rc.run_op(&mut read).unwrap();
        assert_eq!(
            out.read_value().unwrap().as_bytes(),
            b"truth",
            "f+1 witness rule must reject the fabricator's forgery"
        );

        // Rotation back to correct keeps the address and the service.
        cluster.set_role(ServerId(3), ByzRole::Correct, 0).unwrap();
        let mut rc2 = cluster.client(ReaderId(1)).unwrap();
        let mut reader2 = BsrReader::new(ReaderId(1), cfg);
        let mut read2 = reader2.read();
        let out = rc2.run_op(&mut read2).unwrap();
        assert_eq!(out.read_value().unwrap().as_bytes(), b"truth");
    }

    #[test]
    fn bcsr_roundtrip_over_loopback() {
        let cfg = QuorumConfig::minimal_bcsr(1).unwrap();
        let cluster = LocalCluster::start_coded(cfg, b"t3").unwrap();

        let mut wc = cluster.client(WriterId(0)).unwrap();
        let mut writer = BcsrWriter::new(WriterId(0), cfg).unwrap();
        wc.run_op(&mut writer.write(&Value::from("coded over tcp")))
            .unwrap();

        let mut rc = cluster.client(ReaderId(0)).unwrap();
        let mut reader = BcsrReader::new(ReaderId(0), cfg).unwrap();
        let mut read = reader.read();
        let out = rc.run_op(&mut read).unwrap();
        assert_eq!(out.read_value().unwrap().as_bytes(), b"coded over tcp");
    }
}
