//! Length-prefixed, MAC-authenticated frames.
//!
//! Wire layout per frame: `u32` little-endian length, then `length` bytes
//! of payload. For authenticated envelope exchange the payload is
//! `encode(envelope) || HMAC(pair_key(src, dst), encode(envelope))` —
//! sealed and opened by [`seal_envelope`] / [`open_envelope`], which derive
//! the link key from the envelope's own endpoints. A frame whose MAC does
//! not verify under the claimed endpoints' key is rejected, which is
//! exactly the authentication guarantee the paper's model assumes.

use std::io::{Read, Write};
use std::sync::{Arc, OnceLock};

use safereg_common::codec::{Wire, WireError};
use safereg_common::msg::Envelope;
use safereg_crypto::auth::{AuthCodec, AuthError};
use safereg_crypto::keychain::KeyChain;
use safereg_obs::metrics::{Counter, Histogram};

/// Cached handles into the global registry so the per-frame hot path
/// pays one atomic instead of a name lookup.
fn seal_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| safereg_obs::global().histogram("transport.frame.seal_us"))
}

fn open_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| safereg_obs::global().histogram("transport.frame.open_us"))
}

fn auth_fail_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| safereg_obs::global().counter("transport.frame.auth_fail"))
}

/// Maximum accepted frame length (64 MiB + MAC headroom).
pub const MAX_FRAME: usize = (64 << 20) + 64;

/// Errors while reading or authenticating frames.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// The peer announced an oversized frame.
    TooLarge {
        /// Claimed length.
        claimed: usize,
    },
    /// The payload failed to decode as an envelope.
    Codec(WireError),
    /// The MAC did not verify for the claimed endpoints.
    Auth(AuthError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "socket error: {e}"),
            FrameError::TooLarge { claimed } => write!(f, "frame of {claimed} bytes refused"),
            FrameError::Codec(e) => write!(f, "malformed envelope: {e}"),
            FrameError::Auth(e) => write!(f, "authentication failure: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), FrameError> {
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame.
///
/// # Errors
///
/// Propagates socket errors; refuses frames larger than [`MAX_FRAME`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, FrameError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge { claimed: len });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Seals an envelope: wire-encodes it and appends the MAC under the
/// link key of its `(src, dst)` pair.
pub fn seal_envelope(chain: &KeyChain, env: &Envelope) -> Vec<u8> {
    let start = std::time::Instant::now();
    let bytes = env.to_wire_bytes();
    let sealed = AuthCodec::new(chain.pair_key(env.src, env.dst)).seal(&bytes);
    seal_hist().record(start.elapsed().as_micros() as u64);
    sealed
}

/// Opens a sealed envelope: decodes, then verifies the MAC under the key
/// of the *claimed* endpoints — a forger who lacks that pair key cannot
/// produce a frame that passes.
///
/// # Errors
///
/// [`FrameError::Codec`] for malformed bytes, [`FrameError::Auth`] for MAC
/// failures.
pub fn open_envelope(chain: &KeyChain, frame: &[u8]) -> Result<Envelope, FrameError> {
    let start = std::time::Instant::now();
    let result = open_envelope_inner(chain, frame);
    open_hist().record(start.elapsed().as_micros() as u64);
    if matches!(result, Err(FrameError::Auth(_))) {
        auth_fail_counter().inc();
    }
    result
}

fn open_envelope_inner(chain: &KeyChain, frame: &[u8]) -> Result<Envelope, FrameError> {
    if frame.len() < 32 {
        return Err(FrameError::Auth(AuthError::TooShort { len: frame.len() }));
    }
    let (payload, _mac) = frame.split_at(frame.len() - 32);
    let env = Envelope::from_wire_bytes(payload).map_err(FrameError::Codec)?;
    AuthCodec::new(chain.pair_key(env.src, env.dst))
        .open(frame)
        .map_err(FrameError::Auth)?;
    Ok(env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ClientId, ReaderId, ServerId};
    use safereg_common::msg::{ClientToServer, OpId};

    fn env() -> Envelope {
        Envelope::to_server(
            ClientId::Reader(ReaderId(1)),
            ServerId(0),
            ClientToServer::QueryData {
                op: OpId::new(ReaderId(1), 7),
            },
        )
    }

    #[test]
    fn frame_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"world!").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"world!");
    }

    #[test]
    fn oversized_frames_are_refused() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn sealed_envelope_roundtrips() {
        let chain = KeyChain::from_master_seed(b"seed");
        let frame = seal_envelope(&chain, &env());
        let back = open_envelope(&chain, &frame).unwrap();
        assert_eq!(back, env());
    }

    #[test]
    fn tampered_envelope_is_rejected() {
        let chain = KeyChain::from_master_seed(b"seed");
        let mut frame = seal_envelope(&chain, &env());
        frame[4] ^= 0xFF;
        assert!(matches!(
            open_envelope(&chain, &frame),
            Err(FrameError::Auth(_)) | Err(FrameError::Codec(_))
        ));
    }

    #[test]
    fn wrong_keychain_is_rejected() {
        let chain = KeyChain::from_master_seed(b"seed");
        let other = KeyChain::from_master_seed(b"other");
        let frame = seal_envelope(&chain, &env());
        assert!(matches!(
            open_envelope(&other, &frame),
            Err(FrameError::Auth(_))
        ));
    }

    #[test]
    fn spoofed_source_fails_authentication() {
        // A malicious server re-labels an envelope as coming from another
        // process; the MAC was made under the wrong pair key and fails.
        let chain = KeyChain::from_master_seed(b"seed");
        let mut e = env();
        let frame = seal_envelope(&chain, &e);
        // Forge: claim the same payload came from server 5 instead.
        e.src = ServerId(5).into();
        let forged_payload = e.to_wire_bytes();
        let mut forged = forged_payload.clone();
        forged.extend_from_slice(&frame[frame.len() - 32..]); // reuse old MAC
        assert!(matches!(
            open_envelope(&chain, &forged),
            Err(FrameError::Auth(_))
        ));
    }
}
