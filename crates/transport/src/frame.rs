//! Length-prefixed, MAC-authenticated frames over zero-copy [`Bytes`].
//!
//! Wire layout per frame: `u32` little-endian length, then `length` bytes
//! of payload. For authenticated envelope exchange the payload is
//! `encode(trace) || encode(envelope) || HMAC(pair_key(src, dst), …)` —
//! a fixed 16-byte [`TraceCtx`] ahead of the envelope head, both under
//! the MAC — sealed by [`seal_envelope_traced`] into a [`SealedFrame`]
//! and opened by [`open_envelope_traced`], which derive the link key from
//! the envelope's own endpoints. A frame whose MAC does not verify under
//! the claimed endpoints' key is rejected, which is exactly the
//! authentication guarantee the paper's model assumes — and because the
//! trace context sits under the same MAC, a Byzantine relay can no more
//! forge causality than payloads. The untraced [`seal_envelope`] /
//! [`open_envelope`] wrappers carry [`TraceCtx::NONE`] (16 zero bytes).
//!
//! # Zero-copy discipline
//!
//! Sealing never materializes the full frame: [`Envelope::encode_parts`]
//! splits the encoding into a small serialized head and an O(1) clone of
//! the payload's [`Bytes`] tail, the MAC is streamed over both parts
//! ([`AuthCodec::mac_of_parts`]), and [`write_frame`] hands the header,
//! head, tail and MAC to the socket as a vectored write. Opening borrows:
//! [`read_frame`] returns the payload as [`Bytes`] and
//! [`open_envelope`] decodes it with the borrowing decoder, so payload
//! fields are O(1) slices of the received buffer. The
//! [`wire.bytes_copied`](safereg_obs::names::WIRE_BYTES_COPIED) counter
//! observes any payload memcpy the copying fallback performs; on this path
//! it stays at zero.

use std::io::{ErrorKind, IoSlice, Read, Write};
use std::sync::{Arc, OnceLock};

use safereg_common::buf::Bytes;
use safereg_common::codec::{payload_bytes_copied, BytesReader, Wire, WireError};
use safereg_common::msg::Envelope;
use safereg_common::trace::TraceCtx;
use safereg_crypto::auth::{AuthCodec, AuthError};
use safereg_crypto::keychain::KeyChain;
use safereg_crypto::sha256::DIGEST_LEN;
use safereg_obs::metrics::{Counter, Histogram};
use safereg_obs::names;

/// Cached handles into the global registry so the per-frame hot path
/// pays one atomic instead of a name lookup.
fn seal_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| safereg_obs::global().histogram("transport.frame.seal_us"))
}

fn open_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| safereg_obs::global().histogram("transport.frame.open_us"))
}

fn auth_fail_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| safereg_obs::global().counter("transport.frame.auth_fail"))
}

fn bytes_copied_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| safereg_obs::global().counter(names::WIRE_BYTES_COPIED))
}

/// Maximum accepted frame length (64 MiB + MAC headroom).
pub const MAX_FRAME: usize = (64 << 20) + 64;

/// Errors while reading or authenticating frames.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// The peer announced an oversized frame.
    TooLarge {
        /// Claimed length.
        claimed: usize,
    },
    /// The payload failed to decode as an envelope.
    Codec(WireError),
    /// The MAC did not verify for the claimed endpoints.
    Auth(AuthError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "socket error: {e}"),
            FrameError::TooLarge { claimed } => write!(f, "frame of {claimed} bytes refused"),
            FrameError::Codec(e) => write!(f, "malformed envelope: {e}"),
            FrameError::Auth(e) => write!(f, "authentication failure: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame whose payload is the concatenation of `parts`,
/// without joining them into a contiguous buffer first: the length
/// header and every part go to the socket as one vectored write.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_frame<W: Write, B: AsRef<[u8]>>(w: &mut W, parts: &[B]) -> Result<(), FrameError> {
    let len: usize = parts.iter().map(|p| p.as_ref().len()).sum();
    let header = (len as u32).to_le_bytes();
    let mut slices: Vec<&[u8]> = Vec::with_capacity(parts.len() + 1);
    slices.push(&header);
    slices.extend(parts.iter().map(AsRef::as_ref));
    write_all_vectored(w, &mut slices)?;
    w.flush()?;
    Ok(())
}

/// Drives `Write::write_vectored` to completion across short writes,
/// advancing through `parts` in place. Public so other wire layers (the KV
/// host's batched reply drain) can flush multi-frame batches with one
/// vectored write instead of a `write_all` per part.
///
/// # Errors
///
/// Propagates socket errors; a zero-length vectored write becomes
/// [`ErrorKind::WriteZero`].
pub fn write_all_vectored<W: Write>(w: &mut W, parts: &mut [&[u8]]) -> std::io::Result<()> {
    let mut idx = 0;
    while idx < parts.len() {
        if parts[idx].is_empty() {
            idx += 1;
            continue;
        }
        let bufs: Vec<IoSlice<'_>> = parts[idx..].iter().map(|p| IoSlice::new(p)).collect();
        let mut n = match w.write_vectored(&bufs) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::WriteZero,
                    "failed to write whole frame",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        while idx < parts.len() && n >= parts[idx].len() {
            n -= parts[idx].len();
            idx += 1;
        }
        if idx < parts.len() {
            parts[idx] = &parts[idx][n..];
        }
    }
    Ok(())
}

/// Reads one frame, returning its payload as an immutable [`Bytes`]
/// buffer ready for O(1) slicing by the decode path.
///
/// # Errors
///
/// Propagates socket errors; refuses frames larger than [`MAX_FRAME`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Bytes, FrameError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge { claimed: len });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Bytes::from(payload))
}

/// An envelope sealed for one link: the serialized head, the payload
/// tail (an O(1) clone of the sender's value buffer) and the MAC over
/// their concatenation.
///
/// The three parts are kept separate so the frame can be written
/// vectored and resent any number of times without re-encoding or
/// re-MACing; [`SealedFrame::write_to`] is the hot-path sink.
#[derive(Debug, Clone)]
pub struct SealedFrame {
    head: Vec<u8>,
    tail: Bytes,
    mac: [u8; DIGEST_LEN],
}

impl SealedFrame {
    /// Total payload length of the frame (head + tail + MAC), i.e. the
    /// value the `u32` length header carries.
    pub fn payload_len(&self) -> usize {
        self.head.len() + self.tail.len() + DIGEST_LEN
    }

    /// Writes a batch of sealed frames as one vectored write — four iovecs
    /// per frame (length header, head, zero-copy tail, MAC) — so an outbox
    /// drained in bursts costs a syscall per batch, not per frame.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn write_batch<W: Write, F: std::borrow::Borrow<SealedFrame>>(
        w: &mut W,
        frames: &[F],
    ) -> Result<(), FrameError> {
        let headers: Vec<[u8; 4]> = frames
            .iter()
            .map(|f| (f.borrow().payload_len() as u32).to_le_bytes())
            .collect();
        let mut slices: Vec<&[u8]> = Vec::with_capacity(frames.len() * 4);
        for (frame, header) in frames.iter().zip(&headers) {
            let frame = frame.borrow();
            slices.push(header);
            slices.push(&frame.head);
            slices.push(frame.tail.as_ref());
            slices.push(&frame.mac);
        }
        write_all_vectored(w, &mut slices)?;
        w.flush()?;
        Ok(())
    }

    /// Writes the frame as one vectored write: header, head, tail, MAC.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), FrameError> {
        write_frame(w, &[&self.head[..], self.tail.as_ref(), &self.mac[..]])
    }

    /// Materializes the sealed payload contiguously (tests, proxies).
    /// The hot path never calls this — it writes the parts directly.
    pub fn to_bytes(&self) -> Bytes {
        let mut joined = Vec::with_capacity(self.payload_len());
        joined.extend_from_slice(&self.head);
        joined.extend_from_slice(self.tail.as_ref());
        joined.extend_from_slice(&self.mac);
        Bytes::from(joined)
    }
}

/// Seals an untraced envelope: [`seal_envelope_traced`] with
/// [`TraceCtx::NONE`] (one branch downstream, 16 zero bytes on the wire).
pub fn seal_envelope(chain: &KeyChain, env: &Envelope) -> SealedFrame {
    seal_envelope_traced(chain, env, TraceCtx::NONE)
}

/// Seals an envelope under the link key of its `(src, dst)` pair, with
/// the sender's trace context ahead of the envelope head.
///
/// The encoding is split by [`Envelope::encode_parts`]: the payload tail
/// is an O(1) clone of the envelope's value buffer, never copied, and the
/// MAC is streamed over `trace ++ head ++ tail` without concatenating
/// them — the trace context is MAC-covered for free.
pub fn seal_envelope_traced(chain: &KeyChain, env: &Envelope, trace: TraceCtx) -> SealedFrame {
    let start = std::time::Instant::now();
    let (env_head, tail) = env.encode_parts();
    let tail = tail.unwrap_or_default();
    let mut head = Vec::with_capacity(TraceCtx::WIRE_LEN + env_head.len());
    trace.encode_to(&mut head);
    head.extend_from_slice(&env_head);
    let mac =
        AuthCodec::new(chain.pair_key(env.src, env.dst)).mac_of_parts(&[&head, tail.as_ref()]);
    seal_hist().record(start.elapsed().as_micros() as u64);
    SealedFrame { head, tail, mac }
}

/// Opens a sealed envelope: decodes with the borrowing decoder (payload
/// fields are O(1) slices of `frame`), then verifies the MAC under the
/// key of the *claimed* endpoints — a forger who lacks that pair key
/// cannot produce a frame that passes.
///
/// Accepts anything convertible into [`Bytes`]; pass `&Bytes` (an O(1)
/// clone) to keep the relay path copy-free. Any payload bytes the decode
/// does copy are surfaced on the
/// [`wire.bytes_copied`](names::WIRE_BYTES_COPIED) counter.
///
/// # Errors
///
/// [`FrameError::Codec`] for malformed bytes, [`FrameError::Auth`] for MAC
/// failures.
pub fn open_envelope(chain: &KeyChain, frame: impl Into<Bytes>) -> Result<Envelope, FrameError> {
    open_envelope_traced(chain, frame).map(|(env, _)| env)
}

/// As [`open_envelope`], additionally returning the MAC-verified trace
/// context the sender stamped into the frame head.
///
/// # Errors
///
/// [`FrameError::Codec`] for malformed bytes, [`FrameError::Auth`] for MAC
/// failures.
pub fn open_envelope_traced(
    chain: &KeyChain,
    frame: impl Into<Bytes>,
) -> Result<(Envelope, TraceCtx), FrameError> {
    let frame = frame.into();
    let start = std::time::Instant::now();
    let copied_before = payload_bytes_copied();
    let result = open_envelope_inner(chain, &frame);
    // Global delta: exact on the wire path, where only this open runs; a
    // concurrent copying decode elsewhere can only inflate it, never hide
    // a copy — safe for a "must be zero" gate.
    bytes_copied_counter().add(payload_bytes_copied() - copied_before);
    open_hist().record(start.elapsed().as_micros() as u64);
    if matches!(result, Err(FrameError::Auth(_))) {
        auth_fail_counter().inc();
    }
    result
}

fn open_envelope_inner(
    chain: &KeyChain,
    frame: &Bytes,
) -> Result<(Envelope, TraceCtx), FrameError> {
    if frame.len() < DIGEST_LEN {
        return Err(FrameError::Auth(AuthError::TooShort { len: frame.len() }));
    }
    let payload = frame.slice(..frame.len() - DIGEST_LEN);
    let mut r = BytesReader::new(&payload);
    let trace = TraceCtx::decode_borrowed(&mut r).map_err(FrameError::Codec)?;
    let env = Envelope::decode_borrowed(&mut r).map_err(FrameError::Codec)?;
    if !r.is_empty() {
        return Err(FrameError::Codec(WireError::TrailingBytes {
            count: r.remaining(),
        }));
    }
    AuthCodec::new(chain.pair_key(env.src, env.dst))
        .open(frame.as_ref())
        .map_err(FrameError::Auth)?;
    Ok((env, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::ids::{ClientId, ReaderId, ServerId, WriterId};
    use safereg_common::msg::{ClientToServer, Message, OpId, Payload};
    use safereg_common::tag::Tag;
    use safereg_common::value::Value;

    fn env() -> Envelope {
        Envelope::to_server(
            ClientId::Reader(ReaderId(1)),
            ServerId(0),
            ClientToServer::QueryData {
                op: OpId::new(ReaderId(1), 7),
            },
        )
    }

    #[test]
    fn frame_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[&b"hello"[..]]).unwrap();
        write_frame(&mut buf, &[&b"wor"[..], &b""[..], &b"ld!"[..]]).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().as_ref(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().as_ref(), b"world!");
    }

    #[test]
    fn vectored_write_survives_short_writes() {
        /// A writer that accepts one byte per call.
        struct OneByte(Vec<u8>);
        impl Write for OneByte {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if buf.is_empty() {
                    return Ok(0);
                }
                self.0.push(buf[0]);
                Ok(1)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = OneByte(Vec::new());
        write_frame(&mut w, &[&b"ab"[..], &b"cde"[..]]).unwrap();
        let mut cursor = std::io::Cursor::new(w.0);
        assert_eq!(read_frame(&mut cursor).unwrap().as_ref(), b"abcde");
    }

    #[test]
    fn oversized_frames_are_refused() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn sealed_envelope_roundtrips() {
        let chain = KeyChain::from_master_seed(b"seed");
        let sealed = seal_envelope(&chain, &env());
        let frame = sealed.to_bytes();
        assert_eq!(frame.len(), sealed.payload_len());
        let back = open_envelope(&chain, &frame).unwrap();
        assert_eq!(back, env());
    }

    #[test]
    fn write_to_emits_the_same_bytes_as_to_bytes() {
        let chain = KeyChain::from_master_seed(b"seed");
        let sealed = seal_envelope(&chain, &env());
        let mut wire = Vec::new();
        sealed.write_to(&mut wire).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap(), sealed.to_bytes());
    }

    #[test]
    fn sealing_shares_the_payload_buffer() {
        // The sealed tail aliases the value's allocation: encode-once,
        // slice-per-destination.
        let chain = KeyChain::from_master_seed(b"seed");
        let value = Value::from(vec![7u8; 512]);
        let payload_ptr = value.bytes().as_ref().as_ptr();
        let e = Envelope::to_server(
            ClientId::Writer(WriterId(0)),
            ServerId(0),
            ClientToServer::PutData {
                op: OpId::new(WriterId(0), 1),
                tag: Tag::new(1, WriterId(0)),
                payload: Payload::Full(value),
            },
        );
        let sealed = seal_envelope(&chain, &e);
        assert_eq!(sealed.tail.as_ref().as_ptr(), payload_ptr);
        let back = open_envelope(&chain, sealed.to_bytes()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn opening_copies_no_payload_bytes() {
        let chain = KeyChain::from_master_seed(b"seed");
        let e = Envelope::to_server(
            ClientId::Writer(WriterId(0)),
            ServerId(0),
            ClientToServer::PutData {
                op: OpId::new(WriterId(0), 1),
                tag: Tag::new(1, WriterId(0)),
                payload: Payload::Full(Value::from(vec![9u8; 4096])),
            },
        );
        let frame = seal_envelope(&chain, &e).to_bytes();
        let before = payload_bytes_copied();
        let back = open_envelope(&chain, &frame).unwrap();
        assert_eq!(payload_bytes_copied(), before, "open must not memcpy");
        // And the decoded payload aliases the received frame.
        match back.msg {
            Message::ToServer(ClientToServer::PutData {
                payload: Payload::Full(v),
                ..
            }) => {
                let frame_range = frame.as_ref().as_ptr() as usize
                    ..frame.as_ref().as_ptr() as usize + frame.len();
                assert!(frame_range.contains(&(v.bytes().as_ref().as_ptr() as usize)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tampered_envelope_is_rejected() {
        let chain = KeyChain::from_master_seed(b"seed");
        let mut frame = seal_envelope(&chain, &env()).to_bytes().to_vec();
        frame[4] ^= 0xFF;
        assert!(matches!(
            open_envelope(&chain, frame),
            Err(FrameError::Auth(_)) | Err(FrameError::Codec(_))
        ));
    }

    #[test]
    fn wrong_keychain_is_rejected() {
        let chain = KeyChain::from_master_seed(b"seed");
        let other = KeyChain::from_master_seed(b"other");
        let frame = seal_envelope(&chain, &env()).to_bytes();
        assert!(matches!(
            open_envelope(&other, &frame),
            Err(FrameError::Auth(_))
        ));
    }

    #[test]
    fn spoofed_source_fails_authentication() {
        // A malicious server re-labels an envelope as coming from another
        // process; the MAC was made under the wrong pair key and fails.
        let chain = KeyChain::from_master_seed(b"seed");
        let mut e = env();
        let frame = seal_envelope(&chain, &e).to_bytes();
        // Forge: claim the same payload came from server 5 instead.
        e.src = ServerId(5).into();
        let mut forged = Vec::new();
        TraceCtx::NONE.encode_to(&mut forged);
        e.encode_to(&mut forged);
        forged.extend_from_slice(&frame.as_ref()[frame.len() - DIGEST_LEN..]); // reuse old MAC
        assert!(matches!(
            open_envelope(&chain, forged),
            Err(FrameError::Auth(_))
        ));
    }

    #[test]
    fn trace_context_roundtrips_under_the_mac() {
        let chain = KeyChain::from_master_seed(b"seed");
        let trace = TraceCtx {
            id: 0xABCD_EF01_2345_6789,
            op_seq: 7,
            phase: safereg_common::trace::Phase::Rpc as u8,
            hop: 1,
        };
        let sealed = seal_envelope_traced(&chain, &env(), trace);
        let (back, got) = open_envelope_traced(&chain, sealed.to_bytes()).unwrap();
        assert_eq!(back, env());
        assert_eq!(got, trace);
        // The untraced wrapper carries NONE and still interoperates.
        let (_, none) =
            open_envelope_traced(&chain, seal_envelope(&chain, &env()).to_bytes()).unwrap();
        assert_eq!(none, TraceCtx::NONE);
    }

    #[test]
    fn tampered_trace_context_fails_authentication() {
        // The trace bytes sit under the MAC: flipping any of the 16
        // head bytes must be rejected, not silently mis-attributed.
        let chain = KeyChain::from_master_seed(b"seed");
        let trace = TraceCtx {
            id: 99,
            op_seq: 1,
            phase: 0,
            hop: 0,
        };
        for byte in 0..TraceCtx::WIRE_LEN {
            let mut frame = seal_envelope_traced(&chain, &env(), trace)
                .to_bytes()
                .to_vec();
            frame[byte] ^= 0x40;
            assert!(
                matches!(
                    open_envelope(&chain, frame),
                    Err(FrameError::Auth(_)) | Err(FrameError::Codec(_))
                ),
                "flipped trace byte {byte} must not verify"
            );
        }
    }
}
