//! Real-socket deployment of the `safereg` protocols.
//!
//! The same sans-io state machines that run on the simulator run here over
//! TCP: [`frame`] provides length-prefixed, HMAC-authenticated framing of
//! wire-encoded [`safereg_common::msg::Envelope`]s (the paper's
//! authenticated channels, §II-A); [`server`] hosts a
//! [`safereg_core::server::ServerNode`] behind a listener with one thread
//! per connection; [`client`] connects a client to every server and drives
//! any [`safereg_core::op::ClientOp`] to completion; [`cluster`] spins up a
//! whole in-process cluster on loopback for examples and tests; [`chaos`]
//! is the simulator's fault bestiary ported to real sockets — seeded,
//! reproducible proxies that drop, delay, corrupt, truncate and kill
//! connections so the client's supervisors, retries and circuit breakers
//! can be exercised deterministically.
//!
//! The RB baseline is deliberately not given a TCP runtime — it exists to
//! be *measured against* under controlled delays, which the simulator does
//! better; see DESIGN.md.
//!
//! # Examples
//!
//! ```no_run
//! use safereg_common::{config::QuorumConfig, ids::{ReaderId, WriterId}, value::Value};
//! use safereg_core::client::{BsrReader, BsrWriter};
//! use safereg_transport::cluster::LocalCluster;
//!
//! let cfg = QuorumConfig::minimal_bsr(1)?;
//! let cluster = LocalCluster::start(cfg, b"demo-secret")?;
//!
//! let mut writer_client = cluster.client(WriterId(0))?;
//! let mut writer = BsrWriter::new(WriterId(0), cfg);
//! writer_client.run_op(&mut writer.write(Value::from("over tcp")))?;
//!
//! let mut reader_client = cluster.client(ReaderId(0))?;
//! let mut reader = BsrReader::new(ReaderId(0), cfg);
//! let mut read = reader.read();
//! let out = reader_client.run_op(&mut read)?;
//! assert_eq!(out.read_value().unwrap().as_bytes(), b"over tcp");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod chaos;
pub mod client;
pub mod cluster;
pub mod frame;
pub mod poll;
pub mod server;

pub use chaos::{
    ChaosNet, ChaosProxy, Direction, FaultAction, FaultPlan, FaultSchedule, FaultSpec,
};
pub use client::{ClientError, ClusterClient, FaultClass};
pub use cluster::LocalCluster;
pub use frame::{read_frame, write_all_vectored, write_frame, FrameError};
pub use poll::{Interest, PollBackend, PollEvent, Poller, Waker};
pub use server::ServerHost;
