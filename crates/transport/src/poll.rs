//! Zero-dependency readiness polling: raw `epoll` on Linux with a
//! portable `poll(2)` fallback.
//!
//! The workspace is hermetic — no `libc`, `mio`, or `tokio` — so this
//! module declares the handful of C prototypes it needs directly against
//! the libc `std` already links and builds a minimal level-triggered
//! [`Poller`] on top:
//!
//! * **epoll backend** (Linux): one `epoll_create1` instance per poller,
//!   `epoll_ctl` add/mod/del, `epoll_wait` with millisecond timeouts.
//!   O(ready) dispatch — the shape a reactor serving tens of thousands
//!   of mostly-idle connections needs.
//! * **poll backend** (any Unix, and force-selectable on Linux so tests
//!   exercise it): a registration table replayed into a `pollfd` array
//!   per wait. O(registered) per wake, fine for small sets and as the
//!   portability escape hatch.
//!
//! Cross-thread wakeups use an `eventfd` (Linux) or a self-pipe (other
//! Unix) registered under the reserved [`WAKE_TOKEN`]; [`Waker::wake`]
//! makes a blocked [`Poller::wait`] return immediately. Wake tokens are
//! consumed internally — callers only ever see their own tokens.
//!
//! Everything is level-triggered: a socket with unread bytes (or writable
//! space) reports ready on every wait until the condition clears. The
//! reactor layer above relies on that to resume partial reads and
//! partially-flushed outboxes without bookkeeping re-arms.

use std::io;
use std::time::Duration;

#[cfg(unix)]
use std::collections::HashMap;
#[cfg(unix)]
use std::os::fd::RawFd;
#[cfg(unix)]
use std::sync::Arc;

#[cfg(unix)]
use safereg_common::sync::Mutex;

/// Token value reserved for the internal wakeup fd; never reported to
/// callers and rejected by [`Poller::register`].
pub const WAKE_TOKEN: u64 = u64::MAX;

/// Which readiness conditions a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd has buffer space to write.
    pub writable: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write readiness only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Registered but dormant (kept in the table, woken by nothing except
    /// errors/hangup) — how the reactor parks a connection it is
    /// backpressuring.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// Bytes (or EOF) are available to read.
    pub readable: bool,
    /// Buffer space is available to write.
    pub writable: bool,
    /// The peer closed or the fd errored; the connection is done.
    pub hangup: bool,
}

/// Poller implementation selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollBackend {
    /// Raw `epoll` (Linux only).
    Epoll,
    /// Portable `poll(2)`.
    Poll,
}

impl Default for PollBackend {
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            PollBackend::Epoll
        } else {
            PollBackend::Poll
        }
    }
}

impl PollBackend {
    /// Stable lowercase label for logs and bench records.
    pub fn label(&self) -> &'static str {
        match self {
            PollBackend::Epoll => "epoll",
            PollBackend::Poll => "poll",
        }
    }
}

#[cfg(unix)]
mod sys {
    //! The C prototypes and ABI constants this module needs, declared
    //! against the libc `std` already links into every binary.

    #[cfg(target_os = "linux")]
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    #[cfg(target_os = "linux")]
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_ADD: i32 = 1;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_DEL: i32 = 2;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CTL_MOD: i32 = 3;
    #[cfg(target_os = "linux")]
    pub const EPOLLIN: u32 = 0x001;
    #[cfg(target_os = "linux")]
    pub const EPOLLOUT: u32 = 0x004;
    #[cfg(target_os = "linux")]
    pub const EPOLLERR: u32 = 0x008;
    #[cfg(target_os = "linux")]
    pub const EPOLLHUP: u32 = 0x010;
    #[cfg(target_os = "linux")]
    pub const EPOLLRDHUP: u32 = 0x2000;
    #[cfg(target_os = "linux")]
    pub const EFD_CLOEXEC: i32 = 0o2000000;
    #[cfg(target_os = "linux")]
    pub const EFD_NONBLOCK: i32 = 0o4000;

    extern "C" {
        #[cfg(target_os = "linux")]
        pub fn epoll_create1(flags: i32) -> i32;
        #[cfg(target_os = "linux")]
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        #[cfg(target_os = "linux")]
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        #[cfg(target_os = "linux")]
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        #[cfg(not(target_os = "linux"))]
        pub fn pipe(fds: *mut i32) -> i32;
        pub fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }
}

/// Cross-thread wakeup handle for a [`Poller`]; cheap to clone, safe to
/// call from any thread, coalesces concurrent wakes.
#[cfg(unix)]
#[derive(Clone)]
pub struct Waker(Arc<WakeFd>);

#[cfg(unix)]
impl Waker {
    /// Makes the poller's current (or next) [`Poller::wait`] return with
    /// `woken = true`.
    pub fn wake(&self) {
        self.0.wake();
    }
}

#[cfg(unix)]
struct WakeFd {
    /// The fd the poller watches.
    read_fd: RawFd,
    /// The fd `wake` writes to (same as `read_fd` for eventfd).
    write_fd: RawFd,
    /// Whether the pair is an eventfd (8-byte counter) or a pipe.
    eventfd: bool,
}

#[cfg(unix)]
impl WakeFd {
    #[cfg(target_os = "linux")]
    fn new() -> io::Result<WakeFd> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakeFd {
            read_fd: fd,
            write_fd: fd,
            eventfd: true,
        })
    }

    #[cfg(not(target_os = "linux"))]
    fn new() -> io::Result<WakeFd> {
        let mut fds = [0i32; 2];
        if unsafe { sys::pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakeFd {
            read_fd: fds[0],
            write_fd: fds[1],
            eventfd: false,
        })
    }

    fn wake(&self) {
        let one: u64 = 1;
        let (buf, len): (*const u8, usize) = if self.eventfd {
            (&one as *const u64 as *const u8, 8)
        } else {
            (b"w".as_ptr(), 1)
        };
        // EAGAIN (counter saturated / pipe full) still leaves the fd
        // readable, which is all a wake needs; other errors have no
        // recovery path worth taking here.
        let _ = unsafe { sys::write(self.write_fd, buf, len) };
    }

    fn drain(&self) {
        let mut buf = [0u8; 64];
        let _ = unsafe { sys::read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
    }
}

#[cfg(unix)]
impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.read_fd);
            if self.write_fd != self.read_fd {
                sys::close(self.write_fd);
            }
        }
    }
}

#[cfg(unix)]
enum Backend {
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: RawFd,
        /// Scratch buffer reused across waits.
        buf: Vec<sys::EpollEvent>,
    },
    Poll {
        /// fd → (token, interest); replayed into a `pollfd` array per wait.
        table: Mutex<HashMap<RawFd, (u64, Interest)>>,
        /// Scratch `pollfd` array reused across waits.
        buf: Vec<sys::PollFd>,
    },
}

/// A level-triggered readiness poller over raw fds.
///
/// One poller per reactor thread; [`Poller::wait`] is `&mut self` (only
/// the owning thread waits), while registration is `&self` and the
/// [`Waker`] may be used from any thread.
///
/// # Examples
///
/// ```no_run
/// use safereg_transport::poll::{Interest, PollBackend, Poller};
/// use std::net::TcpStream;
/// use std::os::fd::AsRawFd;
/// use std::time::Duration;
///
/// let mut poller = Poller::new()?;
/// let stream = TcpStream::connect("127.0.0.1:9000")?;
/// stream.set_nonblocking(true)?;
/// poller.register(stream.as_raw_fd(), 7, Interest::READ)?;
/// let mut events = Vec::new();
/// poller.wait(&mut events, Some(Duration::from_millis(100)))?;
/// for ev in &events {
///     assert_eq!(ev.token, 7);
/// }
/// # Ok::<(), std::io::Error>(())
/// ```
#[cfg(unix)]
pub struct Poller {
    backend: Backend,
    kind: PollBackend,
    wake: Arc<WakeFd>,
}

#[cfg(unix)]
impl Poller {
    /// Creates a poller on the platform default backend (epoll on Linux,
    /// poll elsewhere).
    pub fn new() -> io::Result<Poller> {
        Poller::with_backend(PollBackend::default())
    }

    /// Creates a poller on an explicit backend.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::Unsupported`] for [`PollBackend::Epoll`] off
    /// Linux; otherwise any fd-creation failure.
    pub fn with_backend(kind: PollBackend) -> io::Result<Poller> {
        let wake = Arc::new(WakeFd::new()?);
        let backend = match kind {
            #[cfg(target_os = "linux")]
            PollBackend::Epoll => {
                let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
                if epfd < 0 {
                    return Err(io::Error::last_os_error());
                }
                Backend::Epoll {
                    epfd,
                    buf: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
                }
            }
            #[cfg(not(target_os = "linux"))]
            PollBackend::Epoll => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "epoll is Linux-only; use PollBackend::Poll",
                ));
            }
            PollBackend::Poll => Backend::Poll {
                table: Mutex::new(HashMap::new()),
                buf: Vec::new(),
            },
        };
        let poller = Poller {
            backend,
            kind,
            wake,
        };
        poller.register_fd(poller.wake.read_fd, WAKE_TOKEN, Interest::READ)?;
        Ok(poller)
    }

    /// The backend this poller runs on.
    pub fn backend(&self) -> PollBackend {
        self.kind
    }

    /// A cloneable cross-thread wakeup handle.
    pub fn waker(&self) -> Waker {
        Waker(Arc::clone(&self.wake))
    }

    /// Starts watching `fd` under `token`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] for the reserved [`WAKE_TOKEN`];
    /// otherwise whatever the kernel reports.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        if token == WAKE_TOKEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "token u64::MAX is reserved for the poller's waker",
            ));
        }
        self.register_fd(fd, token, interest)
    }

    fn register_fd(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => {
                let mut ev = sys::EpollEvent {
                    events: epoll_bits(interest),
                    data: token,
                };
                check(unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_ADD, fd, &mut ev) })
            }
            Backend::Poll { table, .. } => {
                table.lock().insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Changes the interest set (and token) of an already-registered fd.
    ///
    /// # Errors
    ///
    /// As [`Poller::register`].
    pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        if token == WAKE_TOKEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "token u64::MAX is reserved for the poller's waker",
            ));
        }
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => {
                let mut ev = sys::EpollEvent {
                    events: epoll_bits(interest),
                    data: token,
                };
                check(unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_MOD, fd, &mut ev) })
            }
            Backend::Poll { table, .. } => {
                table.lock().insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Stops watching `fd`. The caller still owns (and closes) the fd.
    ///
    /// # Errors
    ///
    /// Whatever the kernel reports (epoll backend only; the table backend
    /// cannot fail).
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => {
                let mut ev = sys::EpollEvent { events: 0, data: 0 };
                check(unsafe { sys::epoll_ctl(*epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) })
            }
            Backend::Poll { table, .. } => {
                table.lock().remove(&fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// elapses, or a [`Waker`] fires. Ready fds are appended to `events`
    /// (cleared first); returns whether a wake was consumed.
    ///
    /// # Errors
    ///
    /// Whatever the kernel reports. `EINTR` is swallowed (reported as an
    /// empty, un-woken return) so callers just loop.
    pub fn wait(
        &mut self,
        events: &mut Vec<PollEvent>,
        timeout: Option<Duration>,
    ) -> io::Result<bool> {
        events.clear();
        let timeout_ms = timeout_to_ms(timeout);
        let mut woken = false;
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, buf } => {
                let n = unsafe {
                    sys::epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(false);
                    }
                    return Err(err);
                }
                for ev in &buf[..n as usize] {
                    // Copy out of the (possibly packed) struct before use.
                    let (bits, token) = (ev.events, ev.data);
                    if token == WAKE_TOKEN {
                        self.wake.drain();
                        woken = true;
                        continue;
                    }
                    events.push(PollEvent {
                        token,
                        readable: bits & sys::EPOLLIN != 0,
                        writable: bits & sys::EPOLLOUT != 0,
                        hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                    });
                }
            }
            Backend::Poll { table, buf } => {
                buf.clear();
                let tokens: Vec<u64> = {
                    let table = table.lock();
                    let mut tokens = Vec::with_capacity(table.len());
                    for (fd, (token, interest)) in table.iter() {
                        let mut bits = 0i16;
                        if interest.readable {
                            bits |= sys::POLLIN;
                        }
                        if interest.writable {
                            bits |= sys::POLLOUT;
                        }
                        buf.push(sys::PollFd {
                            fd: *fd,
                            events: bits,
                            revents: 0,
                        });
                        tokens.push(*token);
                    }
                    tokens
                };
                let n = unsafe { sys::poll(buf.as_mut_ptr(), buf.len(), timeout_ms) };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(false);
                    }
                    return Err(err);
                }
                for (pfd, token) in buf.iter().zip(tokens) {
                    if pfd.revents == 0 {
                        continue;
                    }
                    if token == WAKE_TOKEN {
                        self.wake.drain();
                        woken = true;
                        continue;
                    }
                    events.push(PollEvent {
                        token,
                        readable: pfd.revents & sys::POLLIN != 0,
                        writable: pfd.revents & sys::POLLOUT != 0,
                        hangup: pfd.revents & (sys::POLLERR | sys::POLLHUP) != 0,
                    });
                }
            }
        }
        Ok(woken)
    }
}

#[cfg(unix)]
impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Backend::Epoll { epfd, .. } = &self.backend {
            unsafe {
                sys::close(*epfd);
            }
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_bits(interest: Interest) -> u32 {
    let mut bits = sys::EPOLLRDHUP;
    if interest.readable {
        bits |= sys::EPOLLIN;
    }
    if interest.writable {
        bits |= sys::EPOLLOUT;
    }
    bits
}

#[cfg(unix)]
fn check(ret: i32) -> io::Result<()> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

#[cfg(unix)]
fn timeout_to_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) if d.is_zero() => 0,
        // Round sub-millisecond timeouts up so short deadlines never
        // degenerate into a busy loop.
        Some(d) => d.as_millis().clamp(1, i32::MAX as u128) as i32,
    }
}

// Non-Unix stub so call sites stay cfg-free; every constructor fails.
#[cfg(not(unix))]
#[derive(Clone)]
pub struct Waker;

#[cfg(not(unix))]
impl Waker {
    pub fn wake(&self) {}
}

#[cfg(not(unix))]
pub struct Poller;

#[cfg(not(unix))]
impl Poller {
    pub fn new() -> io::Result<Poller> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "readiness polling is implemented for Unix only",
        ))
    }

    pub fn with_backend(_kind: PollBackend) -> io::Result<Poller> {
        Poller::new()
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    fn backends() -> Vec<PollBackend> {
        if cfg!(target_os = "linux") {
            vec![PollBackend::Epoll, PollBackend::Poll]
        } else {
            vec![PollBackend::Poll]
        }
    }

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_after_peer_writes_on_every_backend() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let (a, mut b) = pair();
            a.set_nonblocking(true).unwrap();
            poller.register(a.as_raw_fd(), 42, Interest::READ).unwrap();

            let mut events = Vec::new();
            // Nothing pending: a short wait times out empty.
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: spurious event");

            b.write_all(b"ping").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert_eq!(events[0].token, 42);
            assert!(events[0].readable);

            // Level-triggered: unread bytes keep reporting.
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}: level-trigger lost");

            let mut chunk = [0u8; 16];
            let n = (&a).read(&mut chunk).unwrap();
            assert_eq!(&chunk[..n], b"ping");
        }
    }

    #[test]
    fn writable_and_interest_changes_on_every_backend() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let (a, _b) = pair();
            a.set_nonblocking(true).unwrap();
            poller.register(a.as_raw_fd(), 7, Interest::WRITE).unwrap();

            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}: fresh socket not writable");
            assert!(events[0].writable);

            // Dormant interest: nothing reports even though it's writable.
            poller.reregister(a.as_raw_fd(), 7, Interest::NONE).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(
                events.iter().all(|e| !e.writable && !e.readable),
                "{backend:?}: dormant fd reported readiness"
            );

            poller.deregister(a.as_raw_fd()).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: deregistered fd reported");
        }
    }

    #[test]
    fn peer_hangup_reports_on_every_backend() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let (a, b) = pair();
            a.set_nonblocking(true).unwrap();
            poller.register(a.as_raw_fd(), 3, Interest::READ).unwrap();
            drop(b);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            // A closed peer shows as hangup and/or EOF-readable; either
            // way the reactor's read path observes the close.
            assert!(
                events[0].hangup || events[0].readable,
                "{backend:?}: hangup invisible"
            );
        }
    }

    #[test]
    fn waker_interrupts_a_blocked_wait_on_every_backend() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let waker = poller.waker();
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                waker.wake();
            });
            let start = Instant::now();
            let mut events = Vec::new();
            let woken = poller
                .wait(&mut events, Some(Duration::from_secs(30)))
                .unwrap();
            assert!(woken, "{backend:?}: wake not reported");
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "{backend:?}: wake did not interrupt the wait"
            );
            assert!(events.is_empty(), "{backend:?}: wake leaked as an event");
            h.join().unwrap();

            // Wakes coalesce and drain: the next wait times out quietly.
            let woken = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(!woken, "{backend:?}: stale wake");
        }
    }

    #[test]
    fn wake_token_is_reserved() {
        let poller = Poller::new().unwrap();
        let (a, _b) = pair();
        let err = poller
            .register(a.as_raw_fd(), WAKE_TOKEN, Interest::READ)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
