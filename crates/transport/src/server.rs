//! TCP server host.
//!
//! [`ServerHost`] runs one [`ServerNode`] behind a `TcpListener` with a
//! thread per connection. Every inbound frame is authenticated and decoded
//! before it reaches the node; responses travel back on the same
//! connection. The node sits behind a mutex — the paper's server is a
//! sequential process, so serialising its steps is the model, not a
//! shortcut.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use safereg_common::ids::NodeId;
use safereg_common::msg::{Envelope, Message};
use safereg_common::sync::Mutex;
use safereg_core::server::ServerNode;
use safereg_crypto::keychain::KeyChain;
use safereg_obs::trace::MsgClass;

use crate::frame::{open_envelope, read_frame, seal_envelope, FrameError};

/// Counts a connection open on creation and the matching close on drop,
/// so every exit path out of [`serve_connection`] balances the books.
struct ConnGuard;

impl ConnGuard {
    fn open() -> Self {
        safereg_obs::global().counter("transport.conn.opened").inc();
        ConnGuard
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        safereg_obs::global().counter("transport.conn.closed").inc();
    }
}

/// A running TCP server hosting one replica.
pub struct ServerHost {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    node: Arc<Mutex<ServerNode>>,
}

impl std::fmt::Debug for ServerHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHost")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ServerHost {
    /// Binds to `127.0.0.1:0` (ephemeral port) and starts serving `node`.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn(node: ServerNode, chain: KeyChain) -> std::io::Result<ServerHost> {
        Self::spawn_on(node, chain, ("127.0.0.1", 0))
    }

    /// Binds to an explicit address (e.g. from a CLI flag) and starts
    /// serving `node`.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn_on(
        node: ServerNode,
        chain: KeyChain,
        bind: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<ServerHost> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let node = Arc::new(Mutex::new(node));

        let accept_stop = Arc::clone(&stop);
        let accept_node = Arc::clone(&node);
        let accept_thread = std::thread::Builder::new()
            .name(format!("safereg-server-{addr}"))
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match conn {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let node = Arc::clone(&accept_node);
                    let stop = Arc::clone(&accept_stop);
                    let chain = chain.clone();
                    // One thread per connection; exits when the peer hangs
                    // up or the host stops.
                    let _ = std::thread::Builder::new()
                        .name("safereg-conn".into())
                        .spawn(move || serve_connection(stream, node, chain, stop));
                }
            })
            .expect("spawn accept thread");

        Ok(ServerHost {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            node,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the node's highest tag (for tests and demos).
    pub fn max_tag(&self) -> safereg_common::tag::Tag {
        self.node.lock().max_tag()
    }

    /// Stops accepting and unblocks the accept loop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the blocking accept with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHost {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    node: Arc<Mutex<ServerNode>>,
    chain: KeyChain,
    stop: Arc<AtomicBool>,
) {
    let _conn = ConnGuard::open();
    // A polling read timeout lets the thread notice shutdown.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(200)));
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(FrameError::Io(e))
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return, // disconnect or garbage: drop the connection
        };
        // Borrowing decode: the envelope's payload fields are O(1) slices
        // of `frame`; `wire.bytes_copied` stays at zero on this path.
        let env = match open_envelope(&chain, &frame) {
            Ok(e) => e,
            Err(_) => continue, // unauthenticated frame: ignored, not fatal
        };
        let class = MsgClass::of(&env.msg);
        let reg = safereg_obs::global();
        reg.counter(&format!("transport.recv.{class}")).inc();
        reg.counter(&format!("transport.recv_bytes.{class}"))
            .add(frame.len() as u64);
        let (from, msg, sid) = match (&env.src, &env.msg, &env.dst) {
            (NodeId::Client(c), Message::ToServer(m), NodeId::Server(s)) => (*c, m, *s),
            _ => continue,
        };
        let responses = {
            let mut guard = node.lock();
            if guard.id() != sid {
                continue; // misaddressed
            }
            guard.handle(from, msg)
        };
        for resp in responses {
            let out = Envelope::to_client(sid, from, resp);
            // Sealing slices the node's stored value (no payload copy) and
            // the frame goes out as one vectored write.
            let sealed = seal_envelope(&chain, &out);
            let class = MsgClass::of(&out.msg);
            reg.counter(&format!("transport.sent.{class}")).inc();
            reg.counter(&format!("transport.sent_bytes.{class}"))
                .add(sealed.payload_len() as u64);
            if sealed.write_to(&mut stream).is_err() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::config::QuorumConfig;
    use safereg_common::ids::{ClientId, ReaderId, ServerId};
    use safereg_common::msg::{ClientToServer, OpId, ServerToClient};
    use safereg_common::tag::Tag;

    fn start_one() -> (ServerHost, KeyChain, QuorumConfig) {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let chain = KeyChain::from_master_seed(b"test");
        let host =
            ServerHost::spawn(ServerNode::new_replicated(ServerId(0), cfg), chain.clone()).unwrap();
        (host, chain, cfg)
    }

    #[test]
    fn serves_a_query_over_tcp() {
        let (host, chain, _cfg) = start_one();
        let mut stream = TcpStream::connect(host.addr()).unwrap();
        let env = Envelope::to_server(
            ClientId::Reader(ReaderId(0)),
            ServerId(0),
            ClientToServer::QueryTag {
                op: OpId::new(ReaderId(0), 1),
            },
        );
        seal_envelope(&chain, &env).write_to(&mut stream).unwrap();
        let frame = read_frame(&mut stream).unwrap();
        let resp = open_envelope(&chain, &frame).unwrap();
        match resp.msg {
            Message::ToClient(ServerToClient::TagResp { tag, .. }) => assert_eq!(tag, Tag::ZERO),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unauthenticated_frames_are_dropped_not_fatal() {
        let (host, chain, _cfg) = start_one();
        let mut stream = TcpStream::connect(host.addr()).unwrap();
        // Garbage first...
        crate::frame::write_frame(&mut stream, &[&b"not an envelope at all"[..]]).unwrap();
        // ...then a genuine request still gets served on the same stream.
        let env = Envelope::to_server(
            ClientId::Reader(ReaderId(0)),
            ServerId(0),
            ClientToServer::QueryTag {
                op: OpId::new(ReaderId(0), 1),
            },
        );
        seal_envelope(&chain, &env).write_to(&mut stream).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let frame = read_frame(&mut stream).unwrap();
        assert!(open_envelope(&chain, &frame).is_ok());
    }

    #[test]
    fn stop_is_idempotent_and_unblocks() {
        let (mut host, _chain, _cfg) = start_one();
        host.stop();
        host.stop();
    }
}
