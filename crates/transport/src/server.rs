//! TCP server host.
//!
//! [`ServerHost`] runs one replica behind a `TcpListener` with a thread per
//! connection. Every inbound frame is authenticated and decoded before it
//! reaches the replica; responses travel back on the same connection. The
//! replica sits behind a mutex — the paper's server is a sequential
//! process, so serialising its steps is the model, not a shortcut.
//!
//! A host serves either a plain [`ServerNode`] (the honest protocol state
//! machine) or any [`ServerBehavior`] from the shared bestiary — the same
//! silent / stale / fabricating / equivocating adversaries the simulator
//! runs, now reachable over real sockets and driven by a seeded
//! [`DetRng`] so live Byzantine runs are reproducible.
//!
//! Hosts degrade gracefully rather than wedging: each connection carries an
//! idle deadline (no inbound frame for `idle_timeout`) and a stall deadline
//! (peer stops draining replies for `stall_timeout`). A connection that
//! trips either is evicted and counted under `server.evictions.*`; clients
//! reconnect on demand, so eviction costs one reconnect, not correctness.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use safereg_common::config::TransportConfig;
use safereg_common::ids::NodeId;
use safereg_common::msg::{Envelope, Message};
use safereg_common::rng::DetRng;
use safereg_common::sync::Mutex;
use safereg_common::tag::Tag;
use safereg_core::behavior::ServerBehavior;
use safereg_core::server::ServerNode;
use safereg_crypto::keychain::KeyChain;
use safereg_obs::names;
use safereg_obs::trace::{wall_micros, MsgClass};

use crate::frame::{open_envelope, read_frame, seal_envelope, FrameError};

/// Counts a connection open on creation and the matching close on drop,
/// so every exit path out of [`serve_connection`] balances the books.
struct ConnGuard;

impl ConnGuard {
    fn open() -> Self {
        safereg_obs::global().counter("transport.conn.opened").inc();
        ConnGuard
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        safereg_obs::global().counter("transport.conn.closed").inc();
    }
}

/// Evicts a connection: counts it under the aggregate and per-reason
/// `server.evictions` counters. The caller returns right after.
fn evict(reason: &str) {
    let reg = safereg_obs::global();
    reg.counter(names::SERVER_EVICTIONS).inc();
    reg.counter(&names::eviction_counter(reason)).inc();
}

/// What a host is serving: the honest state machine, or a behavior from
/// the shared bestiary with its own deterministic fault stream.
enum Hosted {
    Node(ServerNode),
    Behavior {
        behavior: Box<dyn ServerBehavior>,
        rng: DetRng,
    },
}

impl Hosted {
    fn id(&self) -> safereg_common::ids::ServerId {
        match self {
            Hosted::Node(node) => node.id(),
            Hosted::Behavior { behavior, .. } => behavior.id(),
        }
    }

    /// Handles one inbound envelope, returning the envelopes to send back.
    /// Behaviors see the raw envelope (they may lie about anything); the
    /// honest node gets the same client-to-server filtering as before.
    fn handle_env(&mut self, env: &Envelope) -> Vec<Envelope> {
        match self {
            Hosted::Node(node) => {
                let (from, msg) = match (&env.src, &env.msg) {
                    (NodeId::Client(c), Message::ToServer(m)) => (*c, m),
                    _ => return Vec::new(),
                };
                node.handle(from, msg)
                    .into_iter()
                    .map(|resp| Envelope::to_client(node.id(), from, resp))
                    .collect()
            }
            Hosted::Behavior { behavior, rng } => behavior.on_envelope(wall_micros(), env, rng),
        }
    }

    fn max_tag(&self) -> Tag {
        match self {
            Hosted::Node(node) => node.max_tag(),
            // Byzantine hosts have no trustworthy notion of a max tag.
            Hosted::Behavior { .. } => Tag::ZERO,
        }
    }
}

/// A running TCP server hosting one replica.
pub struct ServerHost {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    hosted: Arc<Mutex<Hosted>>,
}

impl std::fmt::Debug for ServerHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHost")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ServerHost {
    /// Binds to `127.0.0.1:0` (ephemeral port) and starts serving `node`.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn(node: ServerNode, chain: KeyChain) -> std::io::Result<ServerHost> {
        Self::spawn_on(node, chain, ("127.0.0.1", 0))
    }

    /// Binds to an explicit address (e.g. from a CLI flag) and starts
    /// serving `node`.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn_on(
        node: ServerNode,
        chain: KeyChain,
        bind: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<ServerHost> {
        Self::spawn_hosted(Hosted::Node(node), chain, bind, TransportConfig::default())
    }

    /// Binds to an explicit address with an explicit eviction policy
    /// (`idle_timeout` / `stall_timeout` from the config).
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn_on_with(
        node: ServerNode,
        chain: KeyChain,
        bind: impl std::net::ToSocketAddrs,
        config: TransportConfig,
    ) -> std::io::Result<ServerHost> {
        Self::spawn_hosted(Hosted::Node(node), chain, bind, config)
    }

    /// Hosts an arbitrary [`ServerBehavior`] — the live-network twin of the
    /// simulator's Byzantine bestiary. `seed` feeds the behavior's private
    /// [`DetRng`], so the same seed replays the same misbehavior.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn_behavior(
        behavior: Box<dyn ServerBehavior>,
        chain: KeyChain,
        seed: u64,
    ) -> std::io::Result<ServerHost> {
        Self::spawn_behavior_on(behavior, chain, seed, ("127.0.0.1", 0))
    }

    /// Hosts a behavior on an explicit address (restart-in-place keeps the
    /// advertised address stable across role changes).
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn_behavior_on(
        behavior: Box<dyn ServerBehavior>,
        chain: KeyChain,
        seed: u64,
        bind: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<ServerHost> {
        Self::spawn_hosted(
            Hosted::Behavior {
                behavior,
                rng: DetRng::seed_from(seed),
            },
            chain,
            bind,
            TransportConfig::default(),
        )
    }

    fn spawn_hosted(
        hosted: Hosted,
        chain: KeyChain,
        bind: impl std::net::ToSocketAddrs,
        config: TransportConfig,
    ) -> std::io::Result<ServerHost> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let hosted = Arc::new(Mutex::new(hosted));

        // Eager registration: eviction/restart counters appear in metric
        // dumps even when the run never tripped them.
        let reg = safereg_obs::global();
        reg.counter(names::SERVER_EVICTIONS);
        reg.counter(&names::eviction_counter("idle"));
        reg.counter(&names::eviction_counter("stall"));
        reg.counter(names::SERVER_RESTARTS);

        let accept_stop = Arc::clone(&stop);
        let accept_hosted = Arc::clone(&hosted);
        let accept_thread = std::thread::Builder::new()
            .name(format!("safereg-server-{addr}"))
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match conn {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let hosted = Arc::clone(&accept_hosted);
                    let stop = Arc::clone(&accept_stop);
                    let chain = chain.clone();
                    // One thread per connection; exits when the peer hangs
                    // up, trips an eviction deadline, or the host stops.
                    let _ = std::thread::Builder::new()
                        .name("safereg-conn".into())
                        .spawn(move || serve_connection(stream, hosted, chain, stop, config));
                }
            })
            .expect("spawn accept thread");

        Ok(ServerHost {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            hosted,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the node's highest tag (for tests and demos). Byzantine
    /// behavior hosts report [`Tag::ZERO`] — they have no honest state.
    pub fn max_tag(&self) -> Tag {
        self.hosted.lock().max_tag()
    }

    /// Stops accepting and unblocks the accept loop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the blocking accept with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHost {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    hosted: Arc<Mutex<Hosted>>,
    chain: KeyChain,
    stop: Arc<AtomicBool>,
    config: TransportConfig,
) {
    let _conn = ConnGuard::open();
    // A polling read timeout lets the thread notice shutdown and measure
    // idleness; a write timeout bounds how long a stalled peer can pin
    // this thread.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(config.stall_timeout));
    let mut last_inbound = Instant::now();
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(FrameError::Io(e))
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                if last_inbound.elapsed() >= config.idle_timeout {
                    evict("idle");
                    return;
                }
                continue;
            }
            Err(_) => return, // disconnect or garbage: drop the connection
        };
        last_inbound = Instant::now();
        // Borrowing decode: the envelope's payload fields are O(1) slices
        // of `frame`; `wire.bytes_copied` stays at zero on this path.
        let env = match open_envelope(&chain, &frame) {
            Ok(e) => e,
            Err(_) => continue, // unauthenticated frame: ignored, not fatal
        };
        let class = MsgClass::of(&env.msg);
        let reg = safereg_obs::global();
        reg.counter(&format!("transport.recv.{class}")).inc();
        reg.counter(&format!("transport.recv_bytes.{class}"))
            .add(frame.len() as u64);
        let sid = match env.dst {
            NodeId::Server(s) => s,
            _ => continue,
        };
        let responses = {
            let mut guard = hosted.lock();
            if guard.id() != sid {
                continue; // misaddressed
            }
            guard.handle_env(&env)
        };
        for out in responses {
            // Sealing slices the replica's stored value (no payload copy)
            // and the frame goes out as one vectored write.
            let sealed = seal_envelope(&chain, &out);
            let class = MsgClass::of(&out.msg);
            reg.counter(&format!("transport.sent.{class}")).inc();
            reg.counter(&format!("transport.sent_bytes.{class}"))
                .add(sealed.payload_len() as u64);
            match sealed.write_to(&mut stream) {
                Ok(()) => {}
                Err(FrameError::Io(e))
                    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                {
                    // The peer stopped draining: evict rather than wedge.
                    evict("stall");
                    return;
                }
                Err(_) => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safereg_common::config::QuorumConfig;
    use safereg_common::ids::{ClientId, ReaderId, ServerId};
    use safereg_common::msg::{ClientToServer, OpId, ServerToClient};
    use safereg_core::behavior::ByzRole;

    fn start_one() -> (ServerHost, KeyChain, QuorumConfig) {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let chain = KeyChain::from_master_seed(b"test");
        let host =
            ServerHost::spawn(ServerNode::new_replicated(ServerId(0), cfg), chain.clone()).unwrap();
        (host, chain, cfg)
    }

    fn query_tag_env(s: u16) -> Envelope {
        Envelope::to_server(
            ClientId::Reader(ReaderId(0)),
            ServerId(s),
            ClientToServer::QueryTag {
                op: OpId::new(ReaderId(0), 1),
            },
        )
    }

    #[test]
    fn serves_a_query_over_tcp() {
        let (host, chain, _cfg) = start_one();
        let mut stream = TcpStream::connect(host.addr()).unwrap();
        seal_envelope(&chain, &query_tag_env(0))
            .write_to(&mut stream)
            .unwrap();
        let frame = read_frame(&mut stream).unwrap();
        let resp = open_envelope(&chain, &frame).unwrap();
        match resp.msg {
            Message::ToClient(ServerToClient::TagResp { tag, .. }) => assert_eq!(tag, Tag::ZERO),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unauthenticated_frames_are_dropped_not_fatal() {
        let (host, chain, _cfg) = start_one();
        let mut stream = TcpStream::connect(host.addr()).unwrap();
        // Garbage first...
        crate::frame::write_frame(&mut stream, &[&b"not an envelope at all"[..]]).unwrap();
        // ...then a genuine request still gets served on the same stream.
        seal_envelope(&chain, &query_tag_env(0))
            .write_to(&mut stream)
            .unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let frame = read_frame(&mut stream).unwrap();
        assert!(open_envelope(&chain, &frame).is_ok());
    }

    #[test]
    fn stop_is_idempotent_and_unblocks() {
        let (mut host, _chain, _cfg) = start_one();
        host.stop();
        host.stop();
    }

    #[test]
    fn byzantine_silent_host_accepts_but_never_answers() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let chain = KeyChain::from_master_seed(b"byz-silent");
        let host = ServerHost::spawn_behavior(
            ByzRole::Silent.build(ServerId(2), cfg, 1),
            chain.clone(),
            1,
        )
        .unwrap();
        let mut stream = TcpStream::connect(host.addr()).unwrap();
        seal_envelope(&chain, &query_tag_env(2))
            .write_to(&mut stream)
            .unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_millis(300)))
            .unwrap();
        assert!(
            read_frame(&mut stream).is_err(),
            "silent replica must not reply"
        );
    }

    #[test]
    fn byzantine_fabricator_host_forges_over_tcp() {
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let chain = KeyChain::from_master_seed(b"byz-fab");
        let host = ServerHost::spawn_behavior(
            ByzRole::Fabricator.build(ServerId(1), cfg, 42),
            chain.clone(),
            42,
        )
        .unwrap();
        let mut stream = TcpStream::connect(host.addr()).unwrap();
        seal_envelope(&chain, &query_tag_env(1))
            .write_to(&mut stream)
            .unwrap();
        let frame = read_frame(&mut stream).unwrap();
        let resp = open_envelope(&chain, &frame).unwrap();
        match resp.msg {
            Message::ToClient(ServerToClient::TagResp { tag, .. }) => {
                assert!(tag.num >= 1_000_000, "forged tag expected, got {tag:?}")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn idle_connections_are_evicted_and_counted() {
        let reg = safereg_obs::global();
        let before = reg.counter(names::SERVER_EVICTIONS).get();
        let idle_before = reg.counter(&names::eviction_counter("idle")).get();

        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let chain = KeyChain::from_master_seed(b"evict-idle");
        let config = TransportConfig {
            idle_timeout: std::time::Duration::from_millis(250),
            ..TransportConfig::default()
        };
        let host = ServerHost::spawn_on_with(
            ServerNode::new_replicated(ServerId(0), cfg),
            chain,
            ("127.0.0.1", 0),
            config,
        )
        .unwrap();

        let stream = TcpStream::connect(host.addr()).unwrap();
        // Say nothing: the host must hang up on us, not wait forever.
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 1];
        let n = std::io::Read::read(&mut (&stream), &mut buf).unwrap_or(0);
        assert_eq!(n, 0, "host must close the idle connection");
        assert!(reg.counter(names::SERVER_EVICTIONS).get() > before);
        assert!(reg.counter(&names::eviction_counter("idle")).get() > idle_before);
    }
}
