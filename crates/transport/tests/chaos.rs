//! Integration tests for the self-healing client against chaos proxies:
//! deterministic fault schedules, reconnect after sever, breaker trip and
//! recovery around a blackhole.

use std::time::{Duration, Instant};

use safereg_common::config::{QuorumConfig, TransportConfig};
use safereg_common::ids::{ReaderId, ServerId, WriterId};
use safereg_common::value::Value;
use safereg_core::client::{BsrReader, BsrWriter};
use safereg_obs::names;
use safereg_transport::chaos::{ChaosNet, Direction, FaultPlan, FaultSpec};
use safereg_transport::client::ClusterClient;
use safereg_transport::cluster::LocalCluster;

#[test]
fn identical_seeds_reproduce_identical_schedules() {
    // The determinism contract of the whole chaos layer: a plan is a pure
    // function of its seed, across every (server, connection, direction)
    // stream.
    let a = FaultPlan::new(0xDEAD_BEEF, FaultSpec::mild());
    let b = FaultPlan::new(0xDEAD_BEEF, FaultSpec::mild());
    for sid in 0..5u16 {
        for conn in 0..4u64 {
            for dir in [Direction::ClientToServer, Direction::ServerToClient] {
                assert_eq!(
                    a.fingerprint(ServerId(sid), conn, dir, 512),
                    b.fingerprint(ServerId(sid), conn, dir, 512)
                );
            }
        }
    }
    let c = FaultPlan::new(0xDEAD_BEF0, FaultSpec::mild());
    assert_ne!(
        a.fingerprint(ServerId(0), 0, Direction::ClientToServer, 512),
        c.fingerprint(ServerId(0), 0, Direction::ClientToServer, 512),
        "a different seed yields a different adversary"
    );
}

/// Drives writes and reads through calm proxies while servers are severed
/// and blackholed, asserting the supervisors reconnect, the breaker trips
/// Open and closes again, and no operation is ever lost.
#[test]
fn register_ops_survive_sever_and_blackhole() {
    let reg = safereg_obs::global();
    let reconnects_before = reg.counter(names::TRANSPORT_RECONNECTS).get();
    let transitions_before = reg.counter(names::TRANSPORT_BREAKER_TRANSITIONS).get();

    let cfg = QuorumConfig::minimal_bsr(1).unwrap();
    let cluster = LocalCluster::start(cfg, b"chaos-it").unwrap();
    // Calm spec: the only faults are the targeted sever/blackhole below,
    // so every op outcome is fully predictable.
    let plan = FaultPlan::new(7, FaultSpec::calm());
    let net = ChaosNet::wrap(&cluster.addrs(), &plan).unwrap();

    let config = TransportConfig::aggressive();
    let mut wc = ClusterClient::connect_with(
        WriterId(0).into(),
        &net.addrs(),
        cluster.chain().clone(),
        config,
    )
    .unwrap();
    let mut rc = ClusterClient::connect_with(
        ReaderId(0).into(),
        &net.addrs(),
        cluster.chain().clone(),
        config,
    )
    .unwrap();
    let mut writer = BsrWriter::new(WriterId(0), cfg);
    let mut reader = BsrReader::new(ReaderId(0), cfg);

    wc.run_op(&mut writer.write(Value::from("before faults")))
        .unwrap();

    // Kill every live connection: the supervisors must reconnect and the
    // next operations must not notice (beyond a retry slice at worst).
    net.sever(ServerId(0));
    net.sever(ServerId(1));
    wc.run_op(&mut writer.write(Value::from("after sever")))
        .unwrap();
    let mut read = reader.read();
    let out = rc.run_op(&mut read).unwrap();
    assert_eq!(out.read_value().unwrap().as_bytes(), b"after sever");
    assert!(
        reg.counter(names::TRANSPORT_RECONNECTS).get() > reconnects_before,
        "severed links must have been re-established"
    );

    // Blackhole one server (<= f): sessions die before delivering a frame,
    // so its breaker must trip Open while ops keep completing on the
    // remaining n - f = 4 servers.
    net.set_blackhole(ServerId(2), true);
    let deadline = Instant::now() + Duration::from_secs(10);
    while wc.link_state(ServerId(2)) != Some(2) {
        assert!(
            Instant::now() < deadline,
            "breaker never opened for the blackholed server"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    wc.run_op(&mut writer.write(Value::from("during blackhole")))
        .unwrap();
    let mut read = reader.read();
    let out = rc.run_op(&mut read).unwrap();
    assert_eq!(out.read_value().unwrap().as_bytes(), b"during blackhole");
    assert!(
        reg.counter(names::TRANSPORT_BREAKER_TRANSITIONS).get() > transitions_before,
        "the blackhole must have moved a breaker"
    );

    // Restore the server: the breaker may only close once a real frame is
    // delivered, which needs traffic — keep reading until it heals.
    net.set_blackhole(ServerId(2), false);
    let deadline = Instant::now() + Duration::from_secs(10);
    while wc.link_state(ServerId(2)) != Some(0) {
        assert!(
            Instant::now() < deadline,
            "breaker never closed after the blackhole lifted"
        );
        wc.run_op(&mut writer.write(Value::from("healing")))
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(wc.healthy_links(), 5, "all links healthy after recovery");
}

/// The retry-budget path under an actively hostile link: with the severe
/// fault spec (heavy loss, frequent kills) first-round envelopes get lost
/// constantly; only deadline-sliced resends let operations complete. Every
/// op must still finish and the resend counter must move.
#[test]
fn retry_slices_mask_heavy_frame_loss() {
    let reg = safereg_obs::global();
    let retries_before = reg.counter(names::TRANSPORT_OP_RETRIES).get();

    let cfg = QuorumConfig::minimal_bsr(1).unwrap();
    let cluster = LocalCluster::start(cfg, b"chaos-retry").unwrap();
    let plan = FaultPlan::new(11, FaultSpec::severe());
    let net = ChaosNet::wrap(&cluster.addrs(), &plan).unwrap();

    let mut config = TransportConfig::aggressive();
    config.op_deadline = Duration::from_secs(5);
    config.retry_budget = 8;
    let mut wc = ClusterClient::connect_with(
        WriterId(3).into(),
        &net.addrs(),
        cluster.chain().clone(),
        config,
    )
    .unwrap();
    let mut writer = BsrWriter::new(WriterId(3), cfg);

    for i in 0..10 {
        let value = Value::from(format!("lossy-{i}").into_bytes());
        let mut attempts = 0;
        loop {
            attempts += 1;
            match wc.run_op(&mut writer.write(value.clone())) {
                Ok(_) => break,
                Err(e) if e.is_retriable() && attempts < 5 => continue,
                Err(e) => panic!("write {i} never completed: {e}"),
            }
        }
    }
    assert!(
        reg.counter(names::TRANSPORT_OP_RETRIES).get() > retries_before,
        "severe loss must have forced at least one in-op resend"
    );
}
