//! Concurrent clients over real TCP: multiple writers and readers hammer a
//! loopback cluster from separate threads; afterwards the register must
//! hold the highest-tagged write and late readers must all see it.

use std::sync::Arc;

use safereg_common::config::QuorumConfig;
use safereg_common::ids::{ReaderId, WriterId};
use safereg_common::tag::Tag;
use safereg_common::value::Value;
use safereg_core::client::{BsrReader, BsrWriter};
use safereg_transport::LocalCluster;

#[test]
fn concurrent_writers_and_readers_over_tcp() {
    let cfg = QuorumConfig::minimal_bsr(1).unwrap();
    let cluster = Arc::new(LocalCluster::start(cfg, b"concurrency").unwrap());

    let writers: Vec<_> = (0..3u16)
        .map(|w| {
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || {
                let mut conn = cluster.client(WriterId(w)).unwrap();
                let mut writer = BsrWriter::new(WriterId(w), cfg);
                let mut last = Tag::ZERO;
                for i in 0..5 {
                    let value = Value::from(format!("w{w}-i{i}").into_bytes());
                    let out = conn.run_op(&mut writer.write(value)).unwrap();
                    assert!(out.tag() > last, "writer {w}: tags must grow");
                    last = out.tag();
                }
                last
            })
        })
        .collect();

    let readers: Vec<_> = (0..3u16)
        .map(|r| {
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || {
                let mut conn = cluster.client(ReaderId(r)).unwrap();
                let mut reader = BsrReader::new(ReaderId(r), cfg);
                let mut last = Tag::ZERO;
                for _ in 0..5 {
                    let mut op = reader.read();
                    let out = conn.run_op(&mut op).unwrap();
                    reader.absorb(&out);
                    // Per-reader monotonicity via the local pair.
                    assert!(out.tag() >= last, "reader {r}: regressed");
                    last = out.tag();
                }
            })
        })
        .collect();

    let mut max_tag = Tag::ZERO;
    for w in writers {
        max_tag = max_tag.max(w.join().expect("writer thread"));
    }
    for r in readers {
        r.join().expect("reader thread");
    }

    // Quiescent read: everyone now sees the globally most recent write.
    let mut conn = cluster.client(ReaderId(9)).unwrap();
    let mut reader = BsrReader::new(ReaderId(9), cfg);
    let mut op = reader.read();
    let out = conn.run_op(&mut op).unwrap();
    assert_eq!(
        out.tag(),
        max_tag,
        "final read returns the newest committed write"
    );
}

#[test]
fn a_client_can_outlive_server_restarts_of_f_nodes() {
    let cfg = QuorumConfig::minimal_bsr(1).unwrap();
    let mut cluster = LocalCluster::start(cfg, b"restart").unwrap();
    let mut conn = cluster.client(WriterId(0)).unwrap();
    let mut writer = BsrWriter::new(WriterId(0), cfg);
    conn.run_op(&mut writer.write(Value::from("one"))).unwrap();
    cluster.crash(safereg_common::ids::ServerId(1));
    conn.run_op(&mut writer.write(Value::from("two"))).unwrap();

    let mut rconn = cluster.client(ReaderId(0)).unwrap();
    let mut reader = BsrReader::new(ReaderId(0), cfg);
    let mut op = reader.read();
    let out = rconn.run_op(&mut op).unwrap();
    assert_eq!(out.read_value().unwrap().as_bytes(), b"two");
}
