//! Replays the paper's three adversarial arguments and checks them live.
//!
//! * Theorem 3 — BSR is safe but not regular: with five concurrent writers
//!   a reader can miss a completed write entirely; the §III-C variants
//!   (BSR-H full-history reads, BSR-2P two-phase reads) survive the exact
//!   same schedule.
//! * Theorem 5 — at `n = 4f` there is no safe one-shot replicated read:
//!   a stale-replying Byzantine server resurrects a superseded value.
//! * Theorem 6 — at `n = 5f` there is no safe one-shot erasure-coded read:
//!   the fresh value's elements fall below `k` and decoding fails.
//!
//! ```text
//! cargo run --example byzantine_replay
//! ```

use safereg::checker::CheckSummary;
use safereg::simnet::scenarios::{theorem3, theorem5, theorem6, ScenarioResult};
use safereg::simnet::workload::Protocol;

fn report(result: ScenarioResult) {
    let summary = CheckSummary::check_all(&result.history);
    let read = result
        .history
        .completed_reads()
        .next()
        .and_then(|r| match &r.kind {
            safereg::common::history::OpKind::Read {
                returned: Some(v), ..
            } => Some(v.to_string()),
            _ => None,
        })
        .unwrap_or_else(|| "<none>".into());
    println!(
        "  {:<24} read returned {:<8} safe={:<5} fresh={}",
        result.name,
        read,
        summary.is_safe(),
        summary.is_fresh()
    );
    for v in summary.safety.iter().chain(&summary.freshness) {
        println!("    violation: {v}");
    }
    if !summary.is_safe() || !summary.is_fresh() {
        println!("    timeline:");
        for line in safereg::checker::render_timeline(&result.history).lines() {
            println!("      {line}");
        }
    }
}

fn main() {
    println!("Theorem 3 schedule (n=5, f=1, five concurrent writers):");
    report(theorem3(Protocol::Bsr));
    report(theorem3(Protocol::BsrH));
    report(theorem3(Protocol::Bsr2p));

    println!("\nTheorem 5 schedule (stale-replying Byzantine server):");
    report(theorem5(false)); // n = 4f  -> violation
    report(theorem5(true)); // n = 4f+1 -> safe

    println!("\nTheorem 6 schedule (coded register, forged stale elements):");
    report(theorem6(false)); // n = 5f  -> decode fails, violation
    report(theorem6(true)); // n = 5f+1 -> safe

    println!("\nThe bounds n >= 4f+1 (BSR) and n >= 5f+1 (BCSR) are tight, as proved.");
}
