//! Self-healing in action: a TCP register cluster behind seeded chaos
//! proxies, with a server severed, a server blackholed, and everything
//! recovering — narrated by the breaker states and healing counters.
//!
//! The fault plan is a pure function of its seed: run this twice and the
//! proxies roll the identical drop/delay/corrupt/truncate/kill schedule.
//!
//! ```text
//! cargo run --example chaos_recovery
//! ```

use std::time::{Duration, Instant};

use safereg::common::config::{QuorumConfig, TransportConfig};
use safereg::common::ids::{ReaderId, ServerId, WriterId};
use safereg::common::value::Value;
use safereg::core::client::{BsrReader, BsrWriter};
use safereg::obs::names;
use safereg::transport::chaos::{ChaosNet, FaultPlan, FaultSpec};
use safereg::transport::client::ClusterClient;
use safereg::transport::cluster::LocalCluster;

fn breaker_states(client: &ClusterClient, n: u16) -> String {
    (0..n)
        .map(|s| match client.link_state(ServerId(s)) {
            Some(0) => 'C', // Closed: healthy
            Some(1) => 'H', // HalfOpen: probing
            Some(2) => 'O', // Open: shedding
            _ => '?',
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reg = safereg::obs::global();
    let reconnects_before = reg.counter(names::TRANSPORT_RECONNECTS).get();

    let cfg = QuorumConfig::minimal_bsr(1)?;
    let cluster = LocalCluster::start(cfg, b"chaos-demo")?;

    // A mildly hostile, seeded adversary in front of every server.
    let plan = FaultPlan::new(0xC0FFEE, FaultSpec::mild());
    let net = ChaosNet::wrap(&cluster.addrs(), &plan)?;
    println!("cluster {cfg} wrapped in chaos proxies (seed 0xC0FFEE, mild faults)");

    let config = TransportConfig::aggressive();
    let mut wc = ClusterClient::connect_with(
        WriterId(0).into(),
        &net.addrs(),
        cluster.chain().clone(),
        config,
    )?;
    let mut rc = ClusterClient::connect_with(
        ReaderId(0).into(),
        &net.addrs(),
        cluster.chain().clone(),
        config,
    )?;
    let mut writer = BsrWriter::new(WriterId(0), cfg);
    let mut reader = BsrReader::new(ReaderId(0), cfg);

    wc.run_op(&mut writer.write(Value::from("calm seas")))?;
    println!("write ok      breakers={}", breaker_states(&wc, 5));

    // Kill every live connection to s1: supervisors reconnect behind the
    // next operation's back.
    net.sever(ServerId(1));
    wc.run_op(&mut writer.write(Value::from("severed s1")))?;
    let out = rc.run_op(&mut reader.read())?;
    println!(
        "post-sever    breakers={}  read -> {:?}",
        breaker_states(&wc, 5),
        String::from_utf8_lossy(out.read_value().unwrap().as_bytes())
    );

    // Blackhole s2 (<= f down): connects succeed, frames vanish. Sessions
    // die undelivered until the breaker trips Open and sheds the traffic.
    net.set_blackhole(ServerId(2), true);
    let deadline = Instant::now() + Duration::from_secs(10);
    while wc.link_state(ServerId(2)) != Some(2) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    wc.run_op(&mut writer.write(Value::from("during blackhole")))?;
    let out = rc.run_op(&mut reader.read())?;
    println!(
        "blackhole s2  breakers={}  read -> {:?}",
        breaker_states(&wc, 5),
        String::from_utf8_lossy(out.read_value().unwrap().as_bytes())
    );

    // Lift it: the breaker only closes once a real authenticated frame is
    // delivered, so keep a little traffic flowing while it heals.
    net.set_blackhole(ServerId(2), false);
    let deadline = Instant::now() + Duration::from_secs(10);
    while wc.link_state(ServerId(2)) != Some(0) && Instant::now() < deadline {
        wc.run_op(&mut writer.write(Value::from("healing")))?;
        std::thread::sleep(Duration::from_millis(20));
    }
    println!(
        "healed        breakers={}  healthy_links={}",
        breaker_states(&wc, 5),
        wc.healthy_links()
    );

    let reconnects = reg.counter(names::TRANSPORT_RECONNECTS).get() - reconnects_before;
    println!("supervisors reconnected {reconnects} times; no operation was lost");
    Ok(())
}
