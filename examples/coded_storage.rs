//! Erasure-coded storage economics (§I-C, §IV): sweeping the deployment
//! size shows the `n/k` storage and bandwidth savings of BCSR over plain
//! replication — and the price: BCSR needs `n ≥ 5f + 1` servers where BSR
//! needs `4f + 1` (both bounds are tight, §V).
//!
//! ```text
//! cargo run --example coded_storage
//! ```

use safereg::common::config::QuorumConfig;
use safereg::common::ids::{ReaderId, WriterId};
use safereg::simnet::delay::FixedDelay;
use safereg::simnet::driver::Plan;
use safereg::simnet::sim::Sim;
use safereg::simnet::workload::Protocol;

/// Writes one value and returns (stored bytes across servers, wire bytes).
fn probe(protocol: Protocol, cfg: QuorumConfig, value_size: usize) -> (u64, u64) {
    let mut sim = Sim::new(cfg, 3, Box::new(FixedDelay { hop: 10 }));
    for sid in cfg.servers() {
        sim.add_server(protocol.correct_server(sid, cfg));
    }
    sim.add_client(
        protocol.writer(WriterId(0), cfg),
        vec![Plan::write_at(0, vec![0x99; value_size])],
    );
    sim.add_client(
        protocol.reader(ReaderId(0), cfg),
        vec![Plan::read_at(10_000)],
    );
    let report = sim.run();
    (sim.total_storage_bytes(), report.bytes)
}

fn main() {
    let value_size = 64 * 1024;
    let f = 1;
    println!("one {} KiB write + one read, f = {f}:", value_size / 1024);
    println!(
        "{:>3} {:>3} {:>12} {:>12} {:>9} {:>12} {:>12}",
        "n", "k", "repl stored", "coded stored", "savings", "repl wire", "coded wire"
    );
    for n in [6usize, 8, 11, 16, 21, 31] {
        let cfg = QuorumConfig::new(n, f).expect("valid config");
        let k = cfg.mds_k().expect("n > 5f");
        let (repl_stored, repl_wire) = probe(Protocol::Bsr, cfg, value_size);
        let (coded_stored, coded_wire) = probe(Protocol::Bcsr, cfg, value_size);
        println!(
            "{:>3} {:>3} {:>12} {:>12} {:>8.2}x {:>12} {:>12}",
            n,
            k,
            repl_stored,
            coded_stored,
            repl_stored as f64 / coded_stored.max(1) as f64,
            repl_wire,
            coded_wire,
        );
    }
    println!("\nThe measured savings track the paper's n/k exactly: each server");
    println!("stores one coded element of size |v|/k instead of a full copy.");
    println!("At the minimal n = 5f+1 the code degenerates to k = 1 (no savings) —");
    println!("the coding benefit is bought with servers beyond the resilience bound.");
}
