//! Fast vs slow read breakdown under write concurrency and Byzantine
//! interference — the "semi-fast" in the paper's title, measured.
//!
//! A read is *fast* when it completes in its normal number of rounds with
//! `f+1` servers witnessing the returned value (§III, §IV); anything that
//! forces a fallback — no witnessed candidate, a failed validation, an
//! exhausted candidate list — is *slow*. This example runs the same
//! concurrent-write workload against a clean deployment and against one
//! with a Byzantine server per strategy, then prints each run's breakdown
//! plus the metrics dump of the last run.
//!
//! ```text
//! cargo run --example fast_path_breakdown
//! ```

use safereg::obs::render_table;
use safereg::simnet::workload::{ByzKind, Protocol, WorkloadSpec};

fn main() {
    println!(
        "{:<12} {:<14} {:>6} {:>6} {:>7} {:>11} {:>10}",
        "protocol", "byzantine", "fast", "slow", "ratio", "late msgs", "val fails"
    );
    let mut last = None;
    for protocol in [
        Protocol::Bsr,
        Protocol::BsrH,
        Protocol::Bsr2p,
        Protocol::Bcsr,
    ] {
        for byz in [
            None,
            Some((1, ByzKind::Stale)),
            Some((1, ByzKind::Fabricator)),
            Some((1, ByzKind::Equivocator)),
        ] {
            let mut spec = WorkloadSpec::read_heavy(protocol, 1, 900, 0xFA57);
            spec.byzantine = byz;
            let mut sim = spec.build();
            let report = sim.run();
            let snap = sim.metrics_snapshot();
            println!(
                "{:<12} {:<14} {:>6} {:>6} {:>7} {:>11} {:>10}",
                protocol.name(),
                byz.map_or("none", |(_, k)| match k {
                    ByzKind::Silent => "silent",
                    ByzKind::Stale => "stale",
                    ByzKind::Fabricator => "fabricator",
                    ByzKind::Equivocator => "equivocator",
                    ByzKind::AckForger => "ack-forger",
                }),
                report.fast_reads,
                report.slow_reads,
                report
                    .fast_read_ratio()
                    .map_or_else(|| "-".into(), |r| format!("{:.1}%", r * 100.0)),
                report.late_messages,
                snap.counter("sim.read.validation_failures").unwrap_or(0),
            );
            last = Some(snap);
        }
        println!();
    }
    if let Some(snap) = last {
        println!("metrics registry of the last run (BCSR + equivocator):\n");
        println!("{}", render_table(&snap));
    }
}
