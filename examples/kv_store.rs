//! A geo-replicated key-value store on safe registers (the paper's §I
//! motivation: Cassandra/Redis-style storage with "strong consistency"
//! per key).
//!
//! Every key is an independent Byzantine-tolerant MWMR safe register; the
//! demo shows multi-client access, crash-fault tolerance at `f`, and the
//! quorum refusing to lie once more than `f` replicas are gone.
//!
//! ```text
//! cargo run --example kv_store
//! ```

use safereg::common::config::QuorumConfig;
use safereg::common::ids::{ReaderId, ServerId, WriterId};
use safereg::kv::{InMemKvCluster, KvClient};

fn main() {
    let cfg = QuorumConfig::minimal_bsr(1).expect("4f + 1 servers");
    let mut cluster = InMemKvCluster::new(cfg);
    println!("kv cluster: {cfg}, one register per key");

    let mut alice = KvClient::new(cfg, WriterId(0), ReaderId(0));
    let mut bob = KvClient::new(cfg, WriterId(1), ReaderId(1));

    // Basic puts and gets across clients.
    alice.put(&mut cluster, b"user:1:name", "Alice").unwrap();
    alice.put(&mut cluster, b"user:1:city", "Zurich").unwrap();
    bob.put(&mut cluster, b"user:2:name", "Bob").unwrap();

    println!(
        "bob reads user:1:name  -> {}",
        bob.get(&mut cluster, b"user:1:name").unwrap()
    );
    println!(
        "alice reads user:2:name -> {}",
        alice.get(&mut cluster, b"user:2:name").unwrap()
    );

    // Overwrites are per-key tag-ordered.
    let t1 = alice.put(&mut cluster, b"config:flag", "on").unwrap();
    let t2 = bob.put(&mut cluster, b"config:flag", "off").unwrap();
    println!("config:flag tags: alice wrote {t1}, bob wrote {t2}");
    println!(
        "config:flag is now -> {}",
        alice.get(&mut cluster, b"config:flag").unwrap()
    );

    // One crashed replica (= f) is invisible to clients.
    cluster.crash(ServerId(3));
    println!("crashed s3 (f = 1 fault)...");
    alice.put(&mut cluster, b"user:1:city", "Basel").unwrap();
    println!(
        "user:1:city -> {}",
        bob.get(&mut cluster, b"user:1:city").unwrap()
    );

    // A second crash exceeds f: operations refuse rather than lie.
    cluster.crash(ServerId(4));
    println!("crashed s4 (now f + 1 faults)...");
    match alice.put(&mut cluster, b"user:1:city", "Geneva") {
        Err(e) => println!("put correctly refused: {e}"),
        Ok(_) => unreachable!("quorum cannot form with f + 1 crashes"),
    }

    // Recovery restores service.
    cluster.recover(ServerId(4));
    alice.put(&mut cluster, b"user:1:city", "Geneva").unwrap();
    println!(
        "after recovery, user:1:city -> {}",
        bob.get(&mut cluster, b"user:1:city").unwrap()
    );

    println!(
        "cluster state: {} key-registers, {} stored payload bytes",
        cluster.total_keys(),
        cluster.total_storage_bytes()
    );

    // --- Erasure-coded mode -------------------------------------------------
    // With n >= 5f + 1 (+ spare servers for a real k) each replica stores a
    // coded element of |v|/k bytes instead of a full copy (§IV).
    let coded_cfg = QuorumConfig::new(8, 1).expect("k = 3");
    let mut coded = safereg::kv::InMemKvCluster::new_coded(coded_cfg);
    let mut client = KvClient::new_coded(coded_cfg, WriterId(5), ReaderId(5));
    let blob = vec![0x5Au8; 3_000];
    client.put(&mut coded, b"blob", blob.clone()).unwrap();
    assert_eq!(
        client.get(&mut coded, b"blob").unwrap().as_bytes(),
        &blob[..]
    );
    println!(
        "\ncoded KV ({coded_cfg}, k = {}): {} B value stored as {} B across replicas",
        coded_cfg.mds_k().unwrap(),
        blob.len(),
        coded.total_storage_bytes()
    );

    // --- The same store over real TCP --------------------------------------
    let tcp_cfg = QuorumConfig::minimal_bsr(1).expect("4f + 1 servers");
    let tcp = safereg::kv::TcpKvCluster::builder(safereg::kv::KvMode::Replicated, b"kv-demo")
        .quorum(tcp_cfg)
        .start()
        .expect("loopback cluster");
    let mut transport = tcp.transport();
    let mut tcp_client = KvClient::new(tcp_cfg, WriterId(7), ReaderId(7));
    tcp_client
        .put(&mut transport, b"net", "over authenticated sockets")
        .unwrap();
    println!(
        "\nTCP KV: net -> {}",
        tcp_client.get(&mut transport, b"net").unwrap()
    );
}
