//! Random-schedule search around the paper's resilience bound.
//!
//! The Theorem 5 replay (`examples/byzantine_replay.rs`) shows *one*
//! crafted schedule breaking BSR at `n = 4f`. This demo shows the bound is
//! not a knife edge: with nothing but heavy-tailed random delays and a
//! stale-replying Byzantine server, plain random schedules stumble into
//! safety violations below the bound — and never at it.
//!
//! ```text
//! cargo run --example lower_bound_search
//! ```

use safereg_bench::search::{random_run_is_unsafe, search};

fn main() {
    let trials = 400;
    println!("searching {trials} random schedules per configuration (f = 1)...\n");

    for n in [4usize, 5] {
        let outcome = search(n, 1, trials);
        let label = if n == 4 {
            "n = 4f    (below the bound)"
        } else {
            "n = 4f + 1 (the paper's bound)"
        };
        println!(
            "{label}: {:>3} / {} schedules violated safety",
            outcome.violating_seeds.len(),
            outcome.trials
        );
        if let Some(seed) = outcome.violating_seeds.first() {
            println!("  first violating seed: {seed} (re-run it deterministically below)");
            // Replays are exact: the same seed always reproduces the
            // violation.
            assert!(random_run_is_unsafe(n, 1, *seed));
            println!("  replayed seed {seed}: violation reproduced bit-for-bit");
        }
    }

    println!("\nTheorem 5 says no algorithm with one-shot reads survives n = 4f;");
    println!("the random search shows how ordinary tail latency gets there on its own.");
}
