//! Quickstart: a Byzantine-tolerant safe register in a few lines.
//!
//! Deploys BSR (the paper's replication-based register, `n = 4f + 1`) on
//! the deterministic simulator, performs a write and a read, and shows
//! that the read is one-shot even with a Byzantine server in the mix.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use safereg::checker::CheckSummary;
use safereg::common::config::QuorumConfig;
use safereg::common::history::OpKind;
use safereg::common::ids::{ReaderId, ServerId, WriterId};
use safereg::core::client::{BsrReader, BsrWriter};
use safereg::core::server::ServerNode;
use safereg::simnet::behavior::{Correct, Fabricator};
use safereg::simnet::delay::UniformDelay;
use safereg::simnet::driver::{ClientDriver, Plan};
use safereg::simnet::sim::Sim;

fn main() {
    // n = 5 servers tolerating f = 1 Byzantine fault (Theorem 2's bound).
    let cfg = QuorumConfig::minimal_bsr(1).expect("4f + 1 servers");
    println!("deployment: {cfg} (BSR needs n >= 4f + 1)");

    // An asynchronous network with jittery delays, seeded for replay.
    let mut sim = Sim::new(cfg, 42, Box::new(UniformDelay { lo: 5, hi: 50 }));

    // Four correct servers and one Byzantine fabricator.
    for sid in cfg.servers() {
        if sid == ServerId(4) {
            sim.add_server(Box::new(Fabricator::new(sid, 1)));
        } else {
            sim.add_server(Box::new(Correct::new(ServerNode::new_replicated(sid, cfg))));
        }
    }

    // One writer writes, one reader reads after it.
    sim.add_client(
        ClientDriver::BsrWriter(BsrWriter::new(WriterId(0), cfg)),
        vec![Plan::write_at(0, "hello, byzantine world")],
    );
    sim.add_client(
        ClientDriver::BsrReader(BsrReader::new(ReaderId(0), cfg)),
        vec![Plan::read_at(500)],
    );

    let report = sim.run();
    println!(
        "run: {} ops completed, {} messages, {} wire bytes, t_end = {}",
        report.completed_ops, report.messages, report.bytes, report.end_time
    );

    for op in sim.history().records() {
        match &op.kind {
            OpKind::Write { value, tag } => println!(
                "  write {value} -> tag {:?}, {} rounds, {} ticks",
                tag.map(|t| t.to_string()),
                op.rounds,
                op.latency().unwrap_or(0)
            ),
            OpKind::Read {
                returned,
                returned_tag,
            } => println!(
                "  read  -> {} (tag {:?}), {} round(s), {} ticks",
                returned.clone().unwrap(),
                returned_tag.map(|t| t.to_string()),
                op.rounds,
                op.latency().unwrap_or(0)
            ),
        }
    }

    // The checkers certify the run.
    let summary = CheckSummary::check_all(sim.history());
    println!(
        "verdict: safe = {}, fresh = {}, live = {}",
        summary.is_safe(),
        summary.is_fresh(),
        summary.liveness.is_empty()
    );
    assert!(summary.is_safe() && summary.liveness.is_empty());
}
