//! The paper's motivating workload: a read-dominated cache tier
//! (§I-A cites TAO at ~99.8 % reads) compared across protocols.
//!
//! Runs closed-loop clients at several read ratios and prints mean
//! latencies and throughput — the semi-fast trade-off in action: one-shot
//! reads keep BSR/BCSR read latency at a single round trip, while the
//! RB baseline pays its reliable-broadcast overhead on every write and
//! BSR-2P pays an extra round on every read.
//!
//! ```text
//! cargo run --example read_heavy_cache
//! ```

use safereg::checker::CheckSummary;
use safereg::simnet::workload::{Protocol, WorkloadSpec};

fn mean_latency(history: &safereg::common::history::History, reads: bool) -> f64 {
    let xs: Vec<u64> = history
        .records()
        .iter()
        .filter(|r| r.is_complete() && r.kind.is_read() == reads)
        .filter_map(|r| r.latency())
        .collect();
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<u64>() as f64 / xs.len() as f64
    }
}

fn main() {
    println!(
        "{:<7} {:<12} {:>6} {:>10} {:>10} {:>10}  safe",
        "reads", "protocol", "ops", "read-lat", "write-lat", "ops/ktick"
    );
    for permille in [900u32, 990, 998] {
        for protocol in [
            Protocol::Bsr,
            Protocol::BsrH,
            Protocol::Bsr2p,
            Protocol::Bcsr,
            Protocol::RbBaseline,
        ] {
            let spec = WorkloadSpec::read_heavy(protocol, 1, permille, 1234);
            let mut sim = spec.build();
            let report = sim.run();
            let summary = CheckSummary::check_all(sim.history());
            println!(
                "{:<7} {:<12} {:>6} {:>10.1} {:>10.1} {:>10.2}  {}",
                format!("{:.1}%", permille as f64 / 10.0),
                protocol.name(),
                report.completed_ops,
                mean_latency(sim.history(), true),
                mean_latency(sim.history(), false),
                report.completed_ops as f64 * 1000.0 / report.end_time.max(1) as f64,
                summary.is_safe()
            );
        }
        println!();
    }
    println!("note: BSR/BCSR reads stay one-shot; BSR-2P doubles read latency;");
    println!("      the RB baseline's writes carry the broadcast's extra hops.");
}
