//! The same protocols on real sockets: an authenticated TCP cluster on
//! loopback, serving BSR (replicated) and BCSR (erasure-coded) registers.
//!
//! Every frame is HMAC-authenticated with a per-link key (the paper's
//! signed-channel assumption, §II-A); a crashed server is tolerated
//! transparently by the quorum logic.
//!
//! ```text
//! cargo run --example tcp_cluster
//! ```

use std::time::Instant;

use safereg::common::config::QuorumConfig;
use safereg::common::ids::{ReaderId, ServerId, WriterId};
use safereg::common::value::Value;
use safereg::core::client::{BcsrReader, BcsrWriter, BsrReader, BsrWriter};
use safereg::transport::LocalCluster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- BSR over TCP -----------------------------------------------------
    let cfg = QuorumConfig::minimal_bsr(1)?;
    let mut cluster = LocalCluster::start(cfg, b"tcp-demo-secret")?;
    println!("BSR cluster up: {cfg} on {:?} ports", cluster.addrs().len());

    let mut writer_conn = cluster.client(WriterId(0))?;
    let mut writer = BsrWriter::new(WriterId(0), cfg);
    let started = Instant::now();
    writer_conn.run_op(&mut writer.write(Value::from("replicated over tcp")))?;
    println!("write committed in {:?}", started.elapsed());

    let mut reader_conn = cluster.client(ReaderId(0))?;
    let mut reader = BsrReader::new(ReaderId(0), cfg);
    let started = Instant::now();
    let mut read = reader.read();
    let out = reader_conn.run_op(&mut read)?;
    println!(
        "one-shot read -> {:?} in {:?}",
        String::from_utf8_lossy(out.read_value().unwrap().as_bytes()),
        started.elapsed()
    );

    // Crash one server (= f) and keep going.
    cluster.crash(ServerId(2));
    println!("crashed s2; operations continue against the remaining quorum");
    writer_conn.run_op(&mut writer.write(Value::from("still writable")))?;
    let mut read = reader.read();
    let out = reader_conn.run_op(&mut read)?;
    println!(
        "read -> {:?}",
        String::from_utf8_lossy(out.read_value().unwrap().as_bytes())
    );

    // --- BCSR over TCP ----------------------------------------------------
    let cfg = QuorumConfig::minimal_bcsr(1)?;
    let coded = LocalCluster::start_coded(cfg, b"tcp-demo-coded")?;
    println!(
        "\nBCSR cluster up: {cfg} (erasure-coded, k = n - 5f = {})",
        cfg.mds_k().unwrap()
    );

    let mut writer_conn = coded.client(WriterId(0))?;
    let mut coded_writer = BcsrWriter::new(WriterId(0), cfg)?;
    let payload = Value::from(vec![0xAB; 32 * 1024]);
    let started = Instant::now();
    writer_conn.run_op(&mut coded_writer.write(&payload))?;
    println!("coded 32 KiB write committed in {:?}", started.elapsed());

    let mut reader_conn = coded.client(ReaderId(0))?;
    let mut coded_reader = BcsrReader::new(ReaderId(0), cfg)?;
    let started = Instant::now();
    let mut read = coded_reader.read();
    let out = reader_conn.run_op(&mut read)?;
    assert_eq!(out.read_value().unwrap(), &payload);
    println!(
        "coded one-shot read verified ({} bytes) in {:?}",
        payload.len(),
        started.elapsed()
    );

    Ok(())
}
