#!/usr/bin/env bash
# Tier-1 verification, run fully offline to prove the hermetic build story:
# the workspace must build and test against an EMPTY cargo registry cache.
#
#   ./scripts/ci.sh
#
# Mirrors ROADMAP.md's tier-1 gate (`cargo build --release && cargo test -q`)
# with --offline added, plus formatting and the full-workspace test sweep
# (a bare `cargo test` at the root only tests the facade package).
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --check
run cargo build --release --offline
run cargo clippy --offline --workspace --all-targets -- -D warnings
run cargo test -q --offline
run cargo test --workspace -q --offline

# Observability smoke: a contended simnet scenario must emit the
# fast-read-ratio gauge through the metrics dump. Capture, then grep:
# under pipefail, grep -q's early exit would SIGPIPE the producer.
echo "==> paper_harness metrics | grep sim.read.fast_ratio_permille"
metrics_out=$(cargo run --release --offline -q -p safereg-bench --bin paper_harness metrics)
grep -q '"metric":"sim.read.fast_ratio_permille"' <<< "$metrics_out" ||
    { echo "ci.sh: metrics dump missing fast-read-ratio gauge" >&2; exit 1; }

# Chaos smoke: one bounded seeded run over the real TCP stack behind the
# fault-injection proxies. The scenario itself asserts the self-healing
# predicate (all ops complete, checker safety holds, nonzero reconnects
# and breaker transitions, seed-stable schedule) and exits nonzero on
# failure; the grep pins the human-readable verdict line too.
echo "==> paper_harness chaos | grep 'chaos: self-healing ok'"
chaos_out=$(cargo run --release --offline -q -p safereg-bench --bin paper_harness chaos)
echo "$chaos_out"
grep -q 'chaos: self-healing ok' <<< "$chaos_out" ||
    { echo "ci.sh: chaos smoke run did not self-heal" >&2; exit 1; }

# Wire smoke: the zero-copy wire-path microbench (BCSR write fan-out at
# n=11, f=2). The run emits BENCH_wire.json and exits nonzero when either
# acceptance bar fails; the greps pin both bars on the verdict line — the
# borrowing relay decode must copy zero payload bytes, and the encode-once
# path must allocate at least 2x less than the old per-destination path.
echo "==> paper_harness wire | grep verdicts"
wire_out=$(cargo run --release --offline -q -p safereg-bench --bin paper_harness wire)
echo "$wire_out"
grep -q 'relay bytes copied = 0 ' <<< "$wire_out" ||
    { echo "ci.sh: wire relay path copied payload bytes" >&2; exit 1; }
grep -q 'wire: ok' <<< "$wire_out" ||
    { echo "ci.sh: wire microbench failed its acceptance bars" >&2; exit 1; }

# Soak smoke: a bounded epoch-rotating run against the live TCP stack with
# f replicas genuinely Byzantine (rotating silent / stale-ack / fabricator /
# equivocator roles), server-side chaos proxies, and mid-epoch crash/
# restarts. The harness itself exits nonzero on any per-key safety
# violation, unbounded RSS growth, a stalled epoch, or a non-reproducible
# fault schedule; the greps pin the verdict line and the two server-side
# metrics the run must surface even when zero.
echo "==> paper_harness soak --ops 20000 --byz f --seed 7 | grep verdicts"
soak_out=$(cargo run --release --offline -q -p safereg-bench --bin paper_harness soak --ops 20000 --byz f --seed 7)
echo "$soak_out"
grep -q 'soak: ok' <<< "$soak_out" ||
    { echo "ci.sh: soak smoke failed its safety/memory/reproducibility bars" >&2; exit 1; }
grep -q '"metric":"server.evictions"' <<< "$soak_out" ||
    { echo "ci.sh: soak dump missing server.evictions counter" >&2; exit 1; }
grep -q '"metric":"transport.batch.frames"' <<< "$soak_out" ||
    { echo "ci.sh: soak dump missing transport.batch.frames histogram" >&2; exit 1; }

# Sharded soak smoke: the same live-Byzantine soak, but with the key space
# split over 4 register groups on one fleet — the epoch victim plays a
# *different* live role per shard it serves, and a boundary scrub re-writes
# every key so the restored replica catches up before the next victim
# converts (per-shard faults never exceed f). The greps pin the sharded
# verdict marker, the per-shard fast-ratio lines, and the zero-violation
# count.
echo "==> paper_harness soak --shards 4 --byz f --seed 11 | grep verdicts"
shard_soak_out=$(cargo run --release --offline -q -p safereg-bench --bin paper_harness \
    soak --ops 2000 --byz f --seed 11 --epochs 2 --shards 4 --keys 8)
echo "$shard_soak_out"
grep -q 'shard: ok' <<< "$shard_soak_out" ||
    { echo "ci.sh: sharded soak smoke failed its per-shard bars" >&2; exit 1; }
grep -q 'soak: shard g0 .* fast_ratio = ' <<< "$shard_soak_out" ||
    { echo "ci.sh: sharded soak missing per-shard fast_ratio lines" >&2; exit 1; }
grep -q 'soak: violations = 0 (0 required)' <<< "$shard_soak_out" ||
    { echo "ci.sh: sharded soak reported checker violations" >&2; exit 1; }

# Trace smoke: the causal-tracing scenario. The run itself asserts that
# two identically-seeded simulator runs render byte-identical span
# streams (schema stability across runs), that a checker violation dumps
# the offending op's span tree, and that the sampling-off overhead stays
# under its gate; the greps pin an attributed slow-read cause line, the
# determinism verdict, and the span-line schema (flight dumps go to
# stderr, so the captured stdout stays clean).
echo "==> paper_harness trace | grep verdicts"
trace_out=$(cargo run --release --offline -q -p safereg-bench --bin paper_harness trace 2>/dev/null)
echo "$trace_out"
grep -Eq 'trace: slow cause [a-z_]+ = [1-9]' <<< "$trace_out" ||
    { echo "ci.sh: trace run produced no attributed slow read" >&2; exit 1; }
grep -q 'trace: sim determinism = yes' <<< "$trace_out" ||
    { echo "ci.sh: identically-seeded trace streams diverged" >&2; exit 1; }
grep -Eq 'trace: sample span \{"trace":"[0-9a-f]{16}","seq":[0-9]+,"hop":[0-9]+,"phase":"[a-z_]+","kind":"[a-z]+","at":[0-9]+,"dur":[0-9]+,"node":"[a-z0-9-]+","cause":(null|"[a-z_]+"),"detail":[0-9]+\}' <<< "$trace_out" ||
    { echo "ci.sh: trace span JSONL schema drifted" >&2; exit 1; }
grep -q 'trace: ok' <<< "$trace_out" ||
    { echo "ci.sh: trace scenario failed its acceptance bars" >&2; exit 1; }

# Churn smoke: one add + one remove + one replace rolled through a live
# two-shard cluster while a Fabricator replica stays active — clients must
# adopt every successor epoch through WrongEpoch redirects, every op must
# terminate, the windowed checkers must stay clean, and the coded leg must
# rebuild the joiner's fragment (digest-asserted). The scenario exits
# nonzero on any of those; the greps pin the verdict line and the written
# BENCH_churn.json report.
echo "==> paper_harness churn | grep 'churn: ok'"
churn_out=$(cargo run --release --offline -q -p safereg-bench --bin paper_harness churn --ops 120)
echo "$churn_out"
grep -q 'churn: ok' <<< "$churn_out" ||
    { echo "ci.sh: churn smoke failed its reconfiguration bars" >&2; exit 1; }
grep -q 'churn: coded joiner rebuilt logical slot .*digest match = yes' <<< "$churn_out" ||
    { echo "ci.sh: churn coded joiner fragment digest mismatch" >&2; exit 1; }
test -s BENCH_churn.json ||
    { echo "ci.sh: churn smoke did not write BENCH_churn.json" >&2; exit 1; }

# Shard-scaling smoke: {1,4,16} register groups x {uniform, zipf} keys on
# one n=5 fleet. The bench itself exits nonzero unless every client
# transport holds exactly n sockets (socket sharing: n, never s*n) and
# median throughput is monotone in shard count within the noise allowance;
# the grep pins the verdict.
echo "==> paper_harness shard | grep 'shard: ok'"
shard_out=$(cargo run --release --offline -q -p safereg-bench --bin paper_harness shard)
echo "$shard_out"
grep -q 'shard: ok' <<< "$shard_out" ||
    { echo "ci.sh: shard-scaling bench failed socket or monotonicity bars" >&2; exit 1; }

# Runtime smoke: the reactor-vs-threaded saturation ladder in its --quick
# form (tiny rung, both runtimes). The bench itself exits nonzero when a
# run loses replies, the reactor gives up throughput against threaded, or
# the reactor's thread count scales with connections; the greps pin the
# verdict line and the reactor metrics the dump must surface.
echo "==> paper_harness runtime --quick | grep 'runtime: ok'"
runtime_out=$(cargo run --release --offline -q -p safereg-bench --bin paper_harness runtime --quick)
echo "$runtime_out"
grep -q 'runtime: ok' <<< "$runtime_out" ||
    { echo "ci.sh: runtime smoke failed its reactor-vs-threaded bars" >&2; exit 1; }
grep -q '"metric":"reactor.threads"' <<< "$runtime_out" ||
    { echo "ci.sh: runtime dump missing reactor.threads gauge" >&2; exit 1; }
grep -q '"metric":"reactor.accept.handoffs"' <<< "$runtime_out" ||
    { echo "ci.sh: runtime dump missing reactor.accept.handoffs counter" >&2; exit 1; }
test -s BENCH_runtime.json ||
    { echo "ci.sh: runtime smoke did not write BENCH_runtime.json" >&2; exit 1; }

# Audit smoke: the accountability scenario — a Fabricator leg and an
# Equivocator leg (its forged writer id registered, so conviction must
# come from cross-reader equivocation pooling), offline re-verification
# of every evidence record, quarantine + reconfiguration eviction with a
# post-eviction workload, and a chaos leg over an all-honest cluster
# that must convict nobody. The scenario exits nonzero unless every
# injected fault is convicted with zero false accusations; the greps pin
# the verdict line, the conviction counter in the metrics dump, the
# zero-false-accusation line, and the written report.
echo "==> paper_harness audit --ops 32 | grep verdicts"
audit_out=$(cargo run --release --offline -q -p safereg-bench --bin paper_harness audit --ops 32)
echo "$audit_out"
grep -q 'audit: ok' <<< "$audit_out" ||
    { echo "ci.sh: audit smoke failed its conviction/acquittal bars" >&2; exit 1; }
grep -q '"metric":"kv.audit.convictions"' <<< "$audit_out" ||
    { echo "ci.sh: audit dump missing kv.audit.convictions counter" >&2; exit 1; }
grep -q 'false_accusations 0 (0 required)' <<< "$audit_out" ||
    { echo "ci.sh: audit smoke accused a correct replica" >&2; exit 1; }
test -s BENCH_audit.json ||
    { echo "ci.sh: audit smoke did not write BENCH_audit.json" >&2; exit 1; }

# Key-hygiene gate: evidence and audit types are built to be logged and
# shipped, so their Debug output must never expose raw keychain
# material. The redaction lives in two places — the keychain's own Debug
# impl and the audit log's — and both must stay.
echo "==> grep gate: audit Debug output redacts key material"
grep -q '<redacted>' crates/crypto/src/keychain.rs ||
    { echo "ci.sh: KeyChain Debug no longer redacts key material" >&2; exit 1; }
grep -q '"<redacted>"' crates/kv/src/audit.rs ||
    { echo "ci.sh: AuditLog Debug no longer redacts its keychain" >&2; exit 1; }

# API gate: the deprecated KvServerHost::spawn*/TcpKvCluster::start*
# constructors must not be called from non-test code — the builders are
# the one public path (the builder-equivalence integration test is the
# single sanctioned shim caller and lives under crates/kv/tests/).
echo "==> grep gate: no deprecated spawn*/start* callers outside tests"
if grep -rnE "KvServerHost::spawn(_with|_on|_on_with|_opts)?\(|TcpKvCluster::start(_with|_chaos|_sharded)?\(" \
    crates/*/src src examples; then
    echo "ci.sh: deprecated constructor call in non-test code (use the builders)" >&2
    exit 1
fi

echo "ci.sh: all checks passed"
