//! # safereg — Byzantine-tolerant semi-fast safe registers
//!
//! Facade crate re-exporting the `safereg` workspace: a reproduction of
//! *Semi-Fast Byzantine-tolerant Shared Register without Reliable Broadcast*
//! (Konwar, Kumar, Tseng — ICDCS 2020).
//!
//! See the individual crates for the pieces:
//!
//! * [`common`] — ids, tags, values, messages, quorum math, wire codec.
//! * [`crypto`] — from-scratch SHA-256 / HMAC channel authentication.
//! * [`mds`] — GF(2⁸) Reed–Solomon MDS code with error-and-erasure decoding.
//! * [`core`] — the paper's protocols: BSR, BSR-H, BSR-2P, BCSR.
//! * [`rb`] — Bracha reliable broadcast + the `n ≥ 3f+1` baseline register.
//! * [`simnet`] — deterministic simulator, Byzantine behaviors, scenarios.
//! * [`checker`] — safety / regularity / ordering checkers.
//! * [`obs`] — zero-dependency metrics registry, structured tracing and
//!   semi-fast-path accounting.
//! * [`transport`] — authenticated TCP transport and cluster runtime.
//! * [`kv`] — a key-value store layered on the registers.

pub use safereg_checker as checker;
pub use safereg_common as common;
pub use safereg_core as core;
pub use safereg_crypto as crypto;
pub use safereg_kv as kv;
pub use safereg_mds as mds;
pub use safereg_obs as obs;
pub use safereg_rb as rb;
pub use safereg_simnet as simnet;
pub use safereg_transport as transport;
