//! Chaos torture: the KV store over real TCP behind seeded fault-injection
//! proxies, with `≤ f` replicas killed and restarted mid-run. Every
//! completed operation must still satisfy the checker's per-key safety
//! predicates, and the metrics must show the transport actually healed
//! (reconnects happened) rather than the run getting lucky.

use std::time::Duration;

use safereg::checker::CheckSummary;
use safereg::common::config::{QuorumConfig, TransportConfig};
use safereg::common::history::History;
use safereg::common::ids::{ClientId, ReaderId, ServerId, WriterId};
use safereg::common::msg::OpId;
use safereg::common::value::Value;
use safereg::kv::{KvClient, KvMode, TcpKvCluster, TcpKvTransport};
use safereg::obs::names;
use safereg::obs::trace::wall_micros;
use safereg::transport::chaos::{ChaosNet, FaultPlan, FaultSpec};

/// An aggressive-but-sane policy for the torture run: fast reconnects and
/// several retry passes, so a killed replica costs milliseconds.
fn torture_policy() -> TransportConfig {
    let mut config = TransportConfig::aggressive();
    config.io_timeout = Duration::from_millis(800);
    config.retry_budget = 6;
    config
}

#[test]
fn kv_ops_survive_chaos_with_server_kill_and_restart() {
    let reg = safereg::obs::global();
    let reconnects_before = reg.counter(names::KV_RECONNECTS).get();

    let cfg = QuorumConfig::minimal_bsr(1).unwrap();
    let mut cluster = TcpKvCluster::builder(KvMode::Replicated, b"kv-chaos")
        .quorum(cfg)
        .start()
        .unwrap();
    // Mild chaos on every link, plus a hard kill/restart of one replica
    // (<= f = 1) injected below.
    let plan = FaultPlan::new(0x7041_7041, FaultSpec::mild());
    let net = ChaosNet::wrap(&cluster.addrs(), &plan).unwrap();
    let mut transport =
        TcpKvTransport::connect_with(&net.addrs(), cluster.chain().clone(), torture_policy());

    let mut client = KvClient::new(cfg, WriterId(0), ReaderId(0));
    client.set_policy(torture_policy());

    // Per-key histories: each key is its own register, so the checker's
    // safety predicate applies per key.
    let mut histories: Vec<History> = (0..3).map(|_| History::new()).collect();
    let keys: [&[u8]; 3] = [b"alpha", b"beta", b"gamma"];

    let rounds = 8usize;
    for i in 0..rounds {
        match i {
            // Kill one replica's connections outright.
            2 => net.sever(ServerId(4)),
            // Kill and restart the replica process itself (state lost —
            // a crash-recover server the register model tolerates for
            // <= f replicas); its proxy reconnects to the new listener
            // on the same address.
            4 => {
                cluster.crash(ServerId(4));
                cluster.restart(ServerId(4), KvMode::Replicated).unwrap();
            }
            _ => {}
        }
        for (k, key) in keys.iter().enumerate() {
            let value =
                Value::from(format!("{}-gen{i}", String::from_utf8_lossy(key)).into_bytes());
            let op = OpId::new(
                ClientId::Writer(WriterId(0)),
                (i * keys.len() + k) as u64 + 1,
            );
            let h = histories[k].begin_write(op, value.clone(), wall_micros());
            let tag = client
                .put(&mut transport, key, value)
                .unwrap_or_else(|e| panic!("put {key:?} round {i} failed: {e}"));
            histories[k].complete_write(h, tag, wall_micros());

            let op = OpId::new(
                ClientId::Reader(ReaderId(0)),
                (i * keys.len() + k) as u64 + 1,
            );
            let h = histories[k].begin_read(op, wall_micros());
            let got = client
                .get(&mut transport, key)
                .unwrap_or_else(|e| panic!("get {key:?} round {i} failed: {e}"));
            // Tags are not surfaced by the KV API; recover the written tag
            // for the history from the read value itself (sequential
            // client: the read must return the just-written value or a
            // newer one for this key — checker verifies).
            histories[k].complete_read(h, got, tag, wall_micros());
        }
    }

    for (k, history) in histories.iter().enumerate() {
        let summary = CheckSummary::check_all(history);
        assert!(
            summary.is_safe(),
            "key {k}: chaos run violated register safety: {:?}",
            summary.safety
        );
        assert!(
            summary.order.is_empty(),
            "key {k}: write order violated: {:?}",
            summary.order
        );
    }
    assert!(
        reg.counter(names::KV_RECONNECTS).get() > reconnects_before,
        "the kill/restart must have forced kv reconnects"
    );
}

/// Every shedding policy must preserve per-key register safety under the
/// same chaos torture: replies leave each replica through a deliberately
/// tiny bounded outbox, the adversary severs and kill/restarts one replica
/// (`<= f`), and the checker's predicates must still hold for every key.
/// The metrics dump fetched from a live replica must expose the `chan.shed`
/// counters (registered eagerly, so visible even at zero).
#[test]
fn every_shed_policy_survives_chaos_torture() {
    use safereg::common::sync::channel::ShedPolicy;
    use safereg::kv::fetch_metrics;

    for (p, policy) in ShedPolicy::ALL.iter().enumerate() {
        let tconfig = TransportConfig {
            // A 4-deep outbox: small enough that shedding is plausible
            // under chaos, large enough that the strict request/response
            // exchange never deadlocks.
            chan_capacity: 4,
            shed_policy: *policy,
            ..torture_policy()
        };
        let cfg = QuorumConfig::minimal_bsr(1).unwrap();
        let mut cluster = TcpKvCluster::builder(KvMode::Replicated, b"kv-shed-chaos")
            .quorum(cfg)
            .config(tconfig)
            .start()
            .unwrap();
        let plan = FaultPlan::new(0x5EED_0000 + p as u64, FaultSpec::mild());
        let net = ChaosNet::wrap(&cluster.addrs(), &plan).unwrap();
        let mut transport =
            TcpKvTransport::connect_with(&net.addrs(), cluster.chain().clone(), torture_policy());

        let mut client = KvClient::new(cfg, WriterId(p as u16), ReaderId(p as u16));
        client.set_policy(torture_policy());

        let mut histories: Vec<History> = (0..2).map(|_| History::new()).collect();
        let keys: [&[u8]; 2] = [b"alpha", b"beta"];

        let rounds = 4usize;
        for i in 0..rounds {
            match i {
                1 => net.sever(ServerId(4)),
                2 => {
                    cluster.crash(ServerId(4));
                    cluster.restart(ServerId(4), KvMode::Replicated).unwrap();
                }
                _ => {}
            }
            for (k, key) in keys.iter().enumerate() {
                let value = Value::from(
                    format!("{}-{}-gen{i}", policy.label(), String::from_utf8_lossy(key))
                        .into_bytes(),
                );
                let op = OpId::new(
                    ClientId::Writer(WriterId(p as u16)),
                    (i * keys.len() + k) as u64 + 1,
                );
                let h = histories[k].begin_write(op, value.clone(), wall_micros());
                let tag = client.put(&mut transport, key, value).unwrap_or_else(|e| {
                    panic!("[{}] put {key:?} round {i} failed: {e}", policy.label())
                });
                histories[k].complete_write(h, tag, wall_micros());

                let op = OpId::new(
                    ClientId::Reader(ReaderId(p as u16)),
                    (i * keys.len() + k) as u64 + 1,
                );
                let h = histories[k].begin_read(op, wall_micros());
                let got = client.get(&mut transport, key).unwrap_or_else(|e| {
                    panic!("[{}] get {key:?} round {i} failed: {e}", policy.label())
                });
                histories[k].complete_read(h, got, tag, wall_micros());
            }
        }

        for (k, history) in histories.iter().enumerate() {
            let summary = CheckSummary::check_all(history);
            assert!(
                summary.is_safe(),
                "[{}] key {k}: chaos run violated register safety: {:?}",
                policy.label(),
                summary.safety
            );
            assert!(
                summary.order.is_empty(),
                "[{}] key {k}: write order violated: {:?}",
                policy.label(),
                summary.order
            );
        }

        // The dump from an untouched replica must carry the backpressure
        // counters for the policy this cluster runs under. The fetch is a
        // single unretried exchange and this link still runs mild chaos,
        // so re-ask with fresh sequence numbers until a reply survives;
        // the sleep lets an open circuit breaker finish its cooldown.
        let dump = (0..8)
            .find_map(|attempt| {
                if attempt > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(300));
                }
                fetch_metrics(
                    &mut transport,
                    ClientId::Reader(ReaderId(p as u16)),
                    ServerId(0),
                    9_000 + 10 * p as u64 + attempt,
                )
            })
            .unwrap_or_else(|| panic!("[{}] metrics dump unavailable", policy.label()));
        assert!(
            dump.contains("\"metric\":\"chan.shed\""),
            "[{}] dump is missing chan.shed",
            policy.label()
        );
        let per_policy = format!("\"metric\":\"chan.shed.{}\"", policy.label());
        assert!(
            dump.contains(&per_policy),
            "[{}] dump is missing the per-policy shed counter",
            policy.label()
        );
    }
}

/// Unreachable vs. silent: a crashed replica reports `Unreachable` (and is
/// retried), while the quorum error distinguishes network faults from
/// Byzantine silence.
#[test]
fn quorum_error_reports_unreachable_servers() {
    let cfg = QuorumConfig::minimal_bsr(1).unwrap();
    let mut cluster = TcpKvCluster::builder(KvMode::Replicated, b"kv-unreach")
        .quorum(cfg)
        .start()
        .unwrap();
    let mut transport = cluster.transport_with(torture_policy());
    let mut client = KvClient::new(cfg, WriterId(1), ReaderId(1));
    // Keep the test fast: one extra pass is enough to prove retry wiring.
    let mut policy = torture_policy();
    policy.retry_budget = 1;
    client.set_policy(policy);

    client.put(&mut transport, b"k", "v1").unwrap();

    // 2 > f crashes: the op must fail, and the error must say how many
    // servers were network-unreachable (not silently count them as
    // Byzantine).
    cluster.crash(ServerId(0));
    cluster.crash(ServerId(1));
    let err = client.put(&mut transport, b"k", "v2").unwrap_err();
    match err {
        safereg::kv::KvError::QuorumUnavailable {
            responded,
            needed,
            unreachable,
        } => {
            assert_eq!(needed, 4);
            assert!(responded < needed);
            assert!(
                unreachable >= 2,
                "both crashed replicas must be classified unreachable, got {unreachable}"
            );
        }
    }
}
