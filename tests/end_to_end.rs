//! Cross-crate integration tests: each protocol end-to-end on the
//! simulator, over TCP, and through the KV layer, with the checkers as
//! the oracle.

use safereg::checker::rounds::read_round_profile;
use safereg::checker::CheckSummary;
use safereg::common::config::QuorumConfig;
use safereg::common::history::OpKind;
use safereg::common::ids::{ReaderId, ServerId, WriterId};
use safereg::common::value::Value;
use safereg::simnet::delay::UniformDelay;
use safereg::simnet::driver::{Action, Plan, StartRule};
use safereg::simnet::sim::Sim;
use safereg::simnet::workload::{ByzKind, Protocol, WorkloadSpec};

const ALL_PROTOCOLS: [Protocol; 5] = [
    Protocol::Bsr,
    Protocol::BsrH,
    Protocol::Bsr2p,
    Protocol::Bcsr,
    Protocol::RbBaseline,
];

fn read_heavy_run(protocol: Protocol, byz: Option<(usize, ByzKind)>, seed: u64) -> CheckSummary {
    let spec = WorkloadSpec {
        protocol,
        f: 1,
        extra_servers: 0,
        writers: 2,
        readers: 3,
        writer_ops: 4,
        reader_ops: 6,
        value_size: 48,
        think: 25,
        byzantine: byz,
        seed,
    };
    let mut sim = spec.build();
    let report = sim.run();
    assert_eq!(
        report.incomplete_ops,
        0,
        "{}: every op completes in a fault-free/within-f run",
        protocol.name()
    );
    CheckSummary::check_all(sim.history())
}

#[test]
fn every_protocol_is_safe_without_faults() {
    for protocol in ALL_PROTOCOLS {
        let summary = read_heavy_run(protocol, None, 11);
        assert!(
            summary.is_safe(),
            "{}: {:?}",
            protocol.name(),
            summary.safety
        );
        assert!(summary.liveness.is_empty());
        assert!(summary.order.is_empty());
    }
}

#[test]
fn every_protocol_is_safe_with_each_byzantine_kind() {
    for protocol in ALL_PROTOCOLS {
        for kind in [
            ByzKind::Silent,
            ByzKind::Stale,
            ByzKind::Fabricator,
            ByzKind::Equivocator,
            ByzKind::AckForger,
        ] {
            for seed in [1u64, 2, 3] {
                let summary = read_heavy_run(protocol, Some((1, kind)), seed);
                assert!(
                    summary.is_safe(),
                    "{} under {kind:?} seed {seed}: {:?}",
                    protocol.name(),
                    summary.safety
                );
            }
        }
    }
}

#[test]
fn regular_variants_are_also_fresh_under_faults() {
    // BSR only promises safety; BSR-H, BSR-2P and the RB baseline promise
    // the regularity-grade freshness too.
    for protocol in [Protocol::BsrH, Protocol::Bsr2p, Protocol::RbBaseline] {
        for kind in [ByzKind::Silent, ByzKind::Stale, ByzKind::AckForger] {
            for seed in [5u64, 6] {
                let summary = read_heavy_run(protocol, Some((1, kind)), seed);
                assert!(
                    summary.is_fresh(),
                    "{} under {kind:?} seed {seed}: {:?}",
                    protocol.name(),
                    summary.freshness
                );
            }
        }
    }
}

#[test]
fn one_shot_protocols_use_exactly_one_read_round() {
    for protocol in [Protocol::Bsr, Protocol::BsrH, Protocol::Bcsr] {
        let spec = WorkloadSpec {
            protocol,
            f: 1,
            extra_servers: 0,
            writers: 1,
            readers: 3,
            writer_ops: 3,
            reader_ops: 5,
            value_size: 32,
            think: 20,
            byzantine: Some((1, ByzKind::Silent)),
            seed: 77,
        };
        let mut sim = spec.build();
        sim.run();
        let profile = read_round_profile(sim.history());
        assert!(profile.all_one_shot(), "{}: {:?}", protocol.name(), profile);
    }
}

#[test]
fn reader_cache_makes_bsr_reads_monotone_per_reader() {
    // A single reader's successive reads never regress in tag, even under
    // a stale-replying Byzantine server.
    let spec = WorkloadSpec {
        protocol: Protocol::Bsr,
        f: 1,
        extra_servers: 0,
        writers: 1,
        readers: 1,
        writer_ops: 6,
        reader_ops: 12,
        value_size: 16,
        think: 15,
        byzantine: Some((1, ByzKind::Stale)),
        seed: 3,
    };
    let mut sim = spec.build();
    sim.run();
    let mut last = None;
    for read in sim.history().completed_reads() {
        if let OpKind::Read {
            returned_tag: Some(t),
            ..
        } = &read.kind
        {
            if let Some(prev) = last {
                assert!(*t >= prev, "reader regressed from {prev} to {t}");
            }
            last = Some(*t);
        }
    }
    assert!(last.is_some());
}

#[test]
fn mixed_protocol_deployment_over_tcp_and_sim_agree() {
    // The same write/read pair through the simulator and through TCP must
    // produce the same value and tag (the state machines are identical).
    let cfg = QuorumConfig::minimal_bsr(1).unwrap();

    // Simulator run.
    let mut sim = Sim::new(cfg, 5, Box::new(UniformDelay { lo: 1, hi: 20 }));
    for sid in cfg.servers() {
        sim.add_server(Protocol::Bsr.correct_server(sid, cfg));
    }
    sim.add_client(
        Protocol::Bsr.writer(WriterId(0), cfg),
        vec![Plan::write_at(0, "agree")],
    );
    sim.add_client(
        Protocol::Bsr.reader(ReaderId(0), cfg),
        vec![Plan::read_at(500)],
    );
    sim.run();
    let sim_read = sim
        .history()
        .completed_reads()
        .next()
        .map(|r| match &r.kind {
            OpKind::Read {
                returned: Some(v),
                returned_tag: Some(t),
            } => (v.clone(), *t),
            _ => panic!("read incomplete"),
        })
        .unwrap();

    // TCP run.
    use safereg::core::client::{BsrReader, BsrWriter};
    let cluster = safereg::transport::LocalCluster::start(cfg, b"e2e").unwrap();
    let mut wc = cluster.client(WriterId(0)).unwrap();
    let mut writer = BsrWriter::new(WriterId(0), cfg);
    wc.run_op(&mut writer.write(Value::from("agree"))).unwrap();
    let mut rc = cluster.client(ReaderId(0)).unwrap();
    let mut reader = BsrReader::new(ReaderId(0), cfg);
    let mut op = reader.read();
    let out = rc.run_op(&mut op).unwrap();

    assert_eq!(out.read_value().unwrap(), &sim_read.0);
    assert_eq!(out.tag(), sim_read.1);
}

#[test]
fn kv_store_read_your_writes_sequentially() {
    use safereg::kv::{InMemKvCluster, KvClient};
    let cfg = QuorumConfig::minimal_bsr(1).unwrap();
    let mut cluster = InMemKvCluster::new(cfg);
    let mut client = KvClient::new(cfg, WriterId(0), ReaderId(0));
    for i in 0..20 {
        let key = format!("key-{}", i % 4);
        let val = format!("val-{i}");
        client
            .put(&mut cluster, key.as_bytes(), val.as_str())
            .unwrap();
        let got = client.get(&mut cluster, key.as_bytes()).unwrap();
        assert_eq!(got.as_bytes(), val.as_bytes(), "sequential read-your-write");
    }
}

#[test]
fn bcsr_large_values_roundtrip_under_faults() {
    let cfg = QuorumConfig::new(8, 1).unwrap(); // k = 3: real coding
    let mut sim = Sim::new(cfg, 13, Box::new(UniformDelay { lo: 1, hi: 30 }));
    for sid in cfg.servers() {
        if sid == ServerId(7) {
            sim.add_server(Box::new(safereg::simnet::behavior::Silent::new(sid)));
        } else {
            sim.add_server(Protocol::Bcsr.correct_server(sid, cfg));
        }
    }
    let big = vec![0xCDu8; 100 * 1024];
    sim.add_client(
        Protocol::Bcsr.writer(WriterId(0), cfg),
        vec![Plan {
            start: StartRule::At(0),
            action: Action::Write(Value::from(big.clone())),
        }],
    );
    sim.add_client(
        Protocol::Bcsr.reader(ReaderId(0), cfg),
        vec![Plan::read_at(5_000)],
    );
    let report = sim.run();
    assert_eq!(report.incomplete_ops, 0);
    let read = sim.history().completed_reads().next().unwrap();
    match &read.kind {
        OpKind::Read {
            returned: Some(v), ..
        } => assert_eq!(v.as_bytes(), &big[..]),
        other => panic!("unexpected {other:?}"),
    }
}
