//! Hermeticity guard: the dependency graph must be workspace-only.
//!
//! The whole point of the offline build story (DESIGN.md §"Third-party
//! crates") is that `cargo build --offline` works against an *empty*
//! registry cache. Cargo resolves every manifest entry — including
//! optional and feature-gated ones — into Cargo.lock, so even an unused
//! third-party listing breaks offline resolution. This test therefore
//! rejects ANY non-`safereg-` dependency in any manifest, not just
//! non-gated ones.
//!
//! The parser is deliberately minimal (std only): it tracks `[section]`
//! headers and reads the key of each `name = ...` line inside dependency
//! sections. That covers the subset of TOML these manifests use; exotic
//! syntax (inline dotted keys for deps, multi-line inline tables) would
//! need parser updates, which is fine — a failure here should prompt a
//! human look either way.

use std::fs;
use std::path::{Path, PathBuf};

/// Returns true for section headers that declare dependencies:
/// `[dependencies]`, `[dev-dependencies]`, `[build-dependencies]`,
/// `[workspace.dependencies]` and `[target.'cfg(..)'.dependencies]`.
fn is_dependency_section(header: &str) -> bool {
    header == "workspace.dependencies"
        || header
            .rsplit('.')
            .next()
            .map(|last| {
                last == "dependencies" || last == "dev-dependencies" || last == "build-dependencies"
            })
            .unwrap_or(false)
        || header == "dependencies"
        || header == "dev-dependencies"
        || header == "build-dependencies"
}

/// Extracts `(section, dependency-name)` pairs from a manifest.
fn dependency_names(manifest: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut section = String::new();
    let mut in_deps = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            if let Some(header) = rest.strip_suffix(']') {
                section = header.trim().to_string();
                in_deps = is_dependency_section(&section);
            }
            continue;
        }
        if !in_deps {
            continue;
        }
        if let Some(eq) = line.find('=') {
            let key = line[..eq].trim().trim_matches('"').to_string();
            if !key.is_empty() {
                out.push((section.clone(), key));
            }
        }
    }
    out
}

fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let entries = fs::read_dir(&crates).expect("crates/ directory exists");
    for entry in entries {
        let path = entry
            .expect("readable crates/ entry")
            .path()
            .join("Cargo.toml");
        if path.is_file() {
            manifests.push(path);
        }
    }
    manifests.sort();
    assert!(
        manifests.len() >= 12,
        "expected the root + 11 crate manifests, found {}: {manifests:?}",
        manifests.len()
    );
    manifests
}

#[test]
fn every_dependency_is_a_workspace_crate() {
    let mut offenders = Vec::new();
    for path in workspace_manifests() {
        let manifest =
            fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        for (section, name) in dependency_names(&manifest) {
            if !name.starts_with("safereg-") {
                offenders.push(format!("{}: [{section}] {name}", path.display()));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "third-party dependencies break the offline build (empty registry \
         cache); found:\n  {}",
        offenders.join("\n  ")
    );
}

#[test]
fn parser_sees_through_the_expected_toml_shapes() {
    let sample = r#"
[package]
name = "demo"

[dependencies]
safereg-common = { workspace = true }
serde = { version = "1", features = ["derive"] }

[dev-dependencies]
proptest = "1"

[features]
proptests = []

[target.'cfg(unix)'.build-dependencies]
cc = "1"
"#;
    let deps = dependency_names(sample);
    assert_eq!(
        deps,
        vec![
            ("dependencies".to_string(), "safereg-common".to_string()),
            ("dependencies".to_string(), "serde".to_string()),
            ("dev-dependencies".to_string(), "proptest".to_string()),
            (
                "target.'cfg(unix)'.build-dependencies".to_string(),
                "cc".to_string()
            ),
        ]
    );
}
