//! Acceptance tests for the observability layer: semi-fast-path
//! accounting surfaced through the metrics dump, and determinism of the
//! dump itself.
//!
//! The paper's headline property (§III, §IV) is that reads are *fast* —
//! one round, `f+1` witnesses — unless writes or Byzantine servers
//! interfere. These tests pin that property end to end: a quiescent run
//! reports a 100 % fast-read ratio through the metrics dump, interference
//! reports strictly less, and identical seeded runs produce byte-identical
//! dumps and event streams.

use std::sync::Arc;

use safereg::common::config::QuorumConfig;
use safereg::common::ids::{ReaderId, WriterId};
use safereg::obs::{render_jsonl, RingRecorder};
use safereg::simnet::delay::FixedDelay;
use safereg::simnet::driver::Plan;
use safereg::simnet::scenarios::theorem3;
use safereg::simnet::sim::Sim;
use safereg::simnet::workload::{ByzKind, Protocol, WorkloadSpec};

/// A deployment where no read overlaps any write: three writes settle,
/// then two readers issue three reads each.
fn quiescent_sim() -> Sim {
    let protocol = Protocol::Bsr;
    let cfg = QuorumConfig::new(protocol.min_n(1), 1).unwrap();
    let mut sim = Sim::new(cfg, 0x0B5, Box::new(FixedDelay { hop: 10 }));
    for sid in cfg.servers() {
        sim.add_server(protocol.correct_server(sid, cfg));
    }
    sim.add_client(
        protocol.writer(WriterId(0), cfg),
        vec![
            Plan::write_at(0, "v1"),
            Plan::write_at(500, "v2"),
            Plan::write_at(1000, "v3"),
        ],
    );
    for r in 0..2u16 {
        sim.add_client(
            protocol.reader(ReaderId(r), cfg),
            vec![
                Plan::read_at(2000),
                Plan::read_at(2500),
                Plan::read_at(3000),
            ],
        );
    }
    sim
}

fn gauge_value(dump: &str, metric: &str) -> Option<u64> {
    let needle = format!("{{\"metric\":\"{metric}\",\"type\":\"gauge\",\"value\":");
    dump.lines()
        .find(|l| l.starts_with(&needle))
        .and_then(|l| l[needle.len()..].trim_end_matches('}').parse().ok())
}

#[test]
fn quiescent_run_reports_every_read_fast() {
    let mut sim = quiescent_sim();
    let report = sim.run();
    assert_eq!(report.fast_reads, 6);
    assert_eq!(report.slow_reads, 0);
    assert_eq!(report.fast_read_ratio(), Some(1.0));

    let dump = render_jsonl(&sim.metrics_snapshot());
    assert_eq!(
        gauge_value(&dump, "sim.read.fast_ratio_permille"),
        Some(1000),
        "the dump reports a 100% fast-read ratio:\n{dump}"
    );
    // Every series is registered eagerly at spawn so dumps are
    // schema-stable: the slow-read counter is present — and zero — even
    // though a quiescent run never touches it.
    assert!(dump.contains("\"metric\":\"sim.reads.slow\",\"type\":\"counter\",\"value\":0"));
    assert!(dump.contains("\"metric\":\"sim.reads.fast\",\"type\":\"counter\",\"value\":6"));
}

#[test]
fn byzantine_interference_lowers_the_fast_ratio() {
    let mut spec = WorkloadSpec::read_heavy(Protocol::Bsr, 1, 800, 0xE13);
    spec.byzantine = Some((1, ByzKind::Fabricator));
    let mut sim = spec.build();
    let report = sim.run();

    assert!(report.slow_reads > 0, "the fabricator forces slow reads");
    let ratio = report.fast_read_ratio().unwrap();
    assert!(
        ratio < 1.0,
        "fast-read ratio {ratio} must drop below the quiescent 1.0"
    );

    let dump = render_jsonl(&sim.metrics_snapshot());
    let permille = gauge_value(&dump, "sim.read.fast_ratio_permille").unwrap();
    assert!(
        permille < 1000,
        "dump gauge {permille} must be below 1000:\n{dump}"
    );
    assert!(dump.contains("\"metric\":\"sim.read.validation_failures\""));
}

#[test]
fn theorem3_schedule_defeats_the_fast_path_entirely() {
    // The Theorem 3 regularity-violation schedule leaves the BSR read with
    // no f+1-witnessed candidate at all: every read is slow. The two
    // regular fixes keep their (single) read fast on the same schedule.
    let bsr = theorem3(Protocol::Bsr).report;
    assert_eq!((bsr.fast_reads, bsr.slow_reads), (0, 1));
    assert_eq!(bsr.fast_read_ratio(), Some(0.0));

    for fixed in [Protocol::BsrH, Protocol::Bsr2p] {
        let r = theorem3(fixed).report;
        assert_eq!(
            r.fast_read_ratio(),
            Some(1.0),
            "{} should stay fast under the Theorem 3 schedule",
            fixed.name()
        );
    }
}

#[test]
fn identical_runs_produce_byte_identical_dumps_and_event_streams() {
    let run = || {
        let mut spec = WorkloadSpec::read_heavy(Protocol::BsrH, 1, 900, 0xDE7);
        spec.byzantine = Some((1, ByzKind::Equivocator));
        let mut sim = spec.build();
        let ring = Arc::new(RingRecorder::new(1 << 16));
        sim.set_recorder(ring.clone());
        let report = sim.run();
        (report, render_jsonl(&sim.metrics_snapshot()), ring.events())
    };
    let (report_a, dump_a, events_a) = run();
    let (report_b, dump_b, events_b) = run();
    assert_eq!(report_a, report_b);
    assert_eq!(dump_a, dump_b, "metric dumps must be byte-identical");
    assert_eq!(events_a, events_b);
    assert!(events_a.len() > 100, "the run actually traced events");
}
