//! Asserts every experiment verdict from EXPERIMENTS.md — the claims of
//! the paper as a regression test suite.

use safereg_bench::ablations;
use safereg_bench::experiments;

#[test]
fn e1_resilience_bounds_are_tight() {
    let rows = experiments::e1_resilience();
    let find = |proto: &str, n: usize| {
        rows.iter()
            .find(|r| r.protocol == proto && r.n == n)
            .unwrap_or_else(|| panic!("missing row {proto}/{n}"))
    };
    assert_eq!(find("BSR", 4).verdict, "UNSAFE", "Theorem 5: n = 4f breaks");
    assert_eq!(
        find("BSR", 5).verdict,
        "safe",
        "Theorem 2: n = 4f + 1 suffices"
    );
    assert_eq!(
        find("BCSR", 10).verdict,
        "UNSAFE",
        "Theorem 6: n = 5f breaks"
    );
    assert_eq!(
        find("BCSR", 11).verdict,
        "safe",
        "Lemma 4: n = 5f + 1 suffices"
    );
    assert_eq!(find("RB-baseline", 3).verdict, "liveness lost");
    assert_eq!(find("RB-baseline", 4).verdict, "safe");
}

#[test]
fn e2_one_shot_reads() {
    for row in experiments::e2_rounds() {
        assert_eq!(
            row.write_rounds, 2,
            "{}: writes are two-phase",
            row.protocol
        );
        match row.protocol.as_str() {
            "BSR" | "BSR-H" | "BCSR" | "RB-baseline" => {
                assert!(row.one_shot, "{}: reads must be one-shot", row.protocol)
            }
            "BSR-2P" => {
                assert!(!row.one_shot);
                assert!(row.read_rounds.0 >= 2, "two-phase reads use >= 2 rounds");
            }
            other => panic!("unexpected protocol {other}"),
        }
    }
}

#[test]
fn e3_rb_write_overhead_is_one_point_five() {
    let rows = experiments::e3_latency();
    let bsr = rows.iter().find(|r| r.protocol == "BSR").unwrap();
    let rb = rows.iter().find(|r| r.protocol == "RB-baseline").unwrap();
    assert_eq!(bsr.write_hops, 4.0, "BSR: 2 round trips = 4 hops");
    assert_eq!(bsr.read_hops, 2.0, "one-shot read = 2 hops");
    assert_eq!(rb.write_hops, 6.0, "RB put-data gains echo+ready hops");
    assert!(
        (rb.write_vs_bsr - 1.5).abs() < 1e-9,
        "the paper's 1.5x factor"
    );
    let p2 = rows.iter().find(|r| r.protocol == "BSR-2P").unwrap();
    assert_eq!(p2.read_hops, 4.0, "slow reads pay a second round trip");
}

#[test]
fn e4_storage_savings_match_n_over_k() {
    for row in experiments::e4_costs() {
        // Stored bytes: replication keeps n full copies, coding keeps n
        // elements of ceil(S/k) bytes.
        assert_eq!(row.repl_storage, (row.n * row.value_size) as u64);
        let expect_coded = (row.n * row.value_size.div_ceil(row.k)) as u64;
        assert_eq!(row.coded_storage, expect_coded);
        // Wire bytes track the same ratio (within framing overhead).
        let measured = row.repl_write_bytes as f64 / row.coded_write_bytes as f64;
        let theory = row.k as f64;
        assert!(
            (measured - theory).abs() / theory < 0.15,
            "n={} k={}: measured {measured:.2} vs theory {theory:.2}",
            row.n,
            row.k
        );
    }
}

#[test]
fn e5_theorem3_verdicts() {
    let rows = experiments::e5_theorem3();
    let bsr = rows.iter().find(|r| r.name == "theorem3/BSR").unwrap();
    assert!(bsr.safe, "BSR stays safe (Theorem 2)");
    assert!(!bsr.fresh, "BSR is not regular (Theorem 3)");
    assert_eq!(bsr.read_returned, "v0");
    for name in ["theorem3/BSR-H", "theorem3/BSR-2P"] {
        let row = rows.iter().find(|r| r.name == name).unwrap();
        assert!(row.safe && row.fresh, "{name} repairs regularity (§III-C)");
    }
}

#[test]
fn e6_and_e7_impossibility_replays() {
    let t5 = experiments::e6_theorem5();
    assert!(!t5[0].safe, "n = 4f: safety violated");
    assert!(
        t5[1].safe && t5[1].fresh,
        "n = 4f + 1: same adversary harmless"
    );

    let t6 = experiments::e7_theorem6();
    assert!(!t6[0].safe, "n = 5f: decode starves, safety violated");
    assert!(
        t6[1].safe && t6[1].fresh,
        "n = 5f + 1: same adversary harmless"
    );
}

#[test]
fn e8_workloads_complete_and_stay_safe() {
    let rows = experiments::e8_workloads();
    assert_eq!(rows.len(), 4 * 5);
    for row in &rows {
        assert!(row.safe, "{} at {}‰", row.protocol, row.read_permille);
        assert!(row.ops > 0);
    }
    // One-shot reads beat two-phase reads on latency at every ratio.
    for permille in [500u32, 900, 990, 998] {
        let get = |p: &str| {
            rows.iter()
                .find(|r| r.protocol == p && r.read_permille == permille)
                .unwrap()
        };
        assert!(
            get("BSR").read_latency < get("BSR-2P").read_latency,
            "one-shot reads are faster at {permille}"
        );
    }
}

#[test]
fn e9_liveness_at_exactly_f() {
    for row in experiments::e9_liveness() {
        assert!(
            row.as_expected,
            "{} with {} silent: {:?}",
            row.protocol, row.silent, row.completed
        );
    }
}

#[test]
fn e10_write_order_holds() {
    let row = experiments::e10_write_order();
    assert!(row.writes > 100);
    assert_eq!(row.duplicates, 0, "Lemma 2: tags unique");
    assert_eq!(row.inversions, 0, "Lemma 2: tags respect real time");
}

#[test]
fn a1_witness_threshold_sweet_spot() {
    let rows = ablations::a1_witness_threshold();
    assert!(
        !rows[0].safe,
        "threshold f admits fabricated values (Lemma 5)"
    );
    assert!(
        rows[1].safe && rows[1].fresh,
        "threshold f + 1 is the paper's rule"
    );
    assert!(!rows[2].fresh, "threshold f + 2 loses coverage");
}

#[test]
fn a2_max_selection_is_inflatable() {
    let rows = ablations::a2_tag_selection();
    assert!(!rows[0].inflated, "(f+1)-th highest resists inflation");
    assert_eq!(rows[0].final_tag_num, 3);
    assert!(rows[1].inflated, "max selection is hijacked by one liar");
}

#[test]
fn a3_erasure_marking_outperforms_blind_decode() {
    let rows = ablations::a3_decode_strategy();
    assert!(
        rows[0].recovered,
        "erasure-marking handles 2 era + 4 stale + 2 corrupt"
    );
    assert!(
        !rows[1].recovered,
        "blind decoding exceeds its error budget"
    );
}

#[test]
fn a4_history_retention_matters_for_variants() {
    let rows = ablations::a4_history_retention();
    assert!(
        !rows[0].fresh,
        "Fig. 3-literal retention breaks BSR-H freshness"
    );
    assert!(rows[1].fresh, "store-all retention keeps BSR-H regular");
}

#[test]
fn e11_inversions_exist_but_safety_and_freshness_hold() {
    for row in experiments::e11_atomicity_boundary() {
        assert!(
            row.safe,
            "{}: the inversion schedule is still safe",
            row.protocol
        );
        assert!(row.fresh, "{}: and still regular-fresh", row.protocol);
        assert!(row.inversions > 0, "{}: but not atomic", row.protocol);
    }
}

#[test]
fn e12_bandwidth_shapes_of_the_regular_variants() {
    let rows = experiments::e12_variant_bandwidth();
    let first = &rows[0];
    let last = rows.last().unwrap();
    // BSR reads are history-independent.
    assert_eq!(first.bsr_read_bytes, last.bsr_read_bytes);
    // BSR-H grows roughly linearly with history × value size.
    assert!(last.bsrh_read_bytes > 50 * first.bsr_read_bytes);
    // BSR-2P grows only by tag-list bytes — orders of magnitude less.
    assert!(last.bsr2p_read_bytes < last.bsrh_read_bytes / 20);
    assert!(last.bsr2p_read_bytes < 3 * first.bsr2p_read_bytes);
    // Warm BSR-H reads (delta queries) are history-independent and tiny.
    assert_eq!(first.bsrh_warm_read_bytes, last.bsrh_warm_read_bytes);
    assert!(last.bsrh_warm_read_bytes * 10 < last.bsr_read_bytes);
}

#[test]
fn a5_full_fanout_is_necessary() {
    let rows = ablations::a5_write_fanout();
    assert_eq!(rows.len(), 3);
    assert!(
        rows[0].violations > rows[1].violations,
        "m=3f is much worse than m=n-f"
    );
    assert!(rows[1].violations > 0, "even m = n - 1 leaks staleness");
    assert_eq!(rows[2].violations, 0, "the paper's full fan-out is clean");
}
