//! Property-based tests over randomized executions.
//!
//! For arbitrary seeds, client populations and Byzantine strategies within
//! the paper's fault model, every execution must satisfy the paper's
//! guarantees: safety and write order always; freshness for the regular
//! variants; liveness whenever at most `f` servers misbehave.
//!
//! The always-on suite enumerates every `(protocol, byzantine)` pair —
//! the full discrete space, which sampling can miss — with [`DetRng`]-drawn
//! seeds and populations; the original proptest suite sits behind the
//! off-by-default `proptests` feature.

use safereg::checker::CheckSummary;
use safereg::common::rng::DetRng;
use safereg::simnet::workload::{ByzKind, Protocol, WorkloadSpec};

const PROTOCOLS: [Protocol; 5] = [
    Protocol::Bsr,
    Protocol::BsrH,
    Protocol::Bsr2p,
    Protocol::Bcsr,
    Protocol::RbBaseline,
];

const BYZ: [Option<ByzKind>; 6] = [
    None,
    Some(ByzKind::Silent),
    Some(ByzKind::Stale),
    Some(ByzKind::Fabricator),
    Some(ByzKind::Equivocator),
    Some(ByzKind::AckForger),
];

#[test]
fn randomized_executions_are_safe_live_and_ordered() {
    let mut rng = DetRng::seed_from(0x9209_7001);
    for protocol in PROTOCOLS {
        for byz in BYZ {
            let seed = rng.next_u64();
            let spec = WorkloadSpec {
                protocol,
                f: 1,
                extra_servers: rng.index(2),
                writers: 1 + rng.index(2),
                readers: 1 + rng.index(3),
                writer_ops: 2 + rng.index(3),
                reader_ops: 2 + rng.index(3),
                value_size: 24,
                think: 20,
                byzantine: byz.map(|k| (1, k)),
                seed,
            };
            let mut sim = spec.build();
            let report = sim.run();

            // Liveness (Theorem 1/4): at most f faulty servers.
            assert_eq!(
                report.incomplete_ops,
                0,
                "{} under {:?}",
                protocol.name(),
                byz
            );

            let summary = CheckSummary::check_all(sim.history());
            // Safety (Theorem 2 / Lemma 4) and write order (Lemma 2): always.
            assert!(
                summary.is_safe(),
                "{} under {:?} seed {}: {:?}",
                protocol.name(),
                byz,
                seed,
                summary.safety
            );
            assert!(
                summary.order.is_empty(),
                "{} order: {:?}",
                protocol.name(),
                summary.order
            );

            // Freshness: promised by the regular variants (§III-C) and the RB
            // baseline; BSR deliberately does not promise it (Theorem 3).
            if matches!(
                protocol,
                Protocol::BsrH | Protocol::Bsr2p | Protocol::RbBaseline
            ) {
                assert!(
                    summary.is_fresh(),
                    "{} under {:?} seed {}: {:?}",
                    protocol.name(),
                    byz,
                    seed,
                    summary.freshness
                );
            }
        }
    }
}

#[test]
fn tag_space_stays_bounded_by_write_count() {
    let mut rng = DetRng::seed_from(0x9209_7002);
    for _ in 0..12 {
        // Robust tag selection: a register's tag number never exceeds the
        // number of completed writes (no inflation), regardless of
        // interleaving.
        let seed = rng.next_u64();
        let writers = 1 + rng.index(3);
        let ops = 1 + rng.index(3);
        let spec = WorkloadSpec {
            protocol: Protocol::Bsr,
            f: 1,
            extra_servers: 0,
            writers,
            readers: 1,
            writer_ops: ops,
            reader_ops: 2,
            value_size: 8,
            think: 15,
            byzantine: Some((1, ByzKind::Fabricator)),
            seed,
        };
        let mut sim = spec.build();
        sim.run();
        let total_writes = writers * ops;
        for w in sim.history().completed_writes() {
            if let safereg::common::history::OpKind::Write { tag: Some(t), .. } = &w.kind {
                assert!(
                    t.num as usize <= total_writes,
                    "tag {t} exceeds {total_writes} writes"
                );
            }
        }
    }
}

/// Original proptest suite; requires re-adding `proptest` as a
/// dev-dependency (see the `proptests` feature note in Cargo.toml).
#[cfg(feature = "proptests")]
mod proptest_suite {
    use proptest::prelude::*;
    use safereg::checker::CheckSummary;
    use safereg::simnet::workload::{ByzKind, Protocol, WorkloadSpec};

    fn arb_protocol() -> impl Strategy<Value = Protocol> {
        prop_oneof![
            Just(Protocol::Bsr),
            Just(Protocol::BsrH),
            Just(Protocol::Bsr2p),
            Just(Protocol::Bcsr),
            Just(Protocol::RbBaseline),
        ]
    }

    fn arb_byz() -> impl Strategy<Value = Option<ByzKind>> {
        prop_oneof![
            Just(None),
            Just(Some(ByzKind::Silent)),
            Just(Some(ByzKind::Stale)),
            Just(Some(ByzKind::Fabricator)),
            Just(Some(ByzKind::Equivocator)),
            Just(Some(ByzKind::AckForger)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        #[test]
        fn randomized_executions_are_safe_live_and_ordered(
            protocol in arb_protocol(),
            byz in arb_byz(),
            seed in any::<u64>(),
            writers in 1usize..3,
            readers in 1usize..4,
            ops in 2usize..5,
            extra in 0usize..2,
        ) {
            let spec = WorkloadSpec {
                protocol,
                f: 1,
                extra_servers: extra,
                writers,
                readers,
                writer_ops: ops,
                reader_ops: ops,
                value_size: 24,
                think: 20,
                byzantine: byz.map(|k| (1, k)),
                seed,
            };
            let mut sim = spec.build();
            let report = sim.run();
            prop_assert_eq!(report.incomplete_ops, 0,
                "{} under {:?}", protocol.name(), byz);

            let summary = CheckSummary::check_all(sim.history());
            prop_assert!(summary.is_safe(),
                "{} under {:?} seed {}: {:?}", protocol.name(), byz, seed, summary.safety);
            prop_assert!(summary.order.is_empty(),
                "{} order: {:?}", protocol.name(), summary.order);

            if matches!(protocol, Protocol::BsrH | Protocol::Bsr2p | Protocol::RbBaseline) {
                prop_assert!(summary.is_fresh(),
                    "{} under {:?} seed {}: {:?}", protocol.name(), byz, seed, summary.freshness);
            }
        }
    }
}
