//! Torture tests: extreme asynchrony, retention pressure, and the BCSR
//! multi-writer boundary the paper's footnote 2 describes.

use safereg::checker::CheckSummary;
use safereg::common::config::QuorumConfig;
use safereg::common::history::OpKind;
use safereg::common::ids::{ReaderId, WriterId};
use safereg::common::value::Value;
use safereg::core::server::{HistoryRetention, ServerNode};
use safereg::simnet::behavior::Correct;
use safereg::simnet::delay::UniformDelay;
use safereg::simnet::driver::{Action, ClientDriver, Plan, StartRule};
use safereg::simnet::sim::Sim;
use safereg::simnet::workload::{Protocol, WorkloadSpec};

/// Extreme jitter: per-message delays spanning three orders of magnitude.
/// Safety, ordering and liveness must survive arbitrary reorderings.
#[test]
fn extreme_jitter_preserves_all_guarantees() {
    for protocol in [Protocol::Bsr, Protocol::Bcsr, Protocol::RbBaseline] {
        for seed in [1u64, 2, 3] {
            let cfg = QuorumConfig::new(protocol.min_n(1), 1).unwrap();
            let mut sim = Sim::new(cfg, seed, Box::new(UniformDelay { lo: 1, hi: 5_000 }));
            for sid in cfg.servers() {
                sim.add_server(protocol.correct_server(sid, cfg));
            }
            for w in 0..3u16 {
                let plans = (0..4)
                    .map(|i| Plan {
                        start: StartRule::AfterPrevious { think: 13 + i },
                        action: Action::Write(Value::from(format!("w{w}-{i}").into_bytes())),
                    })
                    .collect();
                sim.add_client(protocol.writer(WriterId(w), cfg), plans);
            }
            for r in 0..3u16 {
                let plans = (0..6)
                    .map(|_| Plan {
                        start: StartRule::AfterPrevious { think: 17 },
                        action: Action::Read,
                    })
                    .collect();
                sim.add_client(protocol.reader(ReaderId(r), cfg), plans);
            }
            let report = sim.run();
            assert_eq!(report.incomplete_ops, 0, "{} seed {seed}", protocol.name());
            let summary = CheckSummary::check_all(sim.history());
            assert!(
                summary.is_safe(),
                "{} seed {seed}: {:?}",
                protocol.name(),
                summary.safety
            );
            assert!(summary.order.is_empty());
        }
    }
}

/// Bounded history (GC) keeps BSR safe: the one-shot read only needs the
/// max pair, which windowed retention always preserves.
#[test]
fn windowed_retention_keeps_bsr_safe() {
    let cfg = QuorumConfig::minimal_bsr(1).unwrap();
    let mut sim = Sim::new(cfg, 4, Box::new(UniformDelay { lo: 1, hi: 40 }));
    for sid in cfg.servers() {
        sim.add_server(Box::new(Correct::new(
            ServerNode::new_replicated(sid, cfg).with_retention(HistoryRetention::Window(2)),
        )));
    }
    let plans = (0..10)
        .map(|i| Plan {
            start: StartRule::AfterPrevious { think: 10 },
            action: Action::Write(Value::from(format!("gen-{i}").into_bytes())),
        })
        .collect();
    sim.add_client(
        ClientDriver::BsrWriter(safereg::core::client::BsrWriter::new(WriterId(0), cfg)),
        plans,
    );
    let read_plans = (0..10)
        .map(|_| Plan {
            start: StartRule::AfterPrevious { think: 12 },
            action: Action::Read,
        })
        .collect();
    sim.add_client(
        ClientDriver::BsrReader(safereg::core::client::BsrReader::new(ReaderId(0), cfg)),
        read_plans,
    );
    let report = sim.run();
    assert_eq!(report.incomplete_ops, 0);
    let summary = CheckSummary::check_all(sim.history());
    assert!(summary.is_safe(), "{:?}", summary.safety);
}

/// Footnote 2: BCSR "can tolerate multiple writers as long as writes are
/// not concurrent". Sequential writes from different writers must read
/// back correctly.
#[test]
fn bcsr_multiple_sequential_writers_are_fine() {
    let cfg = QuorumConfig::minimal_bcsr(1).unwrap();
    let mut sim = Sim::new(cfg, 6, Box::new(UniformDelay { lo: 1, hi: 20 }));
    for sid in cfg.servers() {
        sim.add_server(Protocol::Bcsr.correct_server(sid, cfg));
    }
    // Three writers, strictly sequential (non-overlapping intervals).
    sim.add_client(
        Protocol::Bcsr.writer(WriterId(0), cfg),
        vec![Plan::write_at(0, "first")],
    );
    sim.add_client(
        Protocol::Bcsr.writer(WriterId(1), cfg),
        vec![Plan::write_at(2_000, "second")],
    );
    sim.add_client(
        Protocol::Bcsr.writer(WriterId(2), cfg),
        vec![Plan::write_at(4_000, "third")],
    );
    sim.add_client(
        Protocol::Bcsr.reader(ReaderId(0), cfg),
        vec![Plan::read_at(6_000)],
    );
    sim.run();
    let read = sim.history().completed_reads().next().unwrap();
    match &read.kind {
        OpKind::Read {
            returned: Some(v), ..
        } => assert_eq!(v.as_bytes(), b"third"),
        other => panic!("unexpected {other:?}"),
    }
    let summary = CheckSummary::check_all(sim.history());
    assert!(summary.is_safe() && summary.is_fresh());
}

/// With *concurrent* BCSR writers a read overlapping the writes may fail to
/// decode and fall back to `v_0` — allowed by safety (the read is
/// concurrent with writes) and exactly why the paper states the coded
/// register as SWMR.
#[test]
fn bcsr_concurrent_writers_stay_safe_but_may_lose_freshness() {
    let mut fresh_everywhere = true;
    for seed in 0..8u64 {
        let spec = WorkloadSpec {
            protocol: Protocol::Bcsr,
            f: 1,
            extra_servers: 0,
            writers: 3,
            readers: 2,
            writer_ops: 3,
            reader_ops: 4,
            value_size: 48,
            think: 5, // tight think time maximizes write concurrency
            byzantine: None,
            seed,
        };
        let mut sim = spec.build();
        let report = sim.run();
        assert_eq!(report.incomplete_ops, 0, "liveness is unconditional");
        let summary = CheckSummary::check_all(sim.history());
        assert!(summary.is_safe(), "seed {seed}: {:?}", summary.safety);
        fresh_everywhere &= summary.is_fresh();
    }
    // Not asserted as a failure — but record the point of footnote 2: the
    // coded register does not promise regularity under concurrent writers.
    // (Any of the seeds may or may not exhibit it; safety held in all.)
    let _ = fresh_everywhere;
}

/// Values at the codec's edge: empty values, 1-byte values, and values
/// whose length exercises striping padding, across protocols.
#[test]
fn boundary_value_sizes_roundtrip() {
    for protocol in [Protocol::Bsr, Protocol::Bcsr] {
        for size in [0usize, 1, 2, 5, 6, 7, 255, 256] {
            let cfg = QuorumConfig::new(8, 1).unwrap(); // k = 3 for BCSR
            let mut sim = Sim::new(cfg, 9, Box::new(UniformDelay { lo: 1, hi: 10 }));
            for sid in cfg.servers() {
                sim.add_server(protocol.correct_server(sid, cfg));
            }
            let payload = vec![0x61u8; size];
            sim.add_client(
                protocol.writer(WriterId(0), cfg),
                vec![Plan {
                    start: StartRule::At(0),
                    action: Action::Write(Value::from(payload.clone())),
                }],
            );
            sim.add_client(
                protocol.reader(ReaderId(0), cfg),
                vec![Plan::read_at(1_000)],
            );
            sim.run();
            let read = sim.history().completed_reads().next().unwrap();
            match &read.kind {
                OpKind::Read {
                    returned: Some(v), ..
                } => {
                    assert_eq!(
                        v.as_bytes(),
                        &payload[..],
                        "{} size {size}",
                        protocol.name()
                    )
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}

/// Crash-recovery: a server down for a window misses writes; after
/// recovery it serves (stale) state, and the quorum still answers reads
/// correctly because at most f servers were ever down at once.
#[test]
fn crash_recovery_window_is_masked() {
    use safereg::simnet::behavior::{Correct, DownBetween};

    let cfg = QuorumConfig::minimal_bsr(1).unwrap();
    let mut sim = Sim::new(cfg, 15, Box::new(UniformDelay { lo: 1, hi: 30 }));
    for sid in cfg.servers() {
        let correct = Box::new(Correct::new(ServerNode::new_replicated(sid, cfg)));
        if sid.0 == 2 {
            // s2 is down exactly while the second write happens.
            sim.add_server(Box::new(DownBetween::new(correct, 900, 2_200)));
        } else {
            sim.add_server(correct);
        }
    }
    sim.add_client(
        ClientDriver::BsrWriter(safereg::core::client::BsrWriter::new(WriterId(0), cfg)),
        vec![
            Plan::write_at(0, "before crash"),
            Plan::write_at(1_000, "during crash"),
        ],
    );
    sim.add_client(
        ClientDriver::BsrReader(safereg::core::client::BsrReader::new(ReaderId(0), cfg)),
        vec![Plan::read_at(3_000)],
    );
    let report = sim.run();
    assert_eq!(
        report.incomplete_ops, 0,
        "writes survive one server being down"
    );
    let read = sim.history().completed_reads().next().unwrap();
    match &read.kind {
        OpKind::Read {
            returned: Some(v), ..
        } => assert_eq!(v.as_bytes(), b"during crash"),
        other => panic!("unexpected {other:?}"),
    }
    let summary = CheckSummary::check_all(sim.history());
    assert!(summary.is_safe() && summary.is_fresh());
}

/// A writer that crashes mid-`put-data` (only two servers ever receive
/// its value, and no response reaches it, so the write stays incomplete)
/// leaves the register safe: a later write supersedes the partial one and
/// reads never return fabricated state.
#[test]
fn crashed_writer_mid_put_data_is_harmless() {
    use safereg::common::msg::OpId;
    use safereg::simnet::delay::{Delay, Matcher, MsgKind, Rule, Scripted};

    let cfg = QuorumConfig::minimal_bsr(1).unwrap();
    let w1_op = OpId::new(WriterId(1), 1);
    let mut rules = vec![
        // The crash: w1 never hears any put-data acknowledgement...
        Rule {
            matcher: Matcher::any()
                .for_op(w1_op)
                .of_kind(MsgKind::Response)
                .to_node(WriterId(1)),
            delay: Delay::held(),
        },
    ];
    // ...and its put-data reached only s0 and s1 before dying.
    for sid in [2u16, 3, 4] {
        rules.push(Rule {
            matcher: Matcher::any()
                .for_op(w1_op)
                .of_kind(MsgKind::PutData)
                .to_node(safereg::common::ids::ServerId(sid)),
            delay: Delay::held(),
        });
    }
    let mut sim = Sim::new(cfg, 21, Box::new(Scripted::over_fixed(rules, 10)));
    for sid in cfg.servers() {
        sim.add_server(Box::new(Correct::new(ServerNode::new_replicated(sid, cfg))));
    }
    sim.add_client(
        ClientDriver::BsrWriter(safereg::core::client::BsrWriter::new(WriterId(1), cfg)),
        vec![Plan::write_at(0, "phantom")],
    );
    sim.add_client(
        ClientDriver::BsrWriter(safereg::core::client::BsrWriter::new(WriterId(2), cfg)),
        vec![Plan::write_at(1_000, "committed")],
    );
    sim.add_client(
        ClientDriver::BsrReader(safereg::core::client::BsrReader::new(ReaderId(0), cfg)),
        vec![Plan::read_at(2_000)],
    );
    let report = sim.run_until(1_000_000);
    assert_eq!(report.incomplete_ops, 1, "exactly the crashed writer's op");

    // The later write saw w1's tag via get-tag (s0/s1 reported it) and
    // superseded it; the read returns the committed value.
    let read = sim.history().completed_reads().next().unwrap();
    match &read.kind {
        OpKind::Read {
            returned: Some(v), ..
        } => assert_eq!(v.as_bytes(), b"committed"),
        other => panic!("unexpected {other:?}"),
    }
    let summary = CheckSummary::check_all(sim.history());
    assert!(summary.is_safe(), "{:?}", summary.safety);
    assert!(summary.order.is_empty());
}
